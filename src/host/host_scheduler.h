// host_scheduler.h - fvsst wired to a real Linux host.
//
// The paper's prototype read Power4+ counters through kernel support and
// throttled the pipeline; on a modern Linux machine the equivalents are
// perf_event_open(2) for the counters and sysfs cpufreq for the actuator.
// HostScheduler is the shared core::ControlLoop engine wired with host
// backends:
//
//   PerfEventSampler -> IpcEstimator -> SchedulerPolicyStage -> SysfsActuator
//
// The caller drives step() from its own timing loop (the simulator's T
// becomes a wall-clock interval).  Everything degrades gracefully: where
// counters or cpufreq are unavailable the affected piece reports itself
// inactive instead of failing, so the class is constructible and testable
// inside containers (tests point it at a fake sysfs tree).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/control_loop.h"
#include "core/scheduler.h"
#include "host/cpufreq_sysfs.h"
#include "host/perf_events.h"
#include "power/power_model.h"
#include "simkit/telemetry.h"

namespace fvsst::host {

/// Builds an operating-point table from a host CPU's available frequencies.
/// Voltages are unknown to sysfs, so a linear reduced-voltage curve is
/// assumed between `volt_min` and `volt_max`, and per-point power comes
/// from the analytic model with the given coefficients.  Returns nullopt
/// when the CPU exposes no frequency list.
std::optional<mach::FrequencyTable> table_from_host(
    const CpuFreqInfo& info, const power::PowerModel& model,
    double volt_min = 0.8, double volt_max = 1.2);

/// Sampler over one process-wide perf_event_open(2) counter group.
/// Per-CPU counting needs elevated privileges; this prototype-grade
/// fallback observes the calling workload only, mirroring the paper's
/// single-threaded daemon, and reports the same interval sample for every
/// managed CPU.  The interval length is supplied by the caller's timing
/// loop via set_interval().
class PerfEventSampler final : public core::Sampler {
 public:
  explicit PerfEventSampler(std::size_t cpu_count);

  std::size_t cpu_count() const override { return cpus_; }
  std::vector<core::IntervalSample> end_interval(double now) override;

  /// Wall-clock length of the interval the next end_interval() closes.
  void set_interval(double seconds) { interval_s_ = seconds; }

  /// True when the hardware counter group opened and started.
  bool available() const { return available_; }

 private:
  std::size_t cpus_;
  PerfEventGroup group_;
  bool available_ = false;
  cpu::PerfCounters last_;
  double interval_s_ = 0.0;
};

/// Actuator writing granted frequencies to sysfs scaling_setspeed.  Writes
/// that fail (insufficient privilege) are counted, not fatal.
class SysfsActuator final : public core::Actuator {
 public:
  SysfsActuator(CpufreqSysfs& sysfs, std::vector<int> cpus);

  core::ActuationReport apply(const core::ScheduleResult& result, double now,
                              core::CycleTrigger trigger) override;
  bool write_one(std::size_t cpu, double hz, double now) override;

  std::size_t failed_writes() const { return failed_writes_; }

 private:
  CpufreqSysfs& sysfs_;
  std::vector<int> cpus_;
  std::size_t failed_writes_ = 0;
};

/// Drives fvsst on the local machine.
class HostScheduler {
 public:
  struct Options {
    core::FrequencyScheduler::Options scheduler;
    /// Memory latency constants for the predictor (seconds).  Defaults are
    /// typical contemporary server values; calibrate per machine for
    /// accuracy (paper Sec. 4.3).
    mach::MemoryLatencies latencies{4e-9, 12e-9, 90e-9};
    power::PowerModel power_model{50e-9, 1.0};
    double power_budget_w = 1e9;  ///< Effectively unconstrained by default.
    std::string sysfs_root = "/sys/devices/system/cpu";
    /// Record per-CPU traces in telemetry() (off for long-lived daemons).
    bool record_traces = false;
    /// Decision journal (not owned; must outlive the scheduler).
    sim::EventLog* journal = nullptr;
  };

  explicit HostScheduler(Options options);

  /// True when at least one CPU with cpufreq control was found.
  bool active() const { return !cpus_.empty(); }

  /// CPUs under management.
  const std::vector<int>& cpus() const { return cpus_; }

  /// True when hardware counters opened (otherwise step() only enforces
  /// the budget cap, with no per-workload prediction).
  bool counters_available() const { return counters_available_; }

  /// One scheduling round over `interval_s` of wall-clock history.
  /// Returns the decisions (empty when inactive).
  std::vector<core::ScheduleDecision> step(double interval_s);

  std::size_t failed_writes() const {
    return actuator_ ? actuator_->failed_writes() : 0;
  }
  std::size_t steps() const { return loop_ ? loop_->cycles_run() : 0; }

  void set_power_budget_w(double watts) { options_.power_budget_w = watts; }

  /// The underlying engine; null when inactive.
  const core::ControlLoop* loop() const { return loop_.get(); }

  sim::MetricRegistry& telemetry() { return telemetry_; }
  const sim::MetricRegistry& telemetry() const { return telemetry_; }

 private:
  Options options_;
  CpufreqSysfs sysfs_;
  std::vector<int> cpus_;
  std::optional<mach::FrequencyTable> table_;
  std::vector<const mach::FrequencyTable*> proc_tables_;
  sim::MetricRegistry telemetry_;
  PerfEventSampler* sampler_ = nullptr;    ///< Owned by loop_.
  SysfsActuator* actuator_ = nullptr;      ///< Owned by loop_.
  std::unique_ptr<core::ControlLoop> loop_;
  bool counters_available_ = false;
  double clock_s_ = 0.0;  ///< Accumulated wall-clock time across steps.
};

}  // namespace fvsst::host
