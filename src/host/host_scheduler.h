// host_scheduler.h - fvsst wired to a real Linux host.
//
// The paper's prototype read Power4+ counters through kernel support and
// throttled the pipeline; on a modern Linux machine the equivalents are
// perf_event_open(2) for the counters and sysfs cpufreq for the actuator.
// HostScheduler composes those backends with the same FrequencyScheduler
// the simulator uses:
//
//   step():  read counter deltas -> estimate workloads -> run the
//            two-pass schedule under the budget -> write scaling_setspeed
//
// The caller drives step() from its own timing loop (the simulator's T
// becomes a wall-clock interval).  Everything degrades gracefully: where
// counters or cpufreq are unavailable the affected piece reports itself
// inactive instead of failing, so the class is constructible and testable
// inside containers (tests point it at a fake sysfs tree).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "host/cpufreq_sysfs.h"
#include "host/perf_events.h"
#include "power/power_model.h"

namespace fvsst::host {

/// Builds an operating-point table from a host CPU's available frequencies.
/// Voltages are unknown to sysfs, so a linear reduced-voltage curve is
/// assumed between `volt_min` and `volt_max`, and per-point power comes
/// from the analytic model with the given coefficients.  Returns nullopt
/// when the CPU exposes no frequency list.
std::optional<mach::FrequencyTable> table_from_host(
    const CpuFreqInfo& info, const power::PowerModel& model,
    double volt_min = 0.8, double volt_max = 1.2);

/// Drives fvsst on the local machine.
class HostScheduler {
 public:
  struct Options {
    core::FrequencyScheduler::Options scheduler;
    /// Memory latency constants for the predictor (seconds).  Defaults are
    /// typical contemporary server values; calibrate per machine for
    /// accuracy (paper Sec. 4.3).
    mach::MemoryLatencies latencies{4e-9, 12e-9, 90e-9};
    power::PowerModel power_model{50e-9, 1.0};
    double power_budget_w = 1e9;  ///< Effectively unconstrained by default.
    std::string sysfs_root = "/sys/devices/system/cpu";
  };

  explicit HostScheduler(Options options);

  /// True when at least one CPU with cpufreq control was found.
  bool active() const { return !cpus_.empty(); }

  /// CPUs under management.
  const std::vector<int>& cpus() const { return cpus_; }

  /// True when hardware counters opened (otherwise step() only enforces
  /// the budget cap, with no per-workload prediction).
  bool counters_available() const { return counters_available_; }

  /// One scheduling round over `interval_s` of wall-clock history.
  /// Returns the decisions (empty when inactive).  Frequency writes that
  /// fail (insufficient privilege) are counted, not fatal.
  std::vector<core::ScheduleDecision> step(double interval_s);

  std::size_t failed_writes() const { return failed_writes_; }
  std::size_t steps() const { return steps_; }

  void set_power_budget_w(double watts) { options_.power_budget_w = watts; }

 private:
  Options options_;
  CpufreqSysfs sysfs_;
  std::vector<int> cpus_;
  std::optional<mach::FrequencyTable> table_;
  std::unique_ptr<core::FrequencyScheduler> scheduler_;
  // One counter group for the whole process (per-CPU counting needs
  // elevated privileges; the prototype-grade fallback observes the calling
  // workload only, mirroring the paper's single-threaded daemon).
  PerfEventGroup counters_;
  bool counters_available_ = false;
  cpu::PerfCounters last_counters_;
  std::size_t failed_writes_ = 0;
  std::size_t steps_ = 0;
};

}  // namespace fvsst::host
