#include "power/budget.h"

#include <stdexcept>

namespace fvsst::power {

PowerBudget::PowerBudget(double limit_w, double margin_fraction)
    : limit_w_(limit_w), margin_fraction_(margin_fraction) {
  if (limit_w < 0.0) {
    throw std::invalid_argument("PowerBudget: negative limit");
  }
  if (margin_fraction < 0.0 || margin_fraction >= 1.0) {
    throw std::invalid_argument("PowerBudget: margin must be in [0, 1)");
  }
}

void PowerBudget::set_limit_w(double limit_w) {
  if (limit_w < 0.0) {
    throw std::invalid_argument("PowerBudget: negative limit");
  }
  if (limit_w == limit_w_) return;
  limit_w_ = limit_w;
  notify();
}

void PowerBudget::set_margin_fraction(double margin_fraction) {
  if (margin_fraction < 0.0 || margin_fraction >= 1.0) {
    throw std::invalid_argument("PowerBudget: margin must be in [0, 1)");
  }
  if (margin_fraction == margin_fraction_) return;
  margin_fraction_ = margin_fraction;
  notify();
}

void PowerBudget::on_change(std::function<void(double)> listener) {
  listeners_.push_back(std::move(listener));
}

void PowerBudget::notify() {
  const double effective = effective_limit_w();
  for (const auto& listener : listeners_) listener(effective);
}

}  // namespace fvsst::power
