// margin_controller.h - Feedback between measured power and the budget's
// safety margin.
//
// The paper (Sec. 5): "The use of power measurement to monitor the total
// power consumption ensures that the system stays below the absolute
// limit.  If necessary, the global limit may contain a margin of safety
// that forces a downward adjustment of frequency and voltage before any
// hardware-related, critical power limits are reached."
//
// MarginController implements that loop: it periodically compares measured
// power against the budget's raw limit and grows the margin whenever
// measurement exceeds what the scheduler believed it had provisioned
// (model error, unmodelled components); when measurements sit comfortably
// below the limit for a while, the margin decays back so performance is
// not permanently sacrificed.
#pragma once

#include <functional>

#include "power/budget.h"
#include "simkit/event_queue.h"

namespace fvsst::power {

/// Tuning knobs for MarginController.
struct MarginControllerConfig {
  double check_period_s = 0.05;
  /// Margin added per violation check, as a fraction of the limit.
  double grow_step = 0.02;
  /// Margin removed per comfortable check.
  double decay_step = 0.002;
  /// Measured power below (1 - headroom) * limit counts as comfortable.
  double headroom = 0.05;
  double max_margin = 0.30;
};

/// Adaptive safety-margin controller.
class MarginController {
 public:
  using Config = MarginControllerConfig;

  /// `measured_power_fn` returns the quantity the budget limits (aggregate
  /// CPU power in the standard setup).
  MarginController(sim::Simulation& sim, PowerBudget& budget,
                   std::function<double()> measured_power_fn,
                   Config config = MarginControllerConfig());
  ~MarginController();

  MarginController(const MarginController&) = delete;
  MarginController& operator=(const MarginController&) = delete;

  /// Number of checks where measured power exceeded the raw limit.
  std::size_t violations() const { return violations_; }

  const Config& config() const { return config_; }

 private:
  void check();

  sim::Simulation& sim_;
  PowerBudget& budget_;
  std::function<double()> measured_power_fn_;
  Config config_;
  sim::EventId event_id_ = 0;
  std::size_t violations_ = 0;
};

}  // namespace fvsst::power
