#include "power/supply.h"

#include <algorithm>
#include <stdexcept>

#include "simkit/log.h"

namespace fvsst::power {

SupplyEfficiency::SupplyEfficiency()
    : SupplyEfficiency(std::vector<Point>{{0.0, 0.60},
                                          {0.10, 0.78},
                                          {0.20, 0.84},
                                          {0.50, 0.87},
                                          {1.00, 0.83}}) {}

SupplyEfficiency::SupplyEfficiency(std::vector<Point> curve)
    : curve_(std::move(curve)) {
  if (curve_.empty()) {
    throw std::invalid_argument("SupplyEfficiency: empty curve");
  }
  std::sort(curve_.begin(), curve_.end(),
            [](const Point& a, const Point& b) {
              return a.load_fraction < b.load_fraction;
            });
  for (const auto& p : curve_) {
    if (p.efficiency <= 0.0 || p.efficiency > 1.0) {
      throw std::invalid_argument(
          "SupplyEfficiency: efficiency outside (0, 1]");
    }
  }
}

double SupplyEfficiency::at(double load_fraction) const {
  const double x = std::clamp(load_fraction, 0.0, 1.0);
  if (x <= curve_.front().load_fraction) return curve_.front().efficiency;
  if (x >= curve_.back().load_fraction) return curve_.back().efficiency;
  for (std::size_t i = 1; i < curve_.size(); ++i) {
    if (x <= curve_[i].load_fraction) {
      const auto& lo = curve_[i - 1];
      const auto& hi = curve_[i];
      const double t =
          (x - lo.load_fraction) / (hi.load_fraction - lo.load_fraction);
      return lo.efficiency + t * (hi.efficiency - lo.efficiency);
    }
  }
  return curve_.back().efficiency;
}

double SupplyEfficiency::wall_power_w(double dc_watts,
                                      double capacity_w) const {
  if (dc_watts <= 0.0) return 0.0;
  if (capacity_w <= 0.0) {
    throw std::invalid_argument("SupplyEfficiency: non-positive capacity");
  }
  return dc_watts / at(dc_watts / capacity_w);
}

PowerDomain::PowerDomain(std::vector<PowerSupply> supplies)
    : supplies_(std::move(supplies)) {
  if (supplies_.empty()) {
    throw std::invalid_argument("PowerDomain: no supplies");
  }
}

double PowerDomain::available_capacity_w() const {
  double total = 0.0;
  for (const auto& s : supplies_) {
    if (s.healthy) total += s.capacity_w;
  }
  return total;
}

void PowerDomain::fail_supply(std::size_t i) {
  auto& s = supplies_.at(i);
  if (!s.healthy) return;
  s.healthy = false;
  notify();
}

void PowerDomain::restore_supply(std::size_t i) {
  auto& s = supplies_.at(i);
  if (s.healthy) return;
  s.healthy = true;
  notify();
}

void PowerDomain::on_capacity_change(CapacityListener listener) {
  listeners_.push_back(std::move(listener));
}

void PowerDomain::notify() {
  const double capacity = available_capacity_w();
  for (const auto& listener : listeners_) listener(capacity);
}

CascadeMonitor::CascadeMonitor(sim::Simulation& sim, const PowerDomain& domain,
                               std::function<double()> power_fn,
                               double overload_tolerance_s,
                               double check_period_s)
    : sim_(sim),
      domain_(domain),
      power_fn_(std::move(power_fn)),
      tolerance_s_(overload_tolerance_s) {
  event_id_ = sim_.schedule_every(check_period_s, [this] { check(); });
}

CascadeMonitor::~CascadeMonitor() {
  sim_.cancel(event_id_);
}

void CascadeMonitor::check() {
  if (cascaded_) return;
  const double consumption = power_fn_();
  const double capacity = domain_.available_capacity_w();
  if (consumption > capacity) {
    if (overload_since_ < 0.0) overload_since_ = sim_.now();
    if (sim_.now() - overload_since_ >= tolerance_s_) {
      cascaded_ = true;
      sim::LogLine(sim::LogLevel::kError, "cascade", sim_.now())
          << "cascade failure: " << consumption << "W > " << capacity
          << "W for " << tolerance_s_ << "s";
      if (on_cascade_) on_cascade_();
    }
  } else {
    overload_since_ = -1.0;
  }
}

}  // namespace fvsst::power
