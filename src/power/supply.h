// supply.h - Redundant power supplies and the cascade-failure monitor.
//
// The motivating scenario of the paper (Sec. 2): a system drawing 746 W from
// two 480 W supplies loses one supply at time T0.  Unless consumption drops
// below the surviving capacity within the supply's overload tolerance DT, the
// second supply also fails (a cascade).  PowerDomain models the supplies and
// budget; CascadeMonitor watches measured consumption against capacity and
// declares a cascade when the overload persists longer than DT.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "simkit/event_queue.h"

namespace fvsst::power {

/// One power supply unit.
struct PowerSupply {
  std::string name;
  double capacity_w = 0.0;
  bool healthy = true;
};

/// Conversion efficiency of a PSU as a function of its load fraction —
/// the familiar "80 PLUS" hump: poor at light load, peaking around 50%,
/// easing off toward full load.  Wall (AC) draw = DC load / efficiency.
class SupplyEfficiency {
 public:
  /// Piecewise-linear curve over load fractions in [0, 1].  The default
  /// approximates an 80 PLUS Bronze unit.
  struct Point {
    double load_fraction;
    double efficiency;
  };

  SupplyEfficiency();  ///< Default Bronze-like curve.
  /// Custom curve; points are sorted by load fraction.  Throws
  /// std::invalid_argument on empty curves or efficiencies outside (0, 1].
  explicit SupplyEfficiency(std::vector<Point> curve);

  /// Efficiency at the given load fraction (clamped to [0, 1],
  /// linearly interpolated).
  double at(double load_fraction) const;

  /// AC wall power drawn to deliver `dc_watts` from a supply of
  /// `capacity_w`.
  double wall_power_w(double dc_watts, double capacity_w) const;

 private:
  std::vector<Point> curve_;
};

/// A set of supplies feeding one system or rack, with capacity-change
/// notifications.  Capacity is the sum of healthy supplies' capacities.
class PowerDomain {
 public:
  using CapacityListener = std::function<void(double new_capacity_w)>;

  explicit PowerDomain(std::vector<PowerSupply> supplies);

  std::size_t supply_count() const { return supplies_.size(); }
  const PowerSupply& supply(std::size_t i) const { return supplies_.at(i); }

  /// Total capacity of all currently healthy supplies.
  double available_capacity_w() const;

  /// Marks a supply failed/restored and notifies listeners on change.
  void fail_supply(std::size_t i);
  void restore_supply(std::size_t i);

  /// Registers a callback invoked whenever available capacity changes.
  void on_capacity_change(CapacityListener listener);

 private:
  void notify();

  std::vector<PowerSupply> supplies_;
  std::vector<CapacityListener> listeners_;
};

/// Watches measured system power against domain capacity.  If consumption
/// exceeds capacity continuously for at least `overload_tolerance_s`
/// (the paper's DT), the domain cascades: `cascaded()` becomes true and the
/// optional callback fires once.
class CascadeMonitor {
 public:
  /// `power_fn` returns instantaneous total system power in watts.
  CascadeMonitor(sim::Simulation& sim, const PowerDomain& domain,
                 std::function<double()> power_fn,
                 double overload_tolerance_s, double check_period_s = 1e-3);
  ~CascadeMonitor();

  CascadeMonitor(const CascadeMonitor&) = delete;
  CascadeMonitor& operator=(const CascadeMonitor&) = delete;

  bool cascaded() const { return cascaded_; }

  /// Time the domain first went into overload in the current episode;
  /// negative when not currently overloaded.
  double overload_since() const { return overload_since_; }

  /// Invoked exactly once when a cascade occurs.
  void on_cascade(std::function<void()> callback) {
    on_cascade_ = std::move(callback);
  }

 private:
  void check();

  sim::Simulation& sim_;
  const PowerDomain& domain_;
  std::function<double()> power_fn_;
  double tolerance_s_;
  sim::EventId event_id_ = 0;
  double overload_since_ = -1.0;
  bool cascaded_ = false;
  std::function<void()> on_cascade_;
};

}  // namespace fvsst::power
