#include "power/power_model.h"

#include <cmath>
#include <stdexcept>

namespace fvsst::power {

PowerModel::PowerModel(double capacitance_f, double leakage_w_per_v2)
    : c_(capacitance_f), b_(leakage_w_per_v2) {
  if (c_ < 0.0 || b_ < 0.0) {
    throw std::invalid_argument("PowerModel: negative coefficient");
  }
}

double PowerModel::active_power(double hz, double volts) const {
  return c_ * volts * volts * hz;
}

double PowerModel::static_power(double volts) const {
  return b_ * volts * volts;
}

double PowerModel::power(double hz, double volts) const {
  return active_power(hz, volts) + static_power(volts);
}

PowerModel PowerModel::calibrate(const mach::FrequencyTable& reference) {
  if (reference.size() < 2) {
    throw std::invalid_argument("PowerModel::calibrate: need >= 2 points");
  }
  // P = C*x + B*y with x = V^2*f, y = V^2 is linear in (C, B); solve the
  // 2x2 normal equations directly.
  double sxx = 0.0, sxy = 0.0, syy = 0.0, sxp = 0.0, syp = 0.0;
  for (const auto& p : reference.points()) {
    const double x = p.volts * p.volts * p.hz;
    const double y = p.volts * p.volts;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    sxp += x * p.watts;
    syp += y * p.watts;
  }
  const double det = sxx * syy - sxy * sxy;
  if (std::abs(det) < 1e-30) {
    throw std::invalid_argument("PowerModel::calibrate: degenerate table");
  }
  double c = (sxp * syy - syp * sxy) / det;
  double b = (syp * sxx - sxp * sxy) / det;
  // Physical coefficients cannot be negative; clamp and refit the other
  // coefficient alone if the unconstrained optimum lies outside the domain.
  if (b < 0.0) {
    b = 0.0;
    c = sxp / sxx;
  }
  if (c < 0.0) {
    c = 0.0;
    b = syp / syy;
  }
  return PowerModel(c, b);
}

CalibrationReport PowerModel::calibrate_report(
    const mach::FrequencyTable& reference) {
  const PowerModel model = calibrate(reference);
  CalibrationReport report;
  report.capacitance_f = model.capacitance();
  report.leakage_w_per_v2 = model.leakage_coefficient();
  double sq_sum = 0.0;
  for (const auto& p : reference.points()) {
    const double err = model.power(p.hz, p.volts) - p.watts;
    sq_sum += err * err;
    report.max_abs_error_w = std::max(report.max_abs_error_w, std::abs(err));
    report.max_rel_error =
        std::max(report.max_rel_error, std::abs(err) / p.watts);
  }
  report.rms_error_w =
      std::sqrt(sq_sum / static_cast<double>(reference.size()));
  return report;
}

}  // namespace fvsst::power
