// sensor.h - Periodic power measurement.
//
// The paper's system "uses power status and measurement data to determine
// the value of the limit and to monitor compliance with it".  PowerSensor
// samples an instantaneous-power source on a fixed period, recording a
// trace (for the figures) and a time-weighted mean/energy integral (for
// Table 3's energy rows).
#pragma once

#include <functional>

#include "simkit/event_log.h"
#include "simkit/event_queue.h"
#include "simkit/fault_plan.h"
#include "simkit/stats.h"
#include "simkit/time_series.h"

namespace fvsst::power {

/// Samples a power source periodically into a TimeSeries + energy integral.
class PowerSensor {
 public:
  /// Starts sampling immediately; `power_fn` returns watts.
  PowerSensor(sim::Simulation& sim, std::function<double()> power_fn,
              double period_s, std::string name = "power_w");
  ~PowerSensor();

  PowerSensor(const PowerSensor&) = delete;
  PowerSensor& operator=(const PowerSensor&) = delete;

  /// Full sampled trace (watts vs seconds).
  const sim::TimeSeries& trace() const { return trace_; }

  /// Mean power over [start, now] (time-weighted, piecewise constant).
  double mean_power_w() const;

  /// Energy consumed over [start, now] in joules.
  double energy_j() const;

  /// Most recent sample.
  double last_sample_w() const { return weighted_.last_value(); }

  /// Subjects readings to an injected fault plan (neither owned; both must
  /// outlive the sensor).  Sensor kinds handled with sample-validity
  /// checks: kSensorDropout holds the last known-good reading,
  /// kSensorStuck freezes at the spec value (or the window's first
  /// reading) and kSensorNoise adds deterministic Gaussian noise.  Fault
  /// windows are journalled (when `journal` is set) as fault enter/exit
  /// events.  Null or empty plan: readings pass through untouched.
  void set_fault_plan(const sim::FaultPlan* plan,
                      sim::EventLog* journal = nullptr, int sensor_id = 0);

  /// Samples taken while a sensor fault was active.
  std::size_t faulted_samples() const { return faulted_samples_; }

 private:
  void sample();
  double apply_faults(double watts);

  sim::Simulation& sim_;
  std::function<double()> power_fn_;
  sim::EventId event_id_ = 0;
  sim::TimeSeries trace_;
  sim::TimeWeightedStat weighted_;
  const sim::FaultPlan* faults_ = nullptr;
  sim::EventLog* journal_ = nullptr;
  int sensor_id_ = 0;
  double last_good_w_ = 0.0;       ///< Held through a dropout window.
  bool have_good_ = false;
  double stuck_w_ = 0.0;           ///< Captured at stuck-window entry.
  bool stuck_captured_ = false;
  bool fault_was_active_ = false;  ///< For enter/exit journalling.
  std::size_t faulted_samples_ = 0;
};

}  // namespace fvsst::power
