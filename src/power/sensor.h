// sensor.h - Periodic power measurement.
//
// The paper's system "uses power status and measurement data to determine
// the value of the limit and to monitor compliance with it".  PowerSensor
// samples an instantaneous-power source on a fixed period, recording a
// trace (for the figures) and a time-weighted mean/energy integral (for
// Table 3's energy rows).
#pragma once

#include <functional>

#include "simkit/event_queue.h"
#include "simkit/stats.h"
#include "simkit/time_series.h"

namespace fvsst::power {

/// Samples a power source periodically into a TimeSeries + energy integral.
class PowerSensor {
 public:
  /// Starts sampling immediately; `power_fn` returns watts.
  PowerSensor(sim::Simulation& sim, std::function<double()> power_fn,
              double period_s, std::string name = "power_w");
  ~PowerSensor();

  PowerSensor(const PowerSensor&) = delete;
  PowerSensor& operator=(const PowerSensor&) = delete;

  /// Full sampled trace (watts vs seconds).
  const sim::TimeSeries& trace() const { return trace_; }

  /// Mean power over [start, now] (time-weighted, piecewise constant).
  double mean_power_w() const;

  /// Energy consumed over [start, now] in joules.
  double energy_j() const;

  /// Most recent sample.
  double last_sample_w() const { return weighted_.last_value(); }

 private:
  void sample();

  sim::Simulation& sim_;
  std::function<double()> power_fn_;
  sim::EventId event_id_ = 0;
  sim::TimeSeries trace_;
  sim::TimeWeightedStat weighted_;
};

}  // namespace fvsst::power
