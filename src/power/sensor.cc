#include "power/sensor.h"

#include <algorithm>
#include <string>

namespace fvsst::power {

PowerSensor::PowerSensor(sim::Simulation& sim,
                         std::function<double()> power_fn, double period_s,
                         std::string name)
    : sim_(sim), power_fn_(std::move(power_fn)), trace_(std::move(name)) {
  sample();  // take an initial reading at t = now
  event_id_ = sim_.schedule_every(period_s, [this] { sample(); });
}

PowerSensor::~PowerSensor() {
  sim_.cancel(event_id_);
}

void PowerSensor::set_fault_plan(const sim::FaultPlan* plan,
                                 sim::EventLog* journal, int sensor_id) {
  faults_ = plan && !plan->empty() ? plan : nullptr;
  journal_ = journal;
  sensor_id_ = sensor_id;
}

double PowerSensor::apply_faults(double watts) {
  using sim::FaultKind;
  const double now = sim_.now();
  const sim::FaultSpec* dropout =
      faults_->active(FaultKind::kSensorDropout, sensor_id_, now);
  const sim::FaultSpec* stuck =
      faults_->active(FaultKind::kSensorStuck, sensor_id_, now);
  const sim::FaultSpec* noise =
      faults_->active(FaultKind::kSensorNoise, sensor_id_, now);

  const bool fault_active = dropout || stuck || noise;
  if (journal_ && fault_active != fault_was_active_) {
    const char* kind = dropout  ? "sensor_dropout"
                       : stuck  ? "sensor_stuck"
                       : noise  ? "sensor_noise"
                                : "sensor";
    journal_->append(now, sim::EventType::kFault)
        .set("sensor", static_cast<double>(sensor_id_))
        .set("held_w", have_good_ ? last_good_w_ : watts)
        .set("kind", std::string(kind))
        .set("state", std::string(fault_active ? "enter" : "exit"));
  }
  fault_was_active_ = fault_active;
  if (!fault_active) {
    // Clean reading: refresh the hold-last-known-good baseline and re-arm
    // the stuck capture for the next window.
    last_good_w_ = watts;
    have_good_ = true;
    stuck_captured_ = false;
    return watts;
  }

  ++faulted_samples_;
  if (dropout) {
    // No reading at all: hold the last value a healthy sensor produced.
    return have_good_ ? last_good_w_ : watts;
  }
  if (stuck) {
    if (!stuck_captured_) {
      stuck_w_ = stuck->value > 0.0 ? stuck->value : watts;
      stuck_captured_ = true;
    }
    return stuck_w_;
  }
  // Noise: a negative power reading is physically meaningless; clamp.
  return std::max(
      0.0, watts + faults_->noise(FaultKind::kSensorNoise, sensor_id_, now,
                                  noise->value));
}

void PowerSensor::sample() {
  double watts = power_fn_();
  if (faults_) watts = apply_faults(watts);
  trace_.add(sim_.now(), watts);
  weighted_.record(sim_.now(), watts);
}

double PowerSensor::mean_power_w() const {
  return weighted_.mean_until(sim_.now());
}

double PowerSensor::energy_j() const {
  return weighted_.integral_until(sim_.now());
}

}  // namespace fvsst::power
