#include "power/sensor.h"

namespace fvsst::power {

PowerSensor::PowerSensor(sim::Simulation& sim,
                         std::function<double()> power_fn, double period_s,
                         std::string name)
    : sim_(sim), power_fn_(std::move(power_fn)), trace_(std::move(name)) {
  sample();  // take an initial reading at t = now
  event_id_ = sim_.schedule_every(period_s, [this] { sample(); });
}

PowerSensor::~PowerSensor() {
  sim_.cancel(event_id_);
}

void PowerSensor::sample() {
  const double watts = power_fn_();
  trace_.add(sim_.now(), watts);
  weighted_.record(sim_.now(), watts);
}

double PowerSensor::mean_power_w() const {
  return weighted_.mean_until(sim_.now());
}

double PowerSensor::energy_j() const {
  return weighted_.integral_until(sim_.now());
}

}  // namespace fvsst::power
