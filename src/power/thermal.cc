#include "power/thermal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simkit/log.h"

namespace fvsst::power {

ThermalModel::ThermalModel(Params params)
    : params_(params), temp_c_(params.initial_c) {
  if (params_.tau_s <= 0.0 || params_.r_c_per_w < 0.0) {
    throw std::invalid_argument("ThermalModel: bad parameters");
  }
}

void ThermalModel::step(double dt, double watts) {
  if (dt < 0.0) throw std::invalid_argument("ThermalModel: negative dt");
  const double target = steady_state_c(watts);
  const double decay = std::exp(-dt / params_.tau_s);
  temp_c_ = target + (temp_c_ - target) * decay;
}

ThermalGovernor::ThermalGovernor(
    sim::Simulation& sim, PowerBudget& budget, std::size_t num_cpus,
    std::function<double(std::size_t)> per_cpu_power_fn, Config config)
    : sim_(sim),
      budget_(budget),
      per_cpu_power_fn_(std::move(per_cpu_power_fn)),
      config_(config),
      base_limit_w_(budget.limit_w()),
      last_set_w_(budget.limit_w()) {
  if (num_cpus == 0) {
    throw std::invalid_argument("ThermalGovernor: no CPUs");
  }
  models_.assign(num_cpus, ThermalModel(config_.thermal));
  event_ = sim_.schedule_every(config_.sample_period_s, [this] { sample(); });
}

ThermalGovernor::~ThermalGovernor() {
  sim_.cancel(event_);
}

double ThermalGovernor::hottest_c() const {
  double hottest = -1e9;
  for (const auto& m : models_) hottest = std::max(hottest, m.temperature_c());
  return hottest;
}

void ThermalGovernor::set_ambient_c(double ambient_c) {
  for (auto& m : models_) m.set_ambient_c(ambient_c);
}

void ThermalGovernor::sample() {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    models_[i].step(config_.sample_period_s, per_cpu_power_fn_(i));
  }
  const double hottest = hottest_c();
  trace_.add(sim_.now(), hottest);

  // Detect external limit changes (supply failure/restoration, operator
  // caps): adopt the new value as the base our scale applies to.
  if (budget_.limit_w() != last_set_w_) {
    base_limit_w_ = budget_.limit_w();
  }

  if (hottest > config_.limit_c) {
    ++shed_events_;
    my_scale_ = std::max(my_scale_ * config_.shed_factor,
                         config_.min_budget_fraction);
    sim::LogLine(sim::LogLevel::kInfo, "thermal", sim_.now())
        << "hottest " << hottest << "C over " << config_.limit_c
        << "C: thermal scale -> " << my_scale_;
  } else if (hottest < config_.limit_c - config_.hysteresis_c &&
             my_scale_ < 1.0) {
    my_scale_ = std::min(1.0, my_scale_ * config_.restore_factor);
  }

  const double target = base_limit_w_ * my_scale_;
  if (target != budget_.limit_w()) {
    budget_.set_limit_w(target);
  }
  last_set_w_ = budget_.limit_w();
}

}  // namespace fvsst::power
