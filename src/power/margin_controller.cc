#include "power/margin_controller.h"

#include <algorithm>

#include "simkit/log.h"

namespace fvsst::power {

MarginController::MarginController(sim::Simulation& sim, PowerBudget& budget,
                                   std::function<double()> measured_power_fn,
                                   Config config)
    : sim_(sim),
      budget_(budget),
      measured_power_fn_(std::move(measured_power_fn)),
      config_(config) {
  event_id_ = sim_.schedule_every(config_.check_period_s, [this] { check(); });
}

MarginController::~MarginController() {
  sim_.cancel(event_id_);
}

void MarginController::check() {
  const double measured = measured_power_fn_();
  const double limit = budget_.limit_w();
  if (limit <= 0.0) return;
  const double margin = budget_.margin_fraction();
  if (measured > limit) {
    // The system is over the absolute limit: the scheduler's model is
    // optimistic.  Grow the margin so the next schedule provisions less.
    ++violations_;
    const double grown =
        std::min(margin + config_.grow_step, config_.max_margin);
    if (grown != margin) {
      sim::LogLine(sim::LogLevel::kInfo, "margin", sim_.now())
          << "measured " << measured << "W > limit " << limit
          << "W; margin -> " << grown;
      budget_.set_margin_fraction(grown);
    }
  } else if (measured < limit * (1.0 - config_.headroom) && margin > 0.0) {
    // Comfortably under: decay the margin so performance recovers.
    budget_.set_margin_fraction(
        std::max(0.0, margin - config_.decay_step));
  }
}

}  // namespace fvsst::power
