// thermal.h - First-order thermal model and thermal-limit trigger.
//
// Two of the paper's motivating failure modes are thermal: "site air
// conditioning failures" and external requests to shed heat.  The related
// work it builds on (Ghiasi & Grunwald) manages processor *temperature*
// with heterogeneous cores.  This module closes that loop for fvsst:
//
//   ThermalModel     per-CPU die temperature as a first-order RC response
//                    to dissipated power and ambient temperature,
//                      dT/dt = (T_amb + R*P - T) / tau
//   ThermalGovernor  watches modelled (or measured) temperatures and turns
//                    a thermal limit into a CPU power budget adjustment —
//                    another source for the paper's "power limit changed"
//                    trigger.
#pragma once

#include <functional>
#include <vector>

#include "power/budget.h"
#include "simkit/event_queue.h"
#include "simkit/time_series.h"

namespace fvsst::power {

/// First-order (RC) die-temperature model for one CPU.
class ThermalModel {
 public:
  struct Params {
    double ambient_c = 25.0;       ///< Inlet/ambient temperature.
    double r_c_per_w = 0.35;       ///< Thermal resistance junction->ambient.
    double tau_s = 8.0;            ///< Thermal time constant.
    double initial_c = 25.0;
  };

  explicit ThermalModel(Params params);

  /// Advances the model by `dt` seconds with constant power `watts`.
  /// Uses the exact exponential step, so large dt is fine.
  void step(double dt, double watts);

  double temperature_c() const { return temp_c_; }

  /// Steady-state temperature at constant power.
  double steady_state_c(double watts) const {
    return params_.ambient_c + params_.r_c_per_w * watts;
  }

  /// Changes the ambient (e.g. the machine-room A/C failing mid-run).
  void set_ambient_c(double ambient_c) { params_.ambient_c = ambient_c; }
  double ambient_c() const { return params_.ambient_c; }

 private:
  Params params_;
  double temp_c_;
};

/// Thermal-limit governor: samples per-CPU power, integrates the thermal
/// models, and scales the power budget down when the hottest die crosses
/// `limit_c` (restoring it as temperature recovers).
class ThermalGovernor {
 public:
  struct Config {
    double limit_c = 85.0;         ///< Junction limit.
    double hysteresis_c = 5.0;     ///< Restore below limit - hysteresis.
    double sample_period_s = 0.25;
    /// Budget multiplier applied per over-limit sample (compounding).
    double shed_factor = 0.85;
    /// Budget multiplier applied per comfortable sample, up to the
    /// original budget.
    double restore_factor = 1.05;
    /// Shedding never pushes the budget below this fraction of the
    /// original (frequency scaling cannot reach zero power anyway).
    double min_budget_fraction = 0.05;
    ThermalModel::Params thermal;
  };

  /// `per_cpu_power_fn(i)` returns CPU i's current power in watts.
  ThermalGovernor(sim::Simulation& sim, PowerBudget& budget,
                  std::size_t num_cpus,
                  std::function<double(std::size_t)> per_cpu_power_fn,
                  Config config);
  ~ThermalGovernor();

  ThermalGovernor(const ThermalGovernor&) = delete;
  ThermalGovernor& operator=(const ThermalGovernor&) = delete;

  double temperature_c(std::size_t cpu) const {
    return models_.at(cpu).temperature_c();
  }
  double hottest_c() const;

  /// Simulated A/C failure: raises every model's ambient.
  void set_ambient_c(double ambient_c);

  /// Trace of the hottest die temperature.
  const sim::TimeSeries& hottest_trace() const { return trace_; }

  std::size_t shed_events() const { return shed_events_; }

 private:
  void sample();

  sim::Simulation& sim_;
  PowerBudget& budget_;
  std::function<double(std::size_t)> per_cpu_power_fn_;
  Config config_;
  std::vector<ThermalModel> models_;
  /// The governor only scales the budget by its own factor in
  /// [min_budget_fraction, 1] on top of whatever base limit other actors
  /// (supply failures, operators) have set — so a thermal restore never
  /// undoes an external budget cut.
  double base_limit_w_;
  double my_scale_ = 1.0;
  double last_set_w_;
  sim::EventId event_ = 0;
  sim::TimeSeries trace_{"hottest_c"};
  std::size_t shed_events_ = 0;
};

}  // namespace fvsst::power
