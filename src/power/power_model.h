// power_model.h - Analytic CPU power model and its calibration.
//
// The paper uses P = C*Vdd^2*f + B*Vdd^2: the first term is active
// (switching) power, the second is static (leakage) power, with B process-
// and temperature-dependent.  The authors obtained per-frequency peak power
// from IBM's Lava circuit-level estimator (their Table 1).  We substitute a
// least-squares calibration of (C, B) against that same table, which both
// validates the analytic form and gives us power at arbitrary
// (frequency, voltage) points, e.g. for the continuous f_ideal extension.
#pragma once

#include <string>

#include "mach/frequency_table.h"

namespace fvsst::power {

/// Result of calibrating the analytic model against a reference table.
struct CalibrationReport {
  double capacitance_f = 0.0;   ///< Fitted C in farads.
  double leakage_w_per_v2 = 0.0;///< Fitted B in watts per volt^2.
  double max_abs_error_w = 0.0; ///< Worst |model - table| over all points.
  double rms_error_w = 0.0;     ///< RMS of (model - table).
  double max_rel_error = 0.0;   ///< Worst |model - table| / table.
};

/// CPU power as a function of frequency and voltage: P = C*V^2*f + B*V^2.
class PowerModel {
 public:
  /// Constructs with explicit parameters.  C in farads, B in W/V^2.
  PowerModel(double capacitance_f, double leakage_w_per_v2);

  /// Power in watts at the given operating condition.
  double power(double hz, double volts) const;

  /// Active (switching) component only.
  double active_power(double hz, double volts) const;

  /// Static (leakage) component only.
  double static_power(double volts) const;

  double capacitance() const { return c_; }
  double leakage_coefficient() const { return b_; }

  /// Fits (C, B) to the (frequency, voltage, watts) triples of a reference
  /// table by linear least squares (the model is linear in C and B).
  /// Throws std::invalid_argument for tables with fewer than two points.
  static PowerModel calibrate(const mach::FrequencyTable& reference);

  /// Calibrates and reports fit quality; used by bench_table1_power.
  static CalibrationReport calibrate_report(
      const mach::FrequencyTable& reference);

 private:
  double c_;
  double b_;
};

}  // namespace fvsst::power
