// budget.h - The global CPU power budget the scheduler must respect.
//
// The paper's power limit is global ("the power must represent the aggregate
// processor power consumption of the entire system") and may change at run
// time when supplies fail or external caps arrive.  PowerBudget carries the
// current limit, an optional safety margin, and change notifications — the
// "power limit changed" trigger of the scheduling procedure.
#pragma once

#include <functional>
#include <vector>

namespace fvsst::power {

/// Mutable global CPU power limit with listeners.
class PowerBudget {
 public:
  /// `limit_w` is the raw available power for the CPUs; `margin_fraction`
  /// (paper Sec. 5: "the global limit may contain a margin of safety")
  /// shrinks the effective limit handed to the scheduler.
  explicit PowerBudget(double limit_w, double margin_fraction = 0.0);

  /// Raw limit in watts.
  double limit_w() const { return limit_w_; }

  /// Limit after applying the safety margin; this is what the scheduler
  /// must stay under.
  double effective_limit_w() const {
    return limit_w_ * (1.0 - margin_fraction_);
  }

  double margin_fraction() const { return margin_fraction_; }

  /// Updates the raw limit; notifies listeners when the value changes.
  void set_limit_w(double limit_w);

  void set_margin_fraction(double margin_fraction);

  /// Registers a callback invoked with the new *effective* limit.
  void on_change(std::function<void(double effective_limit_w)> listener);

 private:
  void notify();

  double limit_w_;
  double margin_fraction_;
  std::vector<std::function<void(double)>> listeners_;
};

}  // namespace fvsst::power
