#include "simkit/telemetry.h"

#include <filesystem>
#include <ostream>
#include <stdexcept>
#include <system_error>

#include "simkit/csv.h"

namespace fvsst::sim {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          const auto u = static_cast<unsigned char>(c);
          out << "\\u00" << hex[u >> 4] << hex[u & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

MetricId MetricRegistry::intern_series(const std::string& key,
                                       const std::string& display_name) {
  ++map_lookups_;
  if (const auto it = series_index_.find(key); it != series_index_.end()) {
    return MetricId{it->second};
  }
  const std::size_t index = series_storage_.size();
  series_index_.emplace(key, index);
  series_keys_.push_back(key);
  series_storage_.emplace_back(display_name.empty() ? key : display_name);
  return MetricId{index};
}

CounterId MetricRegistry::intern_counter(const std::string& key) {
  ++map_lookups_;
  if (const auto it = counter_index_.find(key); it != counter_index_.end()) {
    return CounterId{it->second};
  }
  const std::size_t index = counter_storage_.size();
  counter_index_.emplace(key, index);
  counter_keys_.push_back(key);
  counter_storage_.push_back(0.0);
  return CounterId{index};
}

TimeSeries& MetricRegistry::series(const std::string& key,
                                   const std::string& display_name) {
  return series(intern_series(key, display_name));
}

const TimeSeries* MetricRegistry::find_series(const std::string& key) const {
  ++map_lookups_;
  const auto it = series_index_.find(key);
  return it == series_index_.end() ? nullptr : &series_storage_[it->second];
}

const TimeSeries& MetricRegistry::at(const std::string& key) const {
  if (const TimeSeries* s = find_series(key)) return *s;
  throw std::out_of_range("MetricRegistry: no series named " + key);
}

double& MetricRegistry::counter(const std::string& key) {
  return counter(intern_counter(key));
}

double MetricRegistry::counter_value(const std::string& key) const {
  ++map_lookups_;
  const auto it = counter_index_.find(key);
  return it == counter_index_.end() ? 0.0 : counter_storage_[it->second];
}

void MetricRegistry::export_to(MetricSink& sink) const {
  for (std::size_t i = 0; i < series_keys_.size(); ++i) {
    sink.series(series_keys_[i], series_storage_[i]);
  }
  for (std::size_t i = 0; i < counter_keys_.size(); ++i) {
    sink.counter(counter_keys_[i], counter_storage_[i]);
  }
}

namespace {

std::string sanitize(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ':') c = '_';
  }
  return out;
}

}  // namespace

CsvDirectorySink::CsvDirectorySink(std::string dir, double dt)
    : dir_(std::move(dir)), dt_(dt) {
  // Best effort, like the writes: an uncreatable directory surfaces as
  // per-file failures() rather than a throw.
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

CsvDirectorySink::~CsvDirectorySink() {
  if (counters_.empty()) return;
  try {
    CsvWriter out(dir_ + "/counters.csv");
    out.write_row(std::vector<std::string>{"counter", "value"});
    for (const auto& [key, value] : counters_) {
      out.write_row({key, std::to_string(value)});
    }
  } catch (const std::exception&) {
    ++failures_;
  }
}

void CsvDirectorySink::series(const std::string& key, const TimeSeries& s) {
  const std::string path = dir_ + "/" + sanitize(key) + ".csv";
  if (dt_ > 0.0) {
    if (!write_series_csv(path, {&s}, dt_)) ++failures_;
    return;
  }
  try {
    CsvWriter out(path);
    out.write_row(std::vector<std::string>{"time_s", s.name()});
    for (const auto& sample : s.samples()) {
      out.write_row(std::vector<double>{sample.t, sample.value});
    }
  } catch (const std::exception&) {
    ++failures_;
  }
}

void CsvDirectorySink::counter(const std::string& key, double value) {
  counters_.emplace_back(key, value);
}

void JsonLinesSink::series(const std::string& key, const TimeSeries& s) {
  out_ << "{\"metric\":";
  write_json_string(out_, key);
  out_ << ",\"name\":";
  write_json_string(out_, s.name());
  out_ << ",\"samples\":[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out_ << ',';
    out_ << '[' << s[i].t << ',' << s[i].value << ']';
  }
  out_ << "]}\n";
}

void JsonLinesSink::counter(const std::string& key, double value) {
  out_ << "{\"metric\":";
  write_json_string(out_, key);
  out_ << ",\"value\":" << value << "}\n";
}

}  // namespace fvsst::sim
