#include "simkit/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace fvsst::sim {

void TimeSeries::add(double t, double value) {
  if (!samples_.empty() && t < samples_.back().t) {
    throw std::invalid_argument("TimeSeries::add: non-monotonic time");
  }
  samples_.push_back({t, value});
}

double TimeSeries::first_time() const {
  if (samples_.empty()) throw std::out_of_range("TimeSeries: empty");
  return samples_.front().t;
}

double TimeSeries::last_time() const {
  if (samples_.empty()) throw std::out_of_range("TimeSeries: empty");
  return samples_.back().t;
}

double TimeSeries::value_at(double t) const {
  if (samples_.empty() || t < samples_.front().t) {
    throw std::out_of_range("TimeSeries::value_at: before first sample");
  }
  // Last sample with sample.t <= t.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double lhs, const Sample& s) { return lhs < s.t; });
  return std::prev(it)->value;
}

double TimeSeries::mean(double t0, double t1) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.t >= t0 && s.t <= t1) {
      sum += s.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::min(double t0, double t1) const {
  double out = std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) {
    if (s.t >= t0 && s.t <= t1) out = std::min(out, s.value);
  }
  return out;
}

double TimeSeries::max(double t0, double t1) const {
  double out = -std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) {
    if (s.t >= t0 && s.t <= t1) out = std::max(out, s.value);
  }
  return out;
}

TimeSeries TimeSeries::slice(double t0, double t1) const {
  TimeSeries out(name_);
  for (const auto& s : samples_) {
    if (s.t >= t0 && s.t <= t1) out.add(s.t, s.value);
  }
  return out;
}

TimeSeries TimeSeries::resample(double dt) const {
  TimeSeries out(name_);
  if (samples_.empty()) return out;
  for (double t = first_time(); t <= last_time() + dt * 0.5; t += dt) {
    out.add(t, value_at(std::min(t, last_time())));
  }
  return out;
}

std::string render_ascii_chart(const std::vector<const TimeSeries*>& series,
                               std::size_t width, std::size_t height) {
  static const char kMarks[] = "*o+x#@";
  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -t0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto* s : series) {
    if (!s || s->empty()) continue;
    t0 = std::min(t0, s->first_time());
    t1 = std::max(t1, s->last_time());
    for (const auto& smp : s->samples()) {
      lo = std::min(lo, smp.value);
      hi = std::max(hi, smp.value);
    }
  }
  if (!(t1 > t0)) return "(empty chart)\n";
  if (hi == lo) {
    hi = lo + 1.0;  // flat line: widen range so the line renders mid-chart
    lo -= 1.0;
  }

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t k = 0; k < series.size(); ++k) {
    const auto* s = series[k];
    if (!s || s->empty()) continue;
    const char mark = kMarks[k % (sizeof(kMarks) - 1)];
    for (std::size_t col = 0; col < width; ++col) {
      const double t =
          t0 + (t1 - t0) * static_cast<double>(col) /
                   static_cast<double>(width - 1);
      double v;
      try {
        v = s->value_at(std::clamp(t, s->first_time(), s->last_time()));
      } catch (const std::out_of_range&) {
        continue;
      }
      auto row = static_cast<std::size_t>(std::lround(
          (hi - v) / (hi - lo) * static_cast<double>(height - 1)));
      row = std::min(row, height - 1);
      grid[row][col] = mark;
    }
  }

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "  ymax=" << hi << "\n";
  for (const auto& line : grid) os << "  |" << line << "\n";
  os << "  ymin=" << lo << "  t=[" << t0 << ", " << t1 << "]s";
  for (std::size_t k = 0; k < series.size(); ++k) {
    if (series[k]) {
      os << "  [" << kMarks[k % (sizeof(kMarks) - 1)] << "] "
         << series[k]->name();
    }
  }
  os << "\n";
  return os.str();
}

}  // namespace fvsst::sim
