// table.h - Aligned text tables for bench output.
//
// Every bench binary regenerates one of the paper's tables or figures; this
// printer keeps that output readable and diffable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fvsst::sim {

/// Column-aligned text table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row.
  void set_header(std::vector<std::string> header);

  /// Appends a row of pre-formatted cells.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the decimal point.
  static std::string num(double v, int precision = 3);

  /// Formats a fraction as a percentage string, e.g. 0.035 -> "3.5%".
  static std::string pct(double fraction, int precision = 1);

  /// Renders the table with column alignment and separators.
  std::string to_string() const;

  /// Renders directly to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fvsst::sim
