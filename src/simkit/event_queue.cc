#include "simkit/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace fvsst::sim {

EventId Simulation::push(double when, double period, Action action) {
  // A NaN/inf timestamp would silently corrupt the priority-queue ordering
  // (every comparison with NaN is false); fail loudly instead.
  if (!std::isfinite(when) || !std::isfinite(period)) {
    throw std::invalid_argument("Simulation: non-finite event time");
  }
  if (period < 0.0) {
    throw std::invalid_argument("Simulation: negative period");
  }
  Event ev;
  ev.when = std::max(when, now_);
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  ev.period = period;
  ev.origin = ev.when;
  ev.fires = 0;
  ev.action = std::move(action);
  const EventId id = ev.id;
  queue_.push(std::move(ev));
  ++live_;
  return id;
}

EventId Simulation::schedule_at(double when, Action action) {
  return push(when, 0.0, std::move(action));
}

EventId Simulation::schedule_after(double delay, Action action) {
  return push(now_ + delay, 0.0, std::move(action));
}

EventId Simulation::schedule_every(double period, Action action) {
  if (!(period > 0.0)) {
    throw std::invalid_argument("Simulation: period must be positive");
  }
  return push(now_ + period, period, std::move(action));
}

EventId Simulation::schedule_every_from(double start, double period,
                                        Action action) {
  if (!(period > 0.0)) {
    throw std::invalid_argument("Simulation: period must be positive");
  }
  return push(start, period, std::move(action));
}

bool Simulation::cancel(EventId id) {
  // Lazy cancellation: the id is recorded and the event dropped when popped.
  // The cancelled_ list stays small because fvsst cancels only long-lived
  // periodic events (samplers, daemons).
  if (id == 0 || id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end())
    return false;
  cancelled_.push_back(id);
  return true;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    --live_;
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    if (ev.period > 0.0) {
      // Re-arm before running so the action may cancel its own event id.
      // The k-th firing lands at origin + k*period exactly.
      Event next = ev;
      next.fires = ev.fires + 1;
      // Firing k lands at origin + k*period (origin is the first firing).
      next.when = ev.origin + static_cast<double>(next.fires) * ev.period;
      next.seq = next_seq_++;
      queue_.push(next);
      ++live_;
    }
    ev.action();
    ++executed_;
    return true;
  }
  return false;
}

void Simulation::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().when <= t_end) {
    step();
  }
  now_ = std::max(now_, t_end);
}

void Simulation::run_for(double duration) {
  run_until(now_ + duration);
}

std::size_t Simulation::pending() const {
  return live_ - std::min(live_, cancelled_.size());
}

}  // namespace fvsst::sim
