// rng.h - Deterministic pseudo-random number generation for simulations.
//
// Simulation runs must be reproducible: the same seed always yields the same
// event stream regardless of platform or standard-library version.  We
// therefore implement xoshiro256** (public domain, Blackman & Vigna) rather
// than relying on std::mt19937 plus unspecified std distribution algorithms.
#pragma once

#include <array>
#include <cstdint>

namespace fvsst::sim {

/// Deterministic, platform-independent random number generator.
///
/// Implements xoshiro256** seeded via splitmix64.  All distribution
/// functions are implemented locally so results are bit-identical across
/// standard libraries.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.  Distinct seeds yield
  /// statistically independent streams for practical purposes.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normally distributed value (Box-Muller, deterministic).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponentially distributed value with the given rate (lambda > 0).
  double exponential(double rate);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Creates an independent child stream; useful for giving each simulated
  /// component its own generator while keeping global determinism.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fvsst::sim
