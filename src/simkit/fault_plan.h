// fault_plan.h - Seeded, fully deterministic fault injection.
//
// The paper's whole premise is operation under failure: fvsst exists so a
// server survives a power-supply failure within the cascade deadline.  The
// schedulers, however, would otherwise assume perfect sensors, actuators
// and cluster links.  A FaultPlan is a declarative schedule of faults —
// sensor faults (power-reading dropout, additive noise, stuck-at value),
// actuation faults (frequency write rejected, sticky writes, delayed
// apply) and cluster faults (per-node channel-loss bursts, node
// crash/restart, stale counter summaries) — that components consult at the
// instant a reading is taken, a write is issued or a message is sent.
//
// Determinism is the design constraint:
//   * The plan is immutable once built; queries never mutate it.
//   * Randomness (loss bursts, sensor noise) is derived by *stateless
//     hashing* of (seed, kind, target, time), so the answer is independent
//     of query order and of how many other components consult the plan.
//   * An empty plan consumes no randomness and injects nothing, so a run
//     wired with an empty plan is bit-for-bit identical to an unwired run.
//
// Faults are windows [start_s, end_s) against a target index whose meaning
// depends on the kind (CPU for sensor/actuation faults, node for cluster
// faults); target -1 matches every index.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

namespace fvsst::sim {

/// What a fault does.  The `value` field of FaultSpec is interpreted per
/// kind as documented on each enumerator.
enum class FaultKind {
  /// Power sensor returns no reading; the sensor holds its last known-good
  /// value.  Target: sensor id.  value: unused.
  kSensorDropout,
  /// Additive Gaussian noise on power readings.  Target: sensor id.
  /// value: noise standard deviation in watts.
  kSensorNoise,
  /// Power readings stuck.  Target: sensor id.  value: the stuck reading in
  /// watts; 0 sticks at the first reading taken inside the window.
  kSensorStuck,
  /// Frequency writes to the CPU are refused (cpufreq-style actuation
  /// failure).  Target: flattened CPU index.  value: unused.
  kActuationReject,
  /// Frequency writes claim success but the hardware does not change (the
  /// nastier failure: no error to react to).  Target: CPU.  value: unused.
  kActuationSticky,
  /// Frequency writes land late.  Target: CPU.  value: delay in seconds.
  kActuationDelay,
  /// Burst of message loss on a node's channels.  Target: node index.
  /// value: per-message drop probability in [0, 1].
  kChannelLoss,
  /// The node's agent is down: no sampling, no summaries, and settings
  /// arriving at the node are lost.  Restarts when the window closes.
  /// Target: node index.  value: unused.
  kNodeCrash,
  /// The node's agent keeps sending but its summaries are frozen at their
  /// last refresh (sensor path wedged).  Target: node.  value: unused.
  kStaleSummaries,
  /// A cluster coordinator process is down: it runs no rounds, sends no
  /// heartbeats, and summaries addressed to it are lost.  On window close
  /// it restarts and recovers from its stable store.  Target: coordinator
  /// index (0 = primary, 1 = standby).  value: unused.
  kCoordinatorCrash,
  /// A coordinator is network-partitioned: every message to or from it is
  /// dropped while the window is open (the coordinator itself keeps
  /// running — the split-brain case epoch fencing exists for).  Target:
  /// coordinator index.  value: unused.
  kPartition,
  // Transport-level channel faults (consumed by cluster::Transport in both
  // transport modes).  Appended after kPartition: parsers and journals
  // refer to kinds by wire name, but keeping enumerator values stable is
  // free and avoids surprises.
  /// Messages to/from the node may be delayed past later traffic so they
  /// arrive out of order.  Target: node index.  value: per-message
  /// reorder probability in [0, 1].
  kChannelReorder,
  /// Messages to/from the node may be delivered twice (the second copy
  /// slightly later).  Target: node index.  value: per-message
  /// duplication probability in [0, 1].
  kChannelDuplicate,
  /// Every message to/from the node is delayed by a fixed extra amount (a
  /// congestion spike).  Target: node index.  value: extra delay in
  /// seconds (>= 0).
  kChannelDelaySpike,
  /// Messages to/from the node may be corrupted in flight.  The transport
  /// detects this via its envelope checksum and drops the message with a
  /// message_corrupt journal event — never silent misdelivery.  Target:
  /// node index.  value: per-message corruption probability in [0, 1].
  kChannelCorrupt,
};

/// Stable wire name ("sensor_dropout", "actuation_reject", ...).
std::string_view fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name; nullopt for unknown names.
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

/// One scheduled fault: a kind active over [start_s, end_s) against one
/// target index (-1: all targets of that kind).
struct FaultSpec {
  FaultKind kind = FaultKind::kSensorDropout;
  double start_s = 0.0;
  double end_s = 0.0;
  int target = -1;
  double value = 0.0;  ///< Kind-specific parameter (see FaultKind).
};

/// Options for FaultPlan::random (the chaos harness' scenario generator).
struct RandomPlanOptions {
  std::size_t cpus = 1;       ///< Flattened CPU count (actuation targets).
  std::size_t nodes = 1;      ///< Node count (cluster-fault targets).
  double duration_s = 1.0;    ///< Run length; windows are kept inside
                              ///< [0, recovery_fraction * duration_s] so
                              ///< recovery is observable before the end.
  double recovery_fraction = 0.6;
  int max_faults = 4;         ///< 1..max_faults specs are drawn.
  bool sensor_faults = true;
  bool actuation_faults = true;
  bool cluster_faults = false;
  /// Also draw coordinator crashes/partitions (needs a ClusterDaemon with
  /// failover enabled to be meaningful).  Kept separate from
  /// cluster_faults so existing seeds keep producing identical plans.
  bool coordinator_faults = false;
  std::size_t coordinators = 2;  ///< Coordinator-fault target count.
  /// Also draw the four transport-level channel faults (reorder,
  /// duplication, delay spikes, corruption).  Kept separate from
  /// cluster_faults so existing seeds keep producing identical plans.
  bool transport_faults = false;
};

/// An immutable, seeded schedule of faults.
class FaultPlan {
 public:
  /// An empty plan: injects nothing, consumes no randomness.
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  void add(const FaultSpec& spec);

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  std::uint64_t seed() const { return seed_; }

  /// Simulated time after which every window has closed (0 for an empty
  /// plan) — the earliest instant recovery can be asserted from.
  double last_end_s() const;

  /// First spec of `kind` whose window contains `now` and whose target
  /// matches `target` (spec target -1 matches anything); nullptr when none.
  const FaultSpec* active(FaultKind kind, int target, double now) const;

  /// Deterministic Bernoulli draw tied to (seed, kind, target, now): the
  /// same query always gives the same answer, and distinct times give
  /// independent draws.  Used for channel-loss bursts.
  bool chance(FaultKind kind, int target, double now, double p) const;

  /// Deterministic zero-mean Gaussian tied to (seed, kind, target, now).
  double noise(FaultKind kind, int target, double now, double stddev) const;

  /// Parses the text plan format (one fault per line):
  ///
  ///   # comment
  ///   seed 1234
  ///   actuation_reject 1.0 2.5 cpu=1
  ///   sensor_noise     0.0 9.0 stddev=4
  ///   channel_loss     1.0 3.0 node=0 p=0.6
  ///
  /// Line syntax: KIND START END [cpu|node|sensor|coordinator|target=N]
  /// [value|stddev|p|delay|watts=V].  Throws std::runtime_error with a line
  /// number on malformed input — including numbers with trailing junk
  /// ("cpu=1x"), which would otherwise silently truncate.
  static FaultPlan parse(std::istream& in);

  /// Draws a random-but-reproducible plan for the chaos harness: window
  /// placement, kinds and parameters all derive from `seed`.
  static FaultPlan random(std::uint64_t seed, const RandomPlanOptions& opts);

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

}  // namespace fvsst::sim
