// csv.h - CSV export for traces and bench results.
//
// The paper's figures were produced by post-processing fvsst's logs; our
// benches do the same, optionally dumping CSVs (set FVSST_CSV_DIR) that can
// be plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fvsst::sim {

class TimeSeries;

/// Minimal CSV writer; quotes cells containing separators.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void write_row(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

/// Writes one or more time series as aligned columns (time, s1, s2, ...)
/// resampled to `dt`.  Returns false (without throwing) if `path` cannot be
/// opened; bench binaries treat CSV output as best effort.
bool write_series_csv(const std::string& path,
                      const std::vector<const TimeSeries*>& series, double dt);

/// Returns $FVSST_CSV_DIR if set, else an empty string; benches call this to
/// decide whether to dump CSVs.
std::string csv_output_dir();

}  // namespace fvsst::sim
