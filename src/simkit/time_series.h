// time_series.h - Sampled (time, value) traces for figures and analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fvsst::sim {

/// Append-only trace of (time, value) samples with non-decreasing times.
/// Benches use these to regenerate the paper's time-series figures (phase
/// tracking, actual-vs-desired frequency) and to compute windowed summaries.
class TimeSeries {
 public:
  struct Sample {
    double t;
    double value;
  };

  explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

  /// Appends a sample; `t` must be >= the previous sample's time.
  void add(double t, double value);

  const std::string& name() const { return name_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  double first_time() const;
  double last_time() const;

  /// Value at time `t` treating the series as piecewise constant
  /// (last sample at or before `t`).  Requires a sample at or before `t`.
  double value_at(double t) const;

  /// Mean of samples with t in [t0, t1] (simple average of samples).
  double mean(double t0, double t1) const;

  /// Min/max of samples with t in [t0, t1].
  double min(double t0, double t1) const;
  double max(double t0, double t1) const;

  /// Extracts the sub-series with t in [t0, t1] (used for the paper's
  /// "magnified time slice" figure).
  TimeSeries slice(double t0, double t1) const;

  /// Resamples onto a uniform grid with step `dt` using piecewise-constant
  /// interpolation; handy for aligning multiple traces.
  TimeSeries resample(double dt) const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

/// Renders one or more aligned series as a compact ASCII chart, used by the
/// bench binaries to show figure "shape" directly in terminal output.
std::string render_ascii_chart(const std::vector<const TimeSeries*>& series,
                               std::size_t width = 72, std::size_t height = 12);

}  // namespace fvsst::sim
