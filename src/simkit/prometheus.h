// prometheus.h - Prometheus text-format exposition of metrics and alerts.
//
// Writes a MetricRegistry snapshot (and, when given one, the monitor's
// alert and sketch state) in the Prometheus text exposition format, so a
// run's health is scrapeable-shaped: `# TYPE` headers, sanitized metric
// names under the `fvsst_` prefix, and label-carrying samples for alerts
// and per-input quantiles.  fvsst_sim exposes this via --metrics-out
// (written at the end of the run, or periodically with --metrics-every);
// scripts/check.sh validates the output with a strict parser.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "simkit/telemetry.h"

namespace fvsst::sim {

namespace monitor {
class Monitor;
}  // namespace monitor

/// `key` mapped to a legal Prometheus metric name: every character outside
/// [a-zA-Z0-9_] becomes '_' and the result is prefixed with "fvsst_"
/// ("cpu0/granted_hz" -> "fvsst_cpu0_granted_hz").
std::string prometheus_metric_name(std::string_view key);

/// Writes the registry (series: last value + sample count; counters:
/// value) and, when `mon` is non-null, the monitor's rule and input state
/// as Prometheus text.  Either pointer may be null; `now` stamps the
/// `fvsst_snapshot_time_seconds` gauge (simulated time).  Duplicate
/// sanitized names keep the first metric and drop later ones, so the
/// output never declares a metric twice.
void write_prometheus(std::ostream& out, const MetricRegistry* registry,
                      const monitor::Monitor* mon, double now);

}  // namespace fvsst::sim
