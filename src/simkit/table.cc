#include "simkit/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fvsst::sim {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << fraction * 100.0 << "%";
  return os.str();
}

std::string TextTable::to_string() const {
  // Compute per-column widths across header and all rows.
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& os) {
    os << "| ";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < cols ? " | " : " |");
    }
    os << "\n";
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');
  os << rule << "\n";
  if (!header_.empty()) {
    render_row(header_, os);
    os << rule << "\n";
  }
  for (const auto& row : rows_) render_row(row, os);
  os << rule << "\n";
  return os.str();
}

void TextTable::print() const {
  std::fputs(to_string().c_str(), stdout);
}

}  // namespace fvsst::sim
