// monitor.h - Online monitoring: streaming aggregation and alert rules.
//
// The paper's claims are claims about behaviour over time — power staying
// under the budget, performance loss bounded while throttled, the cluster
// reallocating within an interval — and until now the repo could only
// demonstrate them by post-processing a full journal.  This subsystem
// evaluates those properties *during* the run, in fixed memory:
//
//   * SlidingWindow — a bucketed ring over the last W seconds answering
//     rate / mean / min / max in O(buckets), no allocation after
//     construction.
//   * Ewma — exponential moving average with a time constant, so irregular
//     observation spacing (event-driven advance) decays identically to
//     tick-driven runs.
//   * P2Quantile — the P-squared streaming quantile estimator (Jain &
//     Chlamtac): five markers, deterministic, zero allocation, exact until
//     five observations have arrived.
//   * RuleSet — alert rules parsed from a small text DSL:
//         alert budget_overshoot severity critical
//             when min(over_budget_w, 600ms) > 0.001 for 2 windows
//     (one rule per line in real input; wrapped here for width)
//   * Monitor — binds rules to named input channels (interned once into
//     InputId handles, so the hot path stays zero-lookup like the
//     MetricRegistry it mirrors), evaluates every rule at sampling
//     instants, and journals typed alert_raised / alert_cleared events.
//
// Determinism is the contract: the monitor is purely observational (it
// never feeds back into scheduling), its inputs are simulation-derived
// values fed on the single-threaded commit path, and evaluation happens at
// the scheduling instants both advance modes share — so journals with
// monitoring enabled are byte-identical across --threads 1..N and across
// --advance-mode tick|event, and runs without a monitor are bit-for-bit
// what they were before this subsystem existed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simkit/event_log.h"
#include "simkit/telemetry.h"

namespace fvsst::sim::monitor {

/// Fixed-memory sliding window over the last `window_s` seconds: a ring of
/// `buckets` sub-intervals, each holding (count, sum, min, max) of the
/// observations that landed in it.  Advancing the window expires whole
/// buckets, so queries are exact to a bucket-width granularity and cost
/// O(buckets) with zero allocation after construction.  Observation times
/// must be non-decreasing.
class SlidingWindow {
 public:
  explicit SlidingWindow(double window_s, std::size_t buckets = 16);

  void observe(double t, double value);

  /// Observations currently inside [t - window_s, t].
  std::size_t count(double t) const;
  double sum(double t) const;
  /// sum / window_s — events (or units) per second over the window.
  double rate(double t) const;
  /// NaN when the window holds no observations.
  double mean(double t) const;
  double min(double t) const;
  double max(double t) const;

  double window_s() const { return window_s_; }
  std::size_t buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    std::int64_t index = -1;  ///< Absolute bucket index; -1 when empty.
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  std::int64_t bucket_index(double t) const;
  template <typename Fold>
  void fold(double t, Fold&& f) const;

  double window_s_;
  double bucket_s_;
  std::vector<Bucket> buckets_;
  std::int64_t newest_ = -1;  ///< Largest absolute bucket index observed.
};

/// Exponential moving average with a time constant: each observation pulls
/// the average toward the sample by 1 - exp(-dt / tau), so the decay per
/// simulated second is the same whether observations arrive every tick or
/// only at event-mode scheduling instants.
class Ewma {
 public:
  explicit Ewma(double tau_s) : tau_s_(tau_s) {}

  void observe(double t, double value);

  bool empty() const { return !has_value_; }
  /// NaN before the first observation.
  double value() const {
    return has_value_ ? value_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  double tau_s_;
  bool has_value_ = false;
  double last_t_ = 0.0;
  double value_ = 0.0;
};

/// The P-squared (P²) streaming quantile estimator (Jain & Chlamtac 1985):
/// maintains five markers — min, the target quantile, the two midpoints and
/// max — and nudges the middle three toward their desired rank positions
/// with parabolic interpolation.  Fixed state, no allocation, and fully
/// deterministic in the observation sequence.  Exact for the first five
/// observations; afterwards an estimate whose error shrinks with the sample
/// count (see tests/test_monitor.cc for the measured bounds).
class P2Quantile {
 public:
  /// `q` in (0, 1); q outside is clamped to [0.001, 0.999].
  explicit P2Quantile(double q);

  void observe(double x);

  std::size_t count() const { return n_; }
  double quantile_arg() const { return q_; }
  /// Current estimate; NaN before the first observation, the exact order
  /// statistic while count() <= 5.
  double value() const;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5];   ///< Marker heights (sorted ascending).
  double pos_[5];       ///< Marker positions (1-based ranks).
  double desired_[5];   ///< Desired positions.
  double incr_[5];      ///< Desired-position increments per observation.
};

/// Alert severity, carried on the journal event.
enum class Severity { kInfo, kWarning, kCritical };

std::string_view severity_name(Severity severity);

/// Windowed aggregation a rule applies to its input.
enum class AggFunc { kRate, kMean, kMin, kMax, kEwma, kValue };

std::string_view agg_func_name(AggFunc func);

/// Comparison between the aggregate and the rule threshold.
enum class CmpOp { kGt, kGe, kLt, kLe };

/// One alert rule: FUNC(input, window) OP threshold, required to hold at
/// `for_windows` consecutive evaluations before the alert raises.
struct Rule {
  std::string name;
  Severity severity = Severity::kWarning;
  AggFunc func = AggFunc::kMean;
  std::string input;      ///< Monitor input channel (or registry key).
  double window_s = 1.0;  ///< Aggregation window (EWMA: time constant).
  CmpOp op = CmpOp::kGt;
  double threshold = 0.0;
  int for_windows = 1;

  /// The rule rendered back in DSL form (journal/report payloads).
  std::string expression() const;
};

/// An ordered collection of rules with the text-DSL parser.  Line format:
///
///   # comment
///   alert NAME [severity info|warning|critical]
///       when FUNC(INPUT, WINDOW) OP THRESHOLD [for N windows]
///
/// FUNC: rate | mean | min | max | ewma | value; WINDOW: a number with a
/// mandatory s or ms suffix ("10s", "600ms"); OP: > >= < <=.  One rule per
/// line; parse throws std::runtime_error with a line number on malformed
/// input, including duplicate rule names.
class RuleSet {
 public:
  static RuleSet parse(std::istream& in);
  static RuleSet parse_string(std::string_view text);

  void add(Rule rule);

  bool empty() const { return rules_.empty(); }
  std::size_t size() const { return rules_.size(); }
  const std::vector<Rule>& rules() const { return rules_; }

 private:
  std::vector<Rule> rules_;
};

/// The default rule pack (DSL text): budget overshoot, pass-2 downgrade
/// storms, degraded / fail-safe node fraction, failover-window breach,
/// coordinator silence, journal loss and cluster message loss.  Window and
/// threshold choices assume the default sampling configuration (t = 10 ms,
/// T = 10 t); see docs/observability.md for the input each rule watches.
std::string default_rule_pack();

/// Interned handle to a Monitor input channel (see MetricId): the name is
/// resolved once and every observation afterwards is an array index.
struct InputId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/// Live state of one rule, exposed for reports and exposition.
struct AlertState {
  bool firing = false;
  int true_windows = 0;    ///< Consecutive evaluations the predicate held.
  double value = std::numeric_limits<double>::quiet_NaN();  ///< Last aggregate.
  double raised_t = -1.0;  ///< Time of the last raise (-1: never).
  std::size_t raises = 0;
  std::size_t clears = 0;
};

/// The monitor: owns the rules' aggregator state, the input channels and
/// the per-input quantile sketches, and evaluates everything at the
/// sampling instants the daemons share between advance modes.
///
/// Usage: intern the inputs once (`input("over_budget_w")`), push
/// observations with observe() from the simulation's serial commit path,
/// optionally bind MetricRegistry counters/series (delta- and tail-sampled
/// through interned handles at each evaluation — no string lookups after
/// binding), then call evaluate(now) at every scheduling instant.
class Monitor {
 public:
  struct Options {
    /// Journal receiving alert_raised / alert_cleared events (not owned;
    /// null journals nothing).
    EventLog* journal = nullptr;
    /// Ring granularity of every rule window.
    std::size_t window_buckets = 16;
    /// Quantiles sketched per input for exposition ({} disables).
    std::vector<double> sketch_quantiles = {0.5, 0.9, 0.99};
  };

  explicit Monitor(const RuleSet& rules);
  Monitor(const RuleSet& rules, Options options);
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Finds or registers the input channel `name`; O(1) afterwards.
  InputId input(std::string_view name);

  /// Feeds one observation into every rule window and sketch bound to
  /// `id`.  Times must be non-decreasing per input.  Allocation-free.
  void observe(InputId id, double t, double value);

  /// Binds a registry counter to input `input_name`: each evaluation
  /// observes the counter's delta since the previous evaluation.
  void bind_counter(std::string_view input_name, const MetricRegistry* registry,
                    CounterId id);

  /// Binds a registry series: each evaluation observes the samples
  /// appended since the previous evaluation, at their own times.
  void bind_series(std::string_view input_name, const MetricRegistry* registry,
                   MetricId id);

  /// Binds every rule input that names a registry counter or series key.
  /// Returns the number of bindings made.  Non-const: absent keys are not
  /// registered, but present ones are interned into handles.
  std::size_t bind_metrics(MetricRegistry& registry);

  /// Pulls bound metrics, re-aggregates every rule at `now`, fires and
  /// clears alerts, and journals the transitions.  Deterministic in the
  /// observation sequence.
  void evaluate(double now);

  std::size_t evaluations() const { return evaluations_; }
  std::size_t alerts_raised() const { return alerts_raised_; }
  std::size_t alerts_cleared() const { return alerts_cleared_; }
  /// Rules currently firing.
  std::size_t firing_count() const;

  const std::vector<Rule>& rules() const { return rules_; }
  /// Parallel to rules().
  const std::vector<AlertState>& alerts() const { return states_; }

  /// Registration-ordered input names.
  const std::vector<std::string>& input_names() const { return input_names_; }
  /// Observations pushed into input `id` so far.
  std::size_t input_count(InputId id) const;
  /// Last value observed on input `id` (NaN before the first).
  double input_last(InputId id) const;
  /// The input's sketch for Options::sketch_quantiles[k]; NaN before the
  /// first observation or when sketches are disabled.
  double input_quantile(InputId id, std::size_t k) const;
  const std::vector<double>& sketch_quantiles() const {
    return options_.sketch_quantiles;
  }

 private:
  struct RuleState {
    SlidingWindow window;
    Ewma ewma;
    bool has_value = false;
    double last_value = 0.0;
  };
  struct Input {
    std::string name;  // Kept in input_names_; here for journal payloads.
    std::vector<std::size_t> rule_indices;
    std::vector<P2Quantile> sketches;
    std::size_t observations = 0;
    double last_value = std::numeric_limits<double>::quiet_NaN();
  };
  struct CounterBinding {
    InputId input;
    const MetricRegistry* registry;
    CounterId id;
    double last = 0.0;
  };
  struct SeriesBinding {
    InputId input;
    const MetricRegistry* registry;
    MetricId id;
    std::size_t next_sample = 0;
  };

  double rule_value(std::size_t rule_index, double now) const;

  Options options_;
  std::vector<Rule> rules_;
  std::vector<RuleState> rule_states_;
  std::vector<AlertState> states_;
  std::vector<Input> inputs_;
  std::vector<std::string> input_names_;
  std::unordered_map<std::string, std::size_t> input_index_;
  std::vector<CounterBinding> counter_bindings_;
  std::vector<SeriesBinding> series_bindings_;
  std::size_t evaluations_ = 0;
  std::size_t alerts_raised_ = 0;
  std::size_t alerts_cleared_ = 0;
};

}  // namespace fvsst::sim::monitor
