#include "simkit/stats.h"

#include <algorithm>
#include <stdexcept>
#include <cmath>

namespace fvsst::sim {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const {
  return std::sqrt(variance());
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedStat::record(double t, double value) {
  if (!has_value_) {
    has_value_ = true;
    t_first_ = t;
  } else if (t > t_) {
    weighted_sum_ += (t - t_) * value_;
  }
  t_ = t;
  value_ = value;
}

double TimeWeightedStat::integral_until(double t_end) const {
  if (!has_value_) return 0.0;
  double total = weighted_sum_;
  if (t_end > t_) total += (t_end - t_) * value_;
  return total;
}

double TimeWeightedStat::mean_until(double t_end) const {
  if (!has_value_) return 0.0;
  const double span = std::max(t_end, t_) - t_first_;
  if (span <= 0.0) return value_;
  return integral_until(t_end) / span;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {}

void Histogram::add(double x, double weight) {
  if (counts_.empty()) return;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i + 1);
}

double Histogram::fraction(std::size_t i) const {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

double Histogram::quantile(double p) const {
  // Total contract (the report generator feeds arbitrary journals through
  // here): an empty histogram or NaN p is NaN, out-of-range p clamps.
  if (total_ <= 0.0 || std::isnan(p)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * total_;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] <= 0.0) continue;
    if (cumulative + counts_[i] >= target) {
      // Linear interpolation within the bin that crosses the target.
      const double inside = std::clamp(
          (target - cumulative) / counts_[i], 0.0, 1.0);
      return bin_lo(i) + inside * (bin_hi(i) - bin_lo(i));
    }
    cumulative += counts_[i];
  }
  // Rounding left p * total just past the last weight: top of the range.
  for (std::size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] > 0.0) return bin_hi(i);
  }
  return hi_;
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) throw std::out_of_range("SampleSet: empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) throw std::out_of_range("SampleSet: empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) throw std::out_of_range("SampleSet: empty");
  if (p < 0.0 || p > 1.0) throw std::out_of_range("SampleSet: p in [0,1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank definition: smallest value with cumulative share >= p.
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p * n));
  if (rank > 0) --rank;
  return samples_[rank];
}

void CategoryHistogram::add(double key, double weight) {
  for (auto& e : entries_) {
    if (e.key == key) {
      e.weight += weight;
      total_ += weight;
      return;
    }
  }
  entries_.push_back({key, weight});
  total_ += weight;
}

std::vector<CategoryHistogram::Entry> CategoryHistogram::sorted() const {
  auto out = entries_;
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  return out;
}

double CategoryHistogram::fraction(double key) const {
  if (total_ <= 0.0) return 0.0;
  for (const auto& e : entries_) {
    if (e.key == key) return e.weight / total_;
  }
  return 0.0;
}

}  // namespace fvsst::sim
