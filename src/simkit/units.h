// units.h - Unit conventions and conversion constants used across fvsst.
//
// All quantities are stored in SI base units as `double`:
//   frequency  -> hertz (Hz)
//   time       -> seconds (s)
//   power      -> watts (W)
//   voltage    -> volts (V)
//   energy     -> joules (J)
//
// The constants below make call sites self-documenting, e.g.
// `core.set_frequency(750 * units::MHz)` or `sim.run_for(100 * units::ms)`.
#pragma once

namespace fvsst::units {

// --- Frequency ---------------------------------------------------------
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// --- Time ---------------------------------------------------------------
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;

// --- Power / voltage ----------------------------------------------------
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;

// --- Counts -------------------------------------------------------------
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;

}  // namespace fvsst::units
