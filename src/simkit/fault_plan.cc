#include "simkit/fault_plan.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "simkit/rng.h"

namespace fvsst::sim {
namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kSensorDropout, "sensor_dropout"},
    {FaultKind::kSensorNoise, "sensor_noise"},
    {FaultKind::kSensorStuck, "sensor_stuck"},
    {FaultKind::kActuationReject, "actuation_reject"},
    {FaultKind::kActuationSticky, "actuation_sticky"},
    {FaultKind::kActuationDelay, "actuation_delay"},
    {FaultKind::kChannelLoss, "channel_loss"},
    {FaultKind::kNodeCrash, "node_crash"},
    {FaultKind::kStaleSummaries, "stale_summaries"},
    {FaultKind::kCoordinatorCrash, "coordinator_crash"},
    {FaultKind::kPartition, "partition"},
    {FaultKind::kChannelReorder, "channel_reorder"},
    {FaultKind::kChannelDuplicate, "channel_duplicate"},
    {FaultKind::kChannelDelaySpike, "channel_delay_spike"},
    {FaultKind::kChannelCorrupt, "channel_corrupt"},
};

/// Kinds whose `value` is a per-message probability — the parser enforces
/// the [0, 1] range with a line number (a typo'd p=1.5 or p=nan would
/// otherwise inject nonsense silently).
bool value_is_probability(FaultKind kind) {
  return kind == FaultKind::kChannelLoss ||
         kind == FaultKind::kChannelReorder ||
         kind == FaultKind::kChannelDuplicate ||
         kind == FaultKind::kChannelCorrupt;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Stateless hash of a query point.  Chaining through splitmix64 keeps the
/// mix platform-independent; the time enters via its IEEE-754 bit pattern
/// so that e.g. 0.1 hashed twice is the same draw while 0.1 and
/// 0.1000000001 are independent.
std::uint64_t hash_query(std::uint64_t seed, FaultKind kind, int target,
                         double now) {
  std::uint64_t h = splitmix64(seed);
  h = splitmix64(h ^ static_cast<std::uint64_t>(kind));
  h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(target)));
  h = splitmix64(h ^ std::bit_cast<std::uint64_t>(now));
  return h;
}

/// Top 53 bits as a uniform double in [0, 1).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[noreturn]] void parse_fail(int line_no, const std::string& why) {
  throw std::runtime_error("fault plan line " + std::to_string(line_no) +
                           ": " + why);
}

/// Strict full-token number parsing: std::stoi/stod accept trailing junk
/// ("cpu=1x" would silently parse as 1), which hides typos in hand-written
/// plans.  Throws std::invalid_argument unless the whole token converts.
int parse_int_strict(const std::string& s) {
  std::size_t used = 0;
  const int v = std::stoi(s, &used);
  if (used != s.size()) throw std::invalid_argument(s);
  return v;
}

double parse_double_strict(const std::string& s) {
  std::size_t used = 0;
  const double v = std::stod(s, &used);
  if (used != s.size()) throw std::invalid_argument(s);
  return v;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (const auto& kn : kKindNames) {
    if (kn.name == name) return kn.kind;
  }
  return std::nullopt;
}

void FaultPlan::add(const FaultSpec& spec) { specs_.push_back(spec); }

double FaultPlan::last_end_s() const {
  double last = 0.0;
  for (const auto& spec : specs_) last = std::max(last, spec.end_s);
  return last;
}

const FaultSpec* FaultPlan::active(FaultKind kind, int target,
                                   double now) const {
  for (const auto& spec : specs_) {
    if (spec.kind != kind) continue;
    if (spec.target != -1 && target != -1 && spec.target != target) continue;
    if (now >= spec.start_s && now < spec.end_s) return &spec;
  }
  return nullptr;
}

bool FaultPlan::chance(FaultKind kind, int target, double now,
                       double p) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return to_unit(hash_query(seed_, kind, target, now)) < p;
}

double FaultPlan::noise(FaultKind kind, int target, double now,
                        double stddev) const {
  if (stddev <= 0.0) return 0.0;
  // Box-Muller from two independent hashed uniforms.
  std::uint64_t h = hash_query(seed_, kind, target, now);
  double u1 = to_unit(h);
  double u2 = to_unit(splitmix64(h ^ 0xd1b54a32d192ed03ull));
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return stddev * std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) continue;  // blank line

    if (head == "seed") {
      std::uint64_t seed = 0;
      std::string trailing;
      if (!(tokens >> seed)) parse_fail(line_no, "expected `seed N`");
      if (tokens >> trailing) {
        parse_fail(line_no, "trailing junk after seed: `" + trailing + "`");
      }
      plan.seed_ = seed;
      continue;
    }

    auto kind = fault_kind_from_name(head);
    if (!kind) parse_fail(line_no, "unknown fault kind `" + head + "`");

    FaultSpec spec;
    spec.kind = *kind;
    if (!(tokens >> spec.start_s >> spec.end_s)) {
      parse_fail(line_no, "expected `" + head + " START END [key=value ...]`");
    }
    if (spec.end_s < spec.start_s) {
      parse_fail(line_no, "window ends before it starts");
    }

    std::string kv;
    while (tokens >> kv) {
      auto eq = kv.find('=');
      if (eq == std::string::npos) {
        parse_fail(line_no, "expected key=value, got `" + kv + "`");
      }
      std::string key = kv.substr(0, eq);
      std::string val = kv.substr(eq + 1);
      try {
        if (key == "cpu" || key == "node" || key == "sensor" ||
            key == "target" || key == "coordinator") {
          spec.target = parse_int_strict(val);
        } else if (key == "value" || key == "stddev" || key == "p" ||
                   key == "delay" || key == "watts") {
          spec.value = parse_double_strict(val);
        } else {
          parse_fail(line_no, "unknown key `" + key + "`");
        }
      } catch (const std::invalid_argument&) {
        parse_fail(line_no, "bad number `" + val + "` for key `" + key + "`");
      } catch (const std::out_of_range&) {
        parse_fail(line_no, "number out of range `" + val + "`");
      }
    }
    // Range validation per kind.  The negated comparisons also reject NaN
    // (every comparison with NaN is false), matching the strict-parsing
    // contract: a malformed plan fails loudly with its line number.
    if (value_is_probability(spec.kind) &&
        !(spec.value >= 0.0 && spec.value <= 1.0)) {
      parse_fail(line_no, std::string(fault_kind_name(spec.kind)) +
                              " probability must be in [0, 1], got `" +
                              std::to_string(spec.value) + "`");
    }
    if (spec.kind == FaultKind::kChannelDelaySpike && !(spec.value >= 0.0)) {
      parse_fail(line_no, "channel_delay_spike delay must be >= 0, got `" +
                              std::to_string(spec.value) + "`");
    }
    plan.specs_.push_back(spec);
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed,
                            const RandomPlanOptions& opts) {
  FaultPlan plan(seed);
  Rng rng(splitmix64(seed ^ 0xfa17fa17fa17fa17ull));

  std::vector<FaultKind> pool;
  if (opts.sensor_faults) {
    pool.insert(pool.end(), {FaultKind::kSensorDropout, FaultKind::kSensorNoise,
                             FaultKind::kSensorStuck});
  }
  if (opts.actuation_faults) {
    pool.insert(pool.end(),
                {FaultKind::kActuationReject, FaultKind::kActuationSticky,
                 FaultKind::kActuationDelay});
  }
  if (opts.cluster_faults) {
    pool.insert(pool.end(), {FaultKind::kChannelLoss, FaultKind::kNodeCrash,
                             FaultKind::kStaleSummaries});
  }
  if (opts.coordinator_faults) {
    pool.insert(pool.end(),
                {FaultKind::kCoordinatorCrash, FaultKind::kPartition});
  }
  if (opts.transport_faults) {
    pool.insert(pool.end(),
                {FaultKind::kChannelReorder, FaultKind::kChannelDuplicate,
                 FaultKind::kChannelDelaySpike, FaultKind::kChannelCorrupt});
  }
  if (pool.empty() || opts.max_faults <= 0) return plan;

  double horizon =
      std::max(0.0, opts.duration_s * std::clamp(opts.recovery_fraction,
                                                 0.0, 1.0));
  int n = static_cast<int>(rng.uniform_int(1, opts.max_faults));
  for (int i = 0; i < n; ++i) {
    FaultSpec spec;
    spec.kind = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    double start = rng.uniform(0.0, horizon * 0.7);
    double len = rng.uniform(0.05 * horizon, 0.4 * horizon);
    spec.start_s = start;
    spec.end_s = std::min(horizon, start + len);

    bool cluster_kind = spec.kind == FaultKind::kChannelLoss ||
                        spec.kind == FaultKind::kNodeCrash ||
                        spec.kind == FaultKind::kStaleSummaries ||
                        spec.kind == FaultKind::kChannelReorder ||
                        spec.kind == FaultKind::kChannelDuplicate ||
                        spec.kind == FaultKind::kChannelDelaySpike ||
                        spec.kind == FaultKind::kChannelCorrupt;
    bool coordinator_kind = spec.kind == FaultKind::kCoordinatorCrash ||
                            spec.kind == FaultKind::kPartition;
    std::size_t targets = coordinator_kind ? opts.coordinators
                          : cluster_kind   ? opts.nodes
                                           : opts.cpus;
    bool sensor_kind = spec.kind == FaultKind::kSensorDropout ||
                       spec.kind == FaultKind::kSensorNoise ||
                       spec.kind == FaultKind::kSensorStuck;
    if (sensor_kind) targets = 1;  // one aggregate power sensor per run
    spec.target =
        targets == 0
            ? -1
            : static_cast<int>(rng.uniform_int(
                  0, static_cast<std::int64_t>(targets) - 1));

    switch (spec.kind) {
      case FaultKind::kSensorNoise:
        spec.value = rng.uniform(0.5, 8.0);  // watts of stddev
        break;
      case FaultKind::kChannelLoss:
        spec.value = rng.uniform(0.2, 0.9);  // drop probability
        break;
      case FaultKind::kActuationDelay:
        spec.value = rng.uniform(0.001, 0.02);  // seconds
        break;
      case FaultKind::kChannelReorder:
      case FaultKind::kChannelDuplicate:
      case FaultKind::kChannelCorrupt:
        spec.value = rng.uniform(0.2, 0.8);  // per-message probability
        break;
      case FaultKind::kChannelDelaySpike:
        spec.value = rng.uniform(0.002, 0.03);  // extra seconds
        break;
      default:
        spec.value = 0.0;
        break;
    }
    plan.specs_.push_back(spec);
  }
  return plan;
}

}  // namespace fvsst::sim
