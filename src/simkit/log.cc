#include "simkit/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fvsst::sim {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void init_log_level_from_env() {
  const char* env = std::getenv("FVSST_LOG");
  if (!env) return;
  if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_level = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
  else if (std::strcmp(env, "off") == 0) g_level = LogLevel::kOff;
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message, double sim_time) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  if (sim_time >= 0.0) {
    std::fprintf(stderr, "[%s] [%s] [t=%.4fs] %s\n", level_name(level),
                 component.c_str(), sim_time, message.c_str());
  } else {
    std::fprintf(stderr, "[%s] [%s] %s\n", level_name(level),
                 component.c_str(), message.c_str());
  }
}

}  // namespace fvsst::sim
