// stats.h - Streaming statistics used throughout the benches and tests.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace fvsst::sim {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal, e.g. "mean power
/// over the run" where power changes only at scheduling instants.
class TimeWeightedStat {
 public:
  /// Records that the signal takes `value` starting at time `t`.
  /// Times must be non-decreasing.
  void record(double t, double value);

  /// Closes the last segment at time `t_end` and returns the mean.
  double mean_until(double t_end) const;

  /// Integral of the signal up to `t_end` (e.g. energy from power).
  double integral_until(double t_end) const;

  bool empty() const { return !has_value_; }
  double last_value() const { return value_; }
  double last_time() const { return t_; }

 private:
  bool has_value_ = false;
  double t_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  double t_first_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin.  Used for "% of time at each frequency" style results.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  /// Fraction of total weight in bin i (0 when empty).
  double fraction(std::size_t i) const;

  /// Approximate p-quantile: finds the bin where the cumulative weight
  /// crosses p and interpolates linearly inside it, so resolution is the
  /// bin width.  Total function: an empty histogram (or NaN p) returns
  /// NaN — never throws — and p is clamped into [0, 1].  Endpoints are
  /// pinned to observed support: p = 0 is the lower edge of the first
  /// non-empty bin, p = 1 the upper edge of the last, so a single sample
  /// spans exactly its own bin.  For exact order statistics use
  /// SampleSet::percentile.
  double quantile(double p) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Stores samples for exact order statistics (response-time percentiles).
/// O(n) memory; suitable for the tens of thousands of samples the benches
/// produce.
class SampleSet {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;

  /// Exact p-quantile with p in [0, 1] (nearest-rank).  Throws
  /// std::out_of_range when empty or p outside [0, 1].
  double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Discrete category histogram keyed by exact values (e.g. the 16 frequency
/// settings).  Keeps insertion order of first appearance.
class CategoryHistogram {
 public:
  void add(double key, double weight = 1.0);

  struct Entry {
    double key;
    double weight;
  };
  /// Entries sorted by key ascending.
  std::vector<Entry> sorted() const;
  double total() const { return total_; }
  /// Weight fraction at `key` (0 when absent or empty).
  double fraction(double key) const;

 private:
  std::vector<Entry> entries_;
  double total_ = 0.0;
};

}  // namespace fvsst::sim
