// telemetry.h - Named-metric registry shared by the control-loop daemons.
//
// The paper's post-processing relies on the daemon's scheduling and
// performance-counter logs (per-CPU granted/desired frequency, predicted
// and measured IPC, deviation, power).  Instead of every daemon carrying
// hand-rolled trace members, a MetricRegistry owns the traces under
// structured keys ("cpu3/granted_hz") and exports them through pluggable
// sinks: the in-memory TimeSeries themselves, one-CSV-per-metric
// directories, or JSON lines.  Scalar counters (cycle counts, per-stage
// wall time) live alongside the series so daemon overhead is a first-class
// metric rather than an estimated constant.
#pragma once

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simkit/time_series.h"

namespace fvsst::sim {

/// Writes `s` to `out` as a JSON string literal: `"` and `\` are
/// backslash-escaped and every control character < 0x20 becomes `\uXXXX`
/// (`\n`/`\t`/`\r`/`\b`/`\f` use their short forms).
void write_json_string(std::ostream& out, std::string_view s);

/// Receives every metric in a registry; implement to add export formats.
class MetricSink {
 public:
  virtual ~MetricSink() = default;
  virtual void series(const std::string& key, const TimeSeries& s) = 0;
  virtual void counter(const std::string& key, double value) = 0;
};

/// Owner of named metrics.  References returned by series()/counter() stay
/// valid for the registry's lifetime (storage is a deque), so hot paths can
/// hold the pointer and append without lookups.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Finds or registers the series stored under `key`.  `display_name`
  /// (used for chart labels and CSV headers) is applied only on first
  /// registration and defaults to the key itself.
  TimeSeries& series(const std::string& key, const std::string& display_name = {});

  /// Series stored under `key`, or nullptr when absent.
  const TimeSeries* find_series(const std::string& key) const;

  /// Series stored under `key`; throws std::out_of_range when absent.
  const TimeSeries& at(const std::string& key) const;

  /// Finds or registers a scalar counter (starts at 0).
  double& counter(const std::string& key);

  /// Counter value, or 0 when absent.
  double counter_value(const std::string& key) const;

  /// Registration-ordered keys.
  const std::vector<std::string>& series_keys() const { return series_keys_; }
  const std::vector<std::string>& counter_keys() const { return counter_keys_; }

  std::size_t series_count() const { return series_keys_.size(); }
  std::size_t counter_count() const { return counter_keys_.size(); }

  /// Streams every metric through `sink` in registration order (series
  /// first, then counters).
  void export_to(MetricSink& sink) const;

 private:
  std::deque<TimeSeries> series_storage_;
  std::vector<std::string> series_keys_;
  std::unordered_map<std::string, std::size_t> series_index_;
  std::deque<double> counter_storage_;
  std::vector<std::string> counter_keys_;
  std::unordered_map<std::string, std::size_t> counter_index_;
};

/// Writes each series as `<dir>/<key>.csv` ('/' in keys becomes '_') and
/// all counters into `<dir>/counters.csv`.  Best effort: unwritable paths
/// are counted, not thrown.
class CsvDirectorySink final : public MetricSink {
 public:
  /// `dt` > 0 resamples each series onto a uniform grid; 0 writes raw
  /// samples.
  explicit CsvDirectorySink(std::string dir, double dt = 0.0);
  ~CsvDirectorySink() override;

  void series(const std::string& key, const TimeSeries& s) override;
  void counter(const std::string& key, double value) override;

  std::size_t failures() const { return failures_; }

 private:
  std::string dir_;
  double dt_;
  std::size_t failures_ = 0;
  std::vector<std::pair<std::string, double>> counters_;
};

/// Writes one JSON object per line:
///   {"metric":"cpu0/granted_hz","name":"granted_hz","samples":[[t,v],...]}
///   {"metric":"loop/policy_s","value":0.00012}
class JsonLinesSink final : public MetricSink {
 public:
  explicit JsonLinesSink(std::ostream& out) : out_(out) {}

  void series(const std::string& key, const TimeSeries& s) override;
  void counter(const std::string& key, double value) override;

 private:
  std::ostream& out_;
};

}  // namespace fvsst::sim
