// telemetry.h - Named-metric registry shared by the control-loop daemons.
//
// The paper's post-processing relies on the daemon's scheduling and
// performance-counter logs (per-CPU granted/desired frequency, predicted
// and measured IPC, deviation, power).  Instead of every daemon carrying
// hand-rolled trace members, a MetricRegistry owns the traces under
// structured keys ("cpu3/granted_hz") and exports them through pluggable
// sinks: the in-memory TimeSeries themselves, one-CSV-per-metric
// directories, or JSON lines.  Scalar counters (cycle counts, per-stage
// wall time) live alongside the series so daemon overhead is a first-class
// metric rather than an estimated constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simkit/time_series.h"

namespace fvsst::sim {

/// Writes `s` to `out` as a JSON string literal: `"` and `\` are
/// backslash-escaped and every control character < 0x20 becomes `\uXXXX`
/// (`\n`/`\t`/`\r`/`\b`/`\f` use their short forms).
void write_json_string(std::ostream& out, std::string_view s);

/// Receives every metric in a registry; implement to add export formats.
class MetricSink {
 public:
  virtual ~MetricSink() = default;
  virtual void series(const std::string& key, const TimeSeries& s) = 0;
  virtual void counter(const std::string& key, double value) = 0;
};

/// Interned handle to a registry series: the string key is resolved (and
/// the hash paid) exactly once, in MetricRegistry::intern_series; every
/// access afterwards is an array index.  Handles stay valid for the
/// registry's lifetime and are cheap to copy.
struct MetricId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/// Interned handle to a registry counter (see MetricId).
struct CounterId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/// Owner of named metrics.  References returned by series()/counter() stay
/// valid for the registry's lifetime (storage is a deque), so hot paths can
/// hold the pointer and append without lookups — or intern the key into a
/// MetricId/CounterId at construction and index through that.  The
/// string-keyed accessors are thin wrappers over the intern path; each of
/// their hash-map probes is tallied in map_lookups(), so a hot loop can
/// assert it does none.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Finds or registers the series stored under `key` and returns its
  /// handle — the one-time string resolution of the hot path.
  /// `display_name` (used for chart labels and CSV headers) is applied
  /// only on first registration and defaults to the key itself.
  MetricId intern_series(const std::string& key,
                         const std::string& display_name = {});

  /// Finds or registers a scalar counter (starts at 0) and returns its
  /// handle.
  CounterId intern_counter(const std::string& key);

  /// O(1) handle access; no hashing, no lookup counting.
  TimeSeries& series(MetricId id) { return series_storage_[id.index]; }
  const TimeSeries& series(MetricId id) const {
    return series_storage_[id.index];
  }
  double& counter(CounterId id) { return counter_storage_[id.index]; }
  double counter(CounterId id) const { return counter_storage_[id.index]; }

  /// The key a handle was interned under.
  const std::string& series_key(MetricId id) const {
    return series_keys_[id.index];
  }
  const std::string& counter_key(CounterId id) const {
    return counter_keys_[id.index];
  }

  /// Finds or registers the series stored under `key` (string-keyed
  /// compatibility wrapper over intern_series).
  TimeSeries& series(const std::string& key, const std::string& display_name = {});

  /// Series stored under `key`, or nullptr when absent.
  const TimeSeries* find_series(const std::string& key) const;

  /// Series stored under `key`; throws std::out_of_range when absent.
  const TimeSeries& at(const std::string& key) const;

  /// Finds or registers a scalar counter (starts at 0); string-keyed
  /// compatibility wrapper over intern_counter.
  double& counter(const std::string& key);

  /// Counter value, or 0 when absent.
  double counter_value(const std::string& key) const;

  /// Hash-map probes made by the string-keyed accessors so far.  Debug
  /// aid for the zero-lookup steady-state contract: snapshot before a
  /// stretch of hot cycles, assert the delta is zero after.
  std::uint64_t map_lookups() const { return map_lookups_; }

  /// Registration-ordered keys.
  const std::vector<std::string>& series_keys() const { return series_keys_; }
  const std::vector<std::string>& counter_keys() const { return counter_keys_; }

  std::size_t series_count() const { return series_keys_.size(); }
  std::size_t counter_count() const { return counter_keys_.size(); }

  /// Streams every metric through `sink` in registration order (series
  /// first, then counters).
  void export_to(MetricSink& sink) const;

 private:
  std::deque<TimeSeries> series_storage_;
  std::vector<std::string> series_keys_;
  std::unordered_map<std::string, std::size_t> series_index_;
  std::deque<double> counter_storage_;
  std::vector<std::string> counter_keys_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  mutable std::uint64_t map_lookups_ = 0;
};

/// Writes each series as `<dir>/<key>.csv` ('/' in keys becomes '_') and
/// all counters into `<dir>/counters.csv`.  Best effort: unwritable paths
/// are counted, not thrown.
class CsvDirectorySink final : public MetricSink {
 public:
  /// `dt` > 0 resamples each series onto a uniform grid; 0 writes raw
  /// samples.
  explicit CsvDirectorySink(std::string dir, double dt = 0.0);
  ~CsvDirectorySink() override;

  void series(const std::string& key, const TimeSeries& s) override;
  void counter(const std::string& key, double value) override;

  std::size_t failures() const { return failures_; }

 private:
  std::string dir_;
  double dt_;
  std::size_t failures_ = 0;
  std::vector<std::pair<std::string, double>> counters_;
};

/// Writes one JSON object per line:
///   {"metric":"cpu0/granted_hz","name":"granted_hz","samples":[[t,v],...]}
///   {"metric":"loop/policy_s","value":0.00012}
class JsonLinesSink final : public MetricSink {
 public:
  explicit JsonLinesSink(std::ostream& out) : out_(out) {}

  void series(const std::string& key, const TimeSeries& s) override;
  void counter(const std::string& key, double value) override;

 private:
  std::ostream& out_;
};

}  // namespace fvsst::sim
