#include "simkit/prometheus.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

#include "simkit/monitor.h"

namespace fvsst::sim {

namespace {

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Label values backslash-escape '\', '"' and newline (the exposition
/// format's escaping rules).
std::string escape_label(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Emits one `# TYPE` header + single sample, deduplicating by name.
class Exposition {
 public:
  explicit Exposition(std::ostream& out) : out_(out) {}

  /// Declares `name` as `type` once; false when the name was already
  /// declared with a conflicting shape (the sample must then be dropped).
  bool declare(const std::string& name, const char* type) {
    if (!declared_.insert(name).second) return false;
    out_ << "# TYPE " << name << ' ' << type << '\n';
    return true;
  }

  void gauge(const std::string& name, double value) {
    if (!declare(name, "gauge")) return;
    out_ << name << ' ' << format_value(value) << '\n';
  }

  /// Declares once and appends one labelled sample per call.
  void labelled(const std::string& name, const char* type,
                const std::string& labels, double value) {
    if (declared_.insert(name).second) {
      out_ << "# TYPE " << name << ' ' << type << '\n';
    }
    out_ << name << '{' << labels << "} " << format_value(value) << '\n';
  }

 private:
  std::ostream& out_;
  std::set<std::string> declared_;
};

class PrometheusSink final : public MetricSink {
 public:
  explicit PrometheusSink(Exposition& exp) : exp_(exp) {}

  void series(const std::string& key, const TimeSeries& s) override {
    const std::string name = prometheus_metric_name(key);
    if (!s.empty()) {
      exp_.gauge(name, s[s.size() - 1].value);
    }
    exp_.gauge(name + "_samples", static_cast<double>(s.size()));
  }

  void counter(const std::string& key, double value) override {
    exp_.gauge(prometheus_metric_name(key), value);
  }

 private:
  Exposition& exp_;
};

}  // namespace

std::string prometheus_metric_name(std::string_view key) {
  std::string out = "fvsst_";
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void write_prometheus(std::ostream& out, const MetricRegistry* registry,
                      const monitor::Monitor* mon, double now) {
  Exposition exp(out);
  exp.gauge("fvsst_snapshot_time_seconds", now);
  if (registry) {
    PrometheusSink sink(exp);
    registry->export_to(sink);
  }
  if (mon) {
    exp.gauge("fvsst_monitor_evaluations",
              static_cast<double>(mon->evaluations()));
    exp.gauge("fvsst_monitor_alerts_raised_total",
              static_cast<double>(mon->alerts_raised()));
    exp.gauge("fvsst_monitor_alerts_cleared_total",
              static_cast<double>(mon->alerts_cleared()));
    exp.gauge("fvsst_monitor_alerts_firing",
              static_cast<double>(mon->firing_count()));
    const auto& rules = mon->rules();
    const auto& alerts = mon->alerts();
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const std::string labels = "rule=\"" + escape_label(rules[i].name) +
                                 "\",severity=\"" +
                                 std::string(monitor::severity_name(
                                     rules[i].severity)) +
                                 "\"";
      exp.labelled("fvsst_alert_firing", "gauge", labels,
                   alerts[i].firing ? 1.0 : 0.0);
      exp.labelled("fvsst_alert_raised_total", "counter", labels,
                   static_cast<double>(alerts[i].raises));
      exp.labelled("fvsst_alert_value", "gauge", labels, alerts[i].value);
    }
    const auto& inputs = mon->input_names();
    const auto& quantiles = mon->sketch_quantiles();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const monitor::InputId id{i};
      const std::string base = "input=\"" + escape_label(inputs[i]) + "\"";
      exp.labelled("fvsst_monitor_input_observations", "counter", base,
                   static_cast<double>(mon->input_count(id)));
      if (mon->input_count(id) == 0) continue;
      exp.labelled("fvsst_monitor_input_last", "gauge", base,
                   mon->input_last(id));
      for (std::size_t k = 0; k < quantiles.size(); ++k) {
        exp.labelled("fvsst_monitor_input_quantile", "gauge",
                     base + ",q=\"" + format_value(quantiles[k]) + "\"",
                     mon->input_quantile(id, k));
      }
    }
  }
}

}  // namespace fvsst::sim
