#include "simkit/event_log.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>

#include "simkit/telemetry.h"

namespace fvsst::sim {

namespace {

struct TypeName {
  EventType type;
  std::string_view name;
};

constexpr std::array<TypeName, 23> kTypeNames{{
    {EventType::kRunMeta, "run_meta"},
    {EventType::kTablePoint, "table_point"},
    {EventType::kCycleStart, "cycle_start"},
    {EventType::kDecision, "decision"},
    {EventType::kDowngrade, "downgrade"},
    {EventType::kBudgetChange, "budget_change"},
    {EventType::kIdleEnter, "idle_enter"},
    {EventType::kIdleExit, "idle_exit"},
    {EventType::kInfeasibleBudget, "infeasible_budget"},
    {EventType::kActuation, "actuation"},
    {EventType::kFault, "fault"},
    {EventType::kDegradedMode, "degraded_mode"},
    {EventType::kMessageLost, "message_lost"},
    {EventType::kEpochChange, "epoch_change"},
    {EventType::kSettingsRejected, "settings_rejected"},
    {EventType::kSnapshot, "snapshot"},
    {EventType::kAlertRaised, "alert_raised"},
    {EventType::kAlertCleared, "alert_cleared"},
    {EventType::kMessageRetransmit, "message_retransmit"},
    {EventType::kMessageDuplicate, "message_duplicate"},
    {EventType::kMessageExpired, "message_expired"},
    {EventType::kMessageCorrupt, "message_corrupt"},
    {EventType::kAggregation, "aggregation"},
}};

}  // namespace

std::string_view event_type_name(EventType type) {
  for (const auto& tn : kTypeNames) {
    if (tn.type == type) return tn.name;
  }
  return "?";
}

std::optional<EventType> event_type_from_name(std::string_view name) {
  for (const auto& tn : kTypeNames) {
    if (tn.name == name) return tn.type;
  }
  return std::nullopt;
}

bool Event::has_num(std::string_view key) const {
  for (const auto& [k, v] : num) {
    if (k == key) return true;
  }
  return false;
}

double Event::num_or(std::string_view key, double fallback) const {
  for (const auto& [k, v] : num) {
    if (k == key) return v;
  }
  return fallback;
}

const std::string* Event::find_str(std::string_view key) const {
  for (const auto& [k, v] : str) {
    if (k == key) return &v;
  }
  return nullptr;
}

Event& EventLog::append(double t, EventType type, int cpu) {
  Event e;
  e.t = t;
  e.type = type;
  e.cpu = cpu;
  push(std::move(e));
  return events_.back();
}

void EventLog::push(Event event) {
  // A new append finalizes every earlier event's payload (the fluent .set
  // chain only ever touches the newest), so the pending tail can be sealed
  // into the stream now.
  if (stream_) seal_into_stream();
  if (capacity_ > 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(event));
}

void EventLog::stream_to(JournalWriter* writer) {
  if (writer && capacity_ > 0) {
    throw std::logic_error(
        "EventLog::stream_to: a capped ring buffer cannot stream (events "
        "already written cannot be dropped)");
  }
  stream_ = writer;
  // Everything but the newest event is already final; hand it over so the
  // in-memory tail shrinks to at most one event immediately.
  while (stream_ && events_.size() > 1) {
    stream_->write(events_.front());
    events_.pop_front();
    ++streamed_;
  }
}

void EventLog::flush_stream() {
  if (!stream_) return;
  seal_into_stream();
  stream_->flush();
}

void EventLog::seal_into_stream() {
  while (!events_.empty()) {
    stream_->write(events_.front());
    events_.pop_front();
    ++streamed_;
  }
}

void EventLog::clear() {
  events_.clear();
  dropped_ = 0;
  streamed_ = 0;
}

// ---------------------------------------------------------------------------
// JSONL export / import
// ---------------------------------------------------------------------------

namespace {

// JSON has no Infinity/NaN literals; clamp to the representable range so
// the journal of an unconstrained run (budget = +inf) stays parseable.
void write_number(std::ostream& out, double v) {
  if (std::isnan(v)) v = 0.0;
  v = std::clamp(v, -std::numeric_limits<double>::max(),
                 std::numeric_limits<double>::max());
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.write(buf, res.ptr - buf);
}

void append_number(std::string& out, double v) {
  if (std::isnan(v)) v = 0.0;
  v = std::clamp(v, -std::numeric_limits<double>::max(),
                 std::numeric_limits<double>::max());
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

// String-buffer twin of write_json_string; the two must escape
// identically for the streamed and end-of-run journals to match.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          const auto u = static_cast<unsigned char>(c);
          out += "\\u00";
          out += hex[u >> 4];
          out += hex[u & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void append_event_jsonl(std::string& out, const Event& e) {
  out += "{\"t\":";
  append_number(out, e.t);
  out += ",\"type\":";
  append_json_string(out, event_type_name(e.type));
  if (e.cpu >= 0) {
    out += ",\"cpu\":";
    char buf[16];
    const auto res = std::to_chars(buf, buf + sizeof buf, e.cpu);
    out.append(buf, res.ptr);
  }
  for (const auto& [key, value] : e.num) {
    out += ',';
    append_json_string(out, key);
    out += ':';
    append_number(out, value);
  }
  for (const auto& [key, value] : e.str) {
    out += ',';
    append_json_string(out, key);
    out += ':';
    append_json_string(out, value);
  }
  out += "}\n";
}

void write_jsonl(std::ostream& out, const EventLog& log) {
  std::string buf;
  for (const Event& e : log.events()) {
    buf.clear();
    append_event_jsonl(buf, e);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
}

JsonlStreamWriter::JsonlStreamWriter(std::ostream& out,
                                     std::size_t flush_bytes)
    : out_(out), flush_bytes_(flush_bytes) {
  buffer_.reserve(flush_bytes_ + 256);
}

JsonlStreamWriter::~JsonlStreamWriter() {
  // Destructors cannot throw; durability-sensitive callers flush() first.
  try {
    flush();
  } catch (const JournalWriteError&) {
  }
}

void JsonlStreamWriter::write(const Event& e) {
  append_event_jsonl(buffer_, e);
  ++events_;
  if (buffer_.size() >= flush_bytes_) flush();
}

void JsonlStreamWriter::flush() {
  if (buffer_.empty()) return;
  if (!out_.write(buffer_.data(),
                  static_cast<std::streamsize>(buffer_.size()))) {
    throw JournalWriteError(
        "journal write failed after " + std::to_string(events_) +
        " events: output stream is in a failed state (disk full or closed "
        "sink?)");
  }
  buffer_.clear();
}

// ---------------------------------------------------------------------------
// Binary journal ("FJB1"): length-prefixed records, doubles as raw bits
// ---------------------------------------------------------------------------

namespace {

constexpr char kBinaryMagic[4] = {'F', 'J', 'B', '1'};
/// Sanity bound on one record: a journal event is a handful of short
/// key/value pairs; anything claiming more is corruption, not data.
constexpr std::uint32_t kMaxRecordBytes = 1u << 24;

// The put_* encoders materialize the little-endian bytes in a stack
// buffer and append once: a single length check per field instead of one
// per byte, which is most of the encoder's cost on the hot decision path.
void put_u16(std::string& out, std::uint16_t v) {
  const char buf[2] = {static_cast<char>(v & 0xff),
                       static_cast<char>((v >> 8) & 0xff)};
  out.append(buf, sizeof buf);
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(buf, sizeof buf);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(buf, sizeof buf);
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_key(std::string& out, const std::string& key) {
  if (key.size() > 0xffff) {
    throw JournalWriteError("binary journal: key longer than 65535 bytes");
  }
  put_u16(out, static_cast<std::uint16_t>(key.size()));
  out += key;
}

/// Bounds-checked cursor over one record's payload bytes.
class BinaryDecoder {
 public:
  BinaryDecoder(const char* data, std::size_t size, std::size_t record_no)
      : p_(data), n_(size), record_no_(record_no) {}

  Event decode() {
    Event e;
    const std::uint8_t type = take_u8();
    if (type >= kTypeNames.size()) {
      fail("unknown event type " + std::to_string(type));
    }
    e.type = static_cast<EventType>(type);
    e.t = take_f64();
    e.cpu = static_cast<std::int32_t>(take_u32());
    const std::uint16_t num_count = take_u16();
    const std::uint16_t str_count = take_u16();
    e.num.reserve(num_count);
    for (std::uint16_t i = 0; i < num_count; ++i) {
      std::string key = take_bytes(take_u16());
      const double value = take_f64();
      e.num.emplace_back(std::move(key), value);
    }
    e.str.reserve(str_count);
    for (std::uint16_t i = 0; i < str_count; ++i) {
      std::string key = take_bytes(take_u16());
      std::string value = take_bytes(take_u32());
      e.str.emplace_back(std::move(key), std::move(value));
    }
    if (pos_ != n_) fail("trailing bytes after payload");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("binary journal record " +
                             std::to_string(record_no_) + ": " + why);
  }

  const char* need(std::size_t count) {
    if (n_ - pos_ < count) fail("field runs past the record's end");
    const char* at = p_ + pos_;
    pos_ += count;
    return at;
  }

  std::uint8_t take_u8() {
    return static_cast<std::uint8_t>(*need(1));
  }
  std::uint16_t take_u16() {
    const char* b = need(2);
    return static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(b[0]) |
        (static_cast<std::uint16_t>(static_cast<std::uint8_t>(b[1])) << 8));
  }
  std::uint32_t take_u32() {
    const char* b = need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<std::uint8_t>(b[i]);
    }
    return v;
  }
  double take_f64() {
    const char* b = need(8);
    std::uint64_t bits = 0;
    for (int i = 7; i >= 0; --i) {
      bits = (bits << 8) | static_cast<std::uint8_t>(b[i]);
    }
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string take_bytes(std::size_t count) {
    const char* b = need(count);
    return std::string(b, count);
  }

  const char* p_;
  std::size_t n_;
  std::size_t record_no_;
  std::size_t pos_ = 0;
};

}  // namespace

void append_event_binary(std::string& out, const Event& e) {
  const std::size_t prefix_at = out.size();
  put_u32(out, 0);  // Length back-patched once the payload is built.
  const std::size_t payload_at = out.size();
  out += static_cast<char>(static_cast<std::uint8_t>(e.type));
  put_f64(out, e.t);
  put_u32(out, static_cast<std::uint32_t>(e.cpu));
  if (e.num.size() > 0xffff || e.str.size() > 0xffff) {
    throw JournalWriteError("binary journal: more than 65535 payload fields");
  }
  put_u16(out, static_cast<std::uint16_t>(e.num.size()));
  put_u16(out, static_cast<std::uint16_t>(e.str.size()));
  for (const auto& [key, value] : e.num) {
    put_key(out, key);
    put_f64(out, value);
  }
  for (const auto& [key, value] : e.str) {
    put_key(out, key);
    if (value.size() > 0xffffffffu) {
      throw JournalWriteError("binary journal: oversized string value");
    }
    put_u32(out, static_cast<std::uint32_t>(value.size()));
    out += value;
  }
  const std::uint32_t len =
      static_cast<std::uint32_t>(out.size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    out[prefix_at + static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

BinaryJournalWriter::BinaryJournalWriter(std::ostream& out,
                                         std::size_t flush_bytes)
    : out_(out), flush_bytes_(flush_bytes) {
  buffer_.reserve(flush_bytes_ + 256);
  buffer_.append(kBinaryMagic, sizeof kBinaryMagic);
}

BinaryJournalWriter::~BinaryJournalWriter() {
  try {
    flush();
  } catch (const JournalWriteError&) {
  }
}

void BinaryJournalWriter::write(const Event& e) {
  append_event_binary(buffer_, e);
  ++events_;
  if (buffer_.size() >= flush_bytes_) flush();
}

void BinaryJournalWriter::flush() {
  if (buffer_.empty()) return;
  if (!out_.write(buffer_.data(),
                  static_cast<std::streamsize>(buffer_.size()))) {
    throw JournalWriteError(
        "journal write failed after " + std::to_string(events_) +
        " events: output stream is in a failed state (disk full or closed "
        "sink?)");
  }
  buffer_.clear();
}

void write_binary(std::ostream& out, const EventLog& log) {
  BinaryJournalWriter writer(out);
  for (const Event& e : log.events()) writer.write(e);
  writer.flush();
}

std::size_t for_each_binary(std::istream& in,
                            const std::function<void(Event&&)>& fn,
                            JsonlReadReport* report) {
  if (report) *report = {};
  const auto torn = [&](const std::string& why) {
    if (!report) {
      throw std::runtime_error("binary journal: torn tail: " + why);
    }
    report->torn_tail = true;
    report->error = why;
  };

  char magic[sizeof kBinaryMagic];
  in.read(magic, sizeof magic);
  const auto magic_got = static_cast<std::size_t>(in.gcount());
  if (magic_got == 0) return 0;  // An empty stream is an empty journal.
  if (magic_got < sizeof magic ||
      std::memcmp(magic, kBinaryMagic, sizeof magic) != 0) {
    throw std::runtime_error(
        "binary journal: missing FJB1 magic (not a binary journal?)");
  }

  std::size_t delivered = 0;
  std::string payload;
  while (true) {
    char len_bytes[4];
    in.read(len_bytes, sizeof len_bytes);
    const auto len_got = static_cast<std::size_t>(in.gcount());
    if (len_got == 0) break;  // Clean end of journal.
    if (len_got < sizeof len_bytes) {
      torn("record " + std::to_string(delivered + 1) +
           ": partial length prefix (" + std::to_string(len_got) +
           " of 4 bytes)");
      break;
    }
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | static_cast<std::uint8_t>(len_bytes[i]);
    }
    if (len == 0 || len > kMaxRecordBytes) {
      throw std::runtime_error("binary journal record " +
                               std::to_string(delivered + 1) +
                               ": implausible length " + std::to_string(len));
    }
    payload.resize(len);
    in.read(payload.data(), static_cast<std::streamsize>(len));
    const auto payload_got = static_cast<std::size_t>(in.gcount());
    if (payload_got < len) {
      torn("record " + std::to_string(delivered + 1) + ": payload cut at " +
           std::to_string(payload_got) + " of " + std::to_string(len) +
           " bytes");
      break;
    }
    fn(BinaryDecoder(payload.data(), len, delivered + 1).decode());
    ++delivered;
  }
  return delivered;
}

EventLog read_binary(std::istream& in) {
  EventLog log;
  for_each_binary(in, [&log](Event&& e) { log.push(std::move(e)); });
  return log;
}

EventLog read_binary(std::istream& in, JsonlReadReport* report) {
  EventLog log;
  JsonlReadReport local;
  for_each_binary(in, [&log](Event&& e) { log.push(std::move(e)); },
                  report ? report : &local);
  return log;
}

JournalFormat detect_journal_format(std::istream& in) {
  char magic[sizeof kBinaryMagic] = {};
  in.read(magic, sizeof magic);
  const auto got = in.gcount();
  in.clear();  // A short read sets eof/fail; rewind needs a clean stream.
  in.seekg(-got, std::ios_base::cur);
  return (got == sizeof magic &&
          std::memcmp(magic, kBinaryMagic, sizeof magic) == 0)
             ? JournalFormat::kBinary
             : JournalFormat::kJsonl;
}

namespace {

/// Minimal parser for the flat one-object-per-line JSON that write_jsonl
/// emits: string and number values only (bool/null tolerated as numbers).
class LineParser {
 public:
  LineParser(const std::string& line, std::size_t line_no)
      : s_(line), line_no_(line_no) {}

  Event parse() {
    Event e;
    bool have_type = false;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      fail("event object is empty");
    }
    while (true) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const char c = peek();
      if (c == '"') {
        std::string value = parse_string();
        if (key == "type") {
          const auto type = event_type_from_name(value);
          if (!type) fail("unknown event type '" + value + "'");
          e.type = *type;
          have_type = true;
        } else {
          e.str.emplace_back(key, std::move(value));
        }
      } else {
        const double value = parse_number();
        if (key == "t") {
          e.t = value;
        } else if (key == "cpu") {
          e.cpu = static_cast<int>(value);
        } else {
          e.num.emplace_back(key, value);
        }
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      break;
    }
    expect('}');
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after object");
    if (!have_type) fail("event has no \"type\" field");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("journal line " + std::to_string(line_no_) +
                             ": " + why);
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) {
      fail(std::string("expected '") + c + "' at column " +
           std::to_string(pos_ + 1));
    }
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only \u-escapes control characters; anything wider
          // degrades to '?' rather than growing a UTF-8 encoder here.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    // Tolerate the JSON literals a hand-edited journal might contain.
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return 1.0;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return 0.0;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return 0.0;
    }
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a number at column " + std::to_string(pos_ + 1));
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  const std::string& s_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

namespace {

bool is_blank(const std::string& line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

std::size_t for_each_jsonl(std::istream& in,
                           const std::function<void(Event&&)>& fn,
                           JsonlReadReport* report) {
  std::size_t delivered = 0;
  std::string line;
  std::size_t line_no = 0;
  if (!report) {
    // Strict contract: any malformed line throws immediately.
    while (std::getline(in, line)) {
      ++line_no;
      if (is_blank(line)) continue;
      fn(LineParser(line, line_no).parse());
      ++delivered;
    }
    return delivered;
  }
  *report = {};
  // Hold each parsed line until we know another non-blank line follows: a
  // failure with more data behind it is mid-file corruption (still thrown),
  // a failure on the last line is a torn tail (reported, not thrown).
  std::optional<Event> held;
  std::string held_error;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_blank(line)) continue;
    if (held) {
      fn(*std::move(held));
      ++delivered;
      held.reset();
    } else if (!held_error.empty()) {
      throw std::runtime_error(held_error);  // corruption before the tail
    }
    try {
      held = LineParser(line, line_no).parse();
    } catch (const std::runtime_error& err) {
      held_error = err.what();
    }
  }
  if (held) {
    fn(*std::move(held));
    ++delivered;
  } else if (!held_error.empty()) {
    report->torn_tail = true;
    report->error = held_error;
  }
  return delivered;
}

EventLog read_jsonl(std::istream& in) {
  EventLog log;
  for_each_jsonl(in, [&log](Event&& e) { log.push(std::move(e)); });
  return log;
}

EventLog read_jsonl(std::istream& in, JsonlReadReport* report) {
  EventLog log;
  JsonlReadReport local;
  for_each_jsonl(in, [&log](Event&& e) { log.push(std::move(e)); },
                 report ? report : &local);
  return log;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

namespace {

constexpr double kMicro = 1e6;  ///< Simulated seconds -> trace microseconds.

/// Emits one trace-event object; `extra` is the raw tail after the common
/// fields (caller supplies leading comma-separated members).
class ChromeWriter {
 public:
  explicit ChromeWriter(std::ostream& out) : out_(out) {
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    meta("process_name", "{\"name\":\"fvsst\"}", /*tid=*/-1);
    meta("thread_name", "{\"name\":\"control loop\"}", /*tid=*/1);
  }

  void finish() { out_ << "\n]}\n"; }

  void slice(std::string_view name, double ts_us, double dur_us,
             const std::string& args_json) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    write_number(out_, ts_us);
    out_ << ",\"dur\":";
    write_number(out_, std::max(dur_us, 0.001));  // visible at any zoom
    if (!args_json.empty()) out_ << ",\"args\":" << args_json;
    out_ << '}';
  }

  void counter(std::string_view name, double ts_us,
               const std::string& args_json) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"C\",\"pid\":1,\"ts\":";
    write_number(out_, ts_us);
    out_ << ",\"args\":" << args_json << '}';
  }

  void instant(std::string_view name, double ts_us,
               const std::string& args_json) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":1,\"ts\":";
    write_number(out_, ts_us);
    if (!args_json.empty()) out_ << ",\"args\":" << args_json;
    out_ << '}';
  }

  /// Builds an args object from (key, value) pairs.
  static std::string args(
      std::initializer_list<std::pair<std::string_view, double>> fields) {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : fields) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += k;
      out += "\":";
      char buf[32];
      double clamped = std::isnan(v) ? 0.0 : v;
      clamped = std::clamp(clamped, -std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::max());
      const auto res = std::to_chars(buf, buf + sizeof buf, clamped);
      out.append(buf, res.ptr);
    }
    out += '}';
    return out;
  }

 private:
  void begin() {
    out_ << (first_ ? "\n " : ",\n ");
    first_ = false;
  }

  void meta(std::string_view name, const std::string& args_json, int tid) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"M\",\"pid\":1";
    if (tid >= 0) out_ << ",\"tid\":" << tid;
    out_ << ",\"args\":" << args_json << '}';
  }

  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const EventLog& log) {
  ChromeWriter w(out);
  for (const Event& e : log.events()) {
    const double ts = e.t * kMicro;
    switch (e.type) {
      case EventType::kRunMeta:
      case EventType::kTablePoint:
      case EventType::kCycleStart:
      case EventType::kDowngrade:
        break;  // folded into the actuation slice / decision counters
      case EventType::kDecision: {
        const std::string name = "cpu" + std::to_string(e.cpu) + " freq_mhz";
        w.counter(name, ts,
                  ChromeWriter::args(
                      {{"granted", e.num_or("granted_hz") / 1e6},
                       {"desired", e.num_or("desired_hz") / 1e6}}));
        break;
      }
      case EventType::kBudgetChange:
        w.instant("budget_change", ts,
                  ChromeWriter::args({{"budget_w", e.num_or("budget_w")}}));
        break;
      case EventType::kIdleEnter:
        w.instant("cpu" + std::to_string(e.cpu) + " idle_enter", ts, {});
        break;
      case EventType::kIdleExit:
        w.instant("cpu" + std::to_string(e.cpu) + " idle_exit", ts, {});
        break;
      case EventType::kInfeasibleBudget:
        w.instant("infeasible_budget", ts,
                  ChromeWriter::args(
                      {{"budget_w", e.num_or("budget_w")},
                       {"total_power_w", e.num_or("total_power_w")}}));
        break;
      case EventType::kFault: {
        std::string name = "fault";
        if (const std::string* kind = e.find_str("kind")) {
          name += ' ';
          name += *kind;
        }
        if (const std::string* state = e.find_str("state")) {
          name += ' ';
          name += *state;
        }
        w.instant(name, ts, {});
        break;
      }
      case EventType::kDegradedMode: {
        std::string name = "degraded";
        if (const std::string* reason = e.find_str("reason")) {
          name += ' ';
          name += *reason;
        }
        if (const std::string* state = e.find_str("state")) {
          name += ' ';
          name += *state;
        }
        w.instant(name, ts, {});
        break;
      }
      case EventType::kMessageLost:
        w.instant("message_lost", ts,
                  ChromeWriter::args({{"node", e.num_or("node", -1.0)}}));
        break;
      case EventType::kEpochChange: {
        std::string name = "epoch_change";
        if (const std::string* reason = e.find_str("reason")) {
          name += ' ';
          name += *reason;
        }
        w.instant(name, ts,
                  ChromeWriter::args(
                      {{"epoch", e.num_or("epoch")},
                       {"coordinator", e.num_or("coordinator", -1.0)}}));
        break;
      }
      case EventType::kSettingsRejected:
        w.instant("settings_rejected", ts,
                  ChromeWriter::args({{"node", e.num_or("node", -1.0)},
                                      {"msg_epoch", e.num_or("msg_epoch")},
                                      {"epoch", e.num_or("epoch")}}));
        break;
      case EventType::kSnapshot: {
        std::string name = "snapshot";
        if (const std::string* op = e.find_str("op")) {
          name += ' ';
          name += *op;
        }
        w.instant(name, ts,
                  ChromeWriter::args({{"epoch", e.num_or("epoch")},
                                      {"round", e.num_or("round")}}));
        break;
      }
      case EventType::kAlertRaised:
      case EventType::kAlertCleared: {
        std::string name = e.type == EventType::kAlertRaised
                               ? "alert_raised"
                               : "alert_cleared";
        if (const std::string* rule = e.find_str("rule")) {
          name += ' ';
          name += *rule;
        }
        w.instant(name, ts,
                  ChromeWriter::args({{"value", e.num_or("value")}}));
        break;
      }
      case EventType::kActuation: {
        if (const std::string* stage = e.find_str("stage")) {
          if (*stage == "node_apply") {
            w.instant("node" +
                          std::to_string(static_cast<int>(e.num_or("node"))) +
                          " apply",
                      ts, {});
            w.counter("cluster power (W)", ts,
                      ChromeWriter::args(
                          {{"power", e.num_or("cluster_power_w")}}));
          }
          break;
        }
        // The engine's end-of-cycle record: measured stage wall costs as
        // nested slices at the cycle instant, power/budget as a counter.
        const double est = e.num_or("estimate_s") * kMicro;
        const double pol = e.num_or("policy_s") * kMicro;
        const double act = e.num_or("actuate_s") * kMicro;
        w.slice("cycle", ts, est + pol + act,
                ChromeWriter::args(
                    {{"total_power_w", e.num_or("total_power_w")},
                     {"budget_w", e.num_or("budget_w")},
                     {"feasible", e.num_or("feasible", 1.0)},
                     {"downgrade_steps", e.num_or("downgrade_steps")}}));
        w.slice("estimate", ts, est, {});
        w.slice("policy", ts + est, pol, {});
        w.slice("actuate", ts + est + pol, act, {});
        w.counter("cpu power (W)", ts,
                  ChromeWriter::args(
                      {{"power", e.num_or("total_power_w")},
                       {"budget", e.num_or("budget_w")}}));
        break;
      }
    }
  }
  w.finish();
}

// ---------------------------------------------------------------------------
// Invariant checks
// ---------------------------------------------------------------------------

namespace {

std::string at_time(double t) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, t);
  return " at t=" + std::string(buf, res.ptr) + "s";
}

constexpr double kPowerTolW = 1e-6;
constexpr double kVoltTol = 1e-9;

}  // namespace

void JournalChecker::observe(const Event& e) {
  if (e.t > last_event_t_) last_event_t_ = e.t;
  switch (e.type) {
    case EventType::kRunMeta:
      // First run_meta wins, matching the historical whole-journal scan.
      if (!have_meta_) {
        have_meta_ = true;
        meta_t_sample_ = e.num_or("t_sample_s");
        meta_multiplier_ = e.num_or("multiplier");
        meta_t_restarts_ = e.num_or("t_restarts");
        meta_failover_window_ = e.num_or("failover_window_s");
        meta_convergence_window_ = e.num_or("convergence_window_s");
        meta_nodes_ = e.num_or("nodes");
      }
      return;

    case EventType::kMessageLost:
    case EventType::kMessageCorrupt:
    case EventType::kMessageExpired:
      // 6. Every drop (including a retransmission's) is a disturbance: the
      //    convergence clock restarts at the *last* one, after which every
      //    message goes through and repair is bounded.
      any_disturbance_ = true;
      if (e.t > last_disturb_t_) last_disturb_t_ = e.t;
      return;

    case EventType::kTablePoint:
      tables_[e.cpu][e.num_or("hz")] = e.num_or("volts");
      return;

    case EventType::kDecision: {
      // 2. Voltage is the table minimum for every granted frequency.
      const auto table_it = tables_.find(e.cpu);
      if (table_it == tables_.end()) return;
      ++checks_run_;
      const double hz = e.num_or("granted_hz");
      const auto point_it = table_it->second.find(hz);
      if (point_it == table_it->second.end()) {
        voltage_violations_.push_back(
            "cpu" + std::to_string(e.cpu) + " granted " +
            std::to_string(hz / 1e6) + " MHz" + at_time(e.t) +
            ", not an operating point of its table");
        return;
      }
      const double table_volts = point_it->second;
      if (std::abs(e.num_or("volts") - table_volts) > kVoltTol) {
        voltage_violations_.push_back(
            "cpu" + std::to_string(e.cpu) + at_time(e.t) + ": voltage " +
            std::to_string(e.num_or("volts")) + " V is not the table minimum " +
            std::to_string(table_volts) + " V for its granted frequency");
      }
      return;
    }

    case EventType::kCycleStart: {
      // 3. Record each budget-cycle -> next-timer-cycle gap; judged at
      //    finish() once we know whether the journal declares a
      //    tick-counted period (there is one gap per budget trigger, so
      //    this list stays tiny).
      const std::string* trigger = e.find_str("trigger");
      if (!trigger) return;
      if (*trigger == "budget") {
        pending_budget_cycle_t_ = e.t;
      } else if (*trigger == "timer" && pending_budget_cycle_t_ >= 0.0) {
        restart_gaps_.emplace_back(pending_budget_cycle_t_, e.t);
        pending_budget_cycle_t_ = -1.0;
      }
      return;
    }

    case EventType::kEpochChange: {
      // 4. Announced epochs never regress.
      any_epoch_data_ = true;
      saw_announcement_ = true;
      ++checks_run_;
      const double epoch = e.num_or("epoch");
      if (epoch < last_announced_) {
        epoch_violations_.push_back(
            "epoch regressed" + at_time(e.t) + ": coordinator " +
            std::to_string(static_cast<int>(e.num_or("coordinator", -1.0))) +
            " announced epoch " + std::to_string(epoch) + " after epoch " +
            std::to_string(last_announced_));
      }
      last_announced_ = std::max(last_announced_, epoch);
      max_announced_ = std::max(max_announced_, epoch);
      return;
    }

    case EventType::kBudgetChange: {
      // 5. A newer limit supersedes (and closes) any open window; a drop
      //    opens the next one.
      const double budget = e.num_or("budget_w");
      if (window_open_) {
        window_open_ = false;
        ++checks_run_;
      }
      const bool drop = prev_budget_ >= 0.0 && budget < prev_budget_;
      prev_budget_ = budget;
      if (drop && have_meta_ && meta_failover_window_ > 0.0) {
        window_open_ = true;
        window_t_ = e.t;
        window_deadline_ = e.t + meta_failover_window_;
        window_budget_ = budget;
      }
      return;
    }

    case EventType::kActuation: {
      const std::string* stage = e.find_str("stage");
      if (!stage) {
        // 1. Budget compliance: whenever the scheduler claims
        //    feasibility, the total it granted must fit under the budget
        //    it was given.
        ++checks_run_;
        const double total = e.num_or("total_power_w");
        const double budget =
            e.num_or("budget_w", std::numeric_limits<double>::max());
        if (e.num_or("feasible", 1.0) != 0.0 && total > budget + kPowerTolW) {
          budget_violations_.push_back(
              "feasible actuation exceeds budget" + at_time(e.t) + ": " +
              std::to_string(total) + " W > " + std::to_string(budget) +
              " W");
        }
        return;
      }
      if (*stage != "node_apply") return;
      // 4. Per-node applied epochs never regress and never come from an
      //    unannounced epoch.
      if (e.has_num("epoch")) {
        any_epoch_data_ = true;
        ++checks_run_;
        const double epoch = e.num_or("epoch");
        const int node = static_cast<int>(e.num_or("node", -1.0));
        auto [it, inserted] = node_epoch_.try_emplace(node, epoch);
        if (!inserted) {
          if (epoch < it->second) {
            epoch_violations_.push_back(
                "node" + std::to_string(node) + at_time(e.t) +
                " applied settings from deposed epoch " +
                std::to_string(epoch) + " after epoch " +
                std::to_string(it->second));
          }
          it->second = std::max(it->second, epoch);
        }
        if (saw_announcement_ && epoch > max_announced_) {
          epoch_violations_.push_back(
              "node" + std::to_string(node) + at_time(e.t) +
              " applied settings from unannounced epoch " +
              std::to_string(epoch) + " (highest announced: " +
              std::to_string(max_announced_) + ")");
        }
      }
      // 6. Monotone applied sequence per (node, epoch): the reliable
      //    transport's effectively-once guarantee — a duplicate or stale
      //    reordered settings message must never be applied.
      if (e.has_num("seq") && e.has_num("epoch")) {
        ++checks_run_;
        const int node = static_cast<int>(e.num_or("node", -1.0));
        const double epoch = e.num_or("epoch");
        const double seq = e.num_or("seq");
        auto [it, inserted] =
            node_seq_.try_emplace(node, std::make_pair(epoch, seq));
        if (!inserted) {
          if (epoch == it->second.first && seq <= it->second.second) {
            transport_violations_.push_back(
                "node" + std::to_string(node) + at_time(e.t) +
                " applied seq " + std::to_string(seq) +
                " at or below the already-applied seq " +
                std::to_string(it->second.second) + " in epoch " +
                std::to_string(epoch) + " (duplicate or stale apply)");
          }
          if (epoch > it->second.first ||
              (epoch == it->second.first && seq > it->second.second)) {
            it->second = {epoch, seq};
          }
        }
      }
      // 6. Convergence bookkeeping: remember each node's earliest apply
      //    after the latest disturbance seen so far.
      {
        const int node = static_cast<int>(e.num_or("node", -1.0));
        auto [it, inserted] = node_apply_after_.try_emplace(node, e.t);
        if (!inserted && it->second < last_disturb_t_) it->second = e.t;
      }
      // 5. The open window closes on the first node_apply past the
      //    deadline (violation) or the first one back under the limit.
      if (window_open_) {
        if (e.t > window_deadline_) {
          ++checks_run_;
          failover_violations_.push_back(
              "cluster still over the " + std::to_string(window_budget_) +
              " W budget " + std::to_string(meta_failover_window_) +
              "s after the drop" + at_time(window_t_) +
              " (failover window missed)");
          window_open_ = false;
        } else if (e.num_or("cluster_power_w",
                            std::numeric_limits<double>::max()) <=
                   window_budget_ + kPowerTolW) {
          ++checks_run_;
          window_open_ = false;
        }
      }
      return;
    }

    default:
      return;
  }
}

JournalCheckReport JournalChecker::finish() {
  JournalCheckReport report;
  report.checks_run = checks_run_;

  // 3. T restarts after a budget trigger (only meaningful for daemons
  //    with tick-counted periods, declared via run_meta t_restarts = 1).
  std::vector<std::string> restart_violations;
  const bool declares_period = have_meta_ && meta_t_restarts_ != 0.0 &&
                               meta_t_sample_ > 0.0 && meta_multiplier_ > 0.0;
  if (declares_period) {
    // After a budget cycle the tick count restarts, so the next timer
    // cycle comes at least (n - 1) ticks later.
    const double min_gap = (meta_multiplier_ - 1.0) * meta_t_sample_ - 1e-9;
    for (const auto& [budget_t, timer_t] : restart_gaps_) {
      ++report.checks_run;
      if (timer_t - budget_t < min_gap) {
        restart_violations.push_back(
            "timer cycle" + at_time(timer_t) + " fired only " +
            std::to_string(timer_t - budget_t) +
            "s after the budget trigger" + at_time(budget_t) +
            "; T did not restart");
      }
    }
  }

  // Skips and violations keep check_journal's historical 1..5 ordering.
  if (tables_.empty()) {
    report.skipped.push_back(
        "voltage-table check: no table_point events in journal");
  }
  if (!declares_period) {
    report.skipped.push_back(
        "T-restart check: journal does not declare a tick-counted period");
  }
  if (!any_epoch_data_) {
    report.skipped.push_back("epoch-fence check: no epoch data in journal");
  }
  if (!have_meta_ || meta_failover_window_ <= 0.0) {
    report.skipped.push_back(
        "failover-window check: journal does not declare failover_window_s");
  } else if (window_open_) {
    report.skipped.push_back(
        "failover-window check: journal ends inside the window of the "
        "budget drop" + at_time(window_t_));
    window_open_ = false;
  }

  // 6. Bounded convergence, judged at finish() once the last disturbance
  //    is known.  Monotone-seq violations were collected inline.
  if (!have_meta_ || meta_convergence_window_ <= 0.0) {
    report.skipped.push_back(
        "transport-convergence check: journal does not declare "
        "convergence_window_s");
  } else if (!any_disturbance_) {
    report.skipped.push_back(
        "transport-convergence check: no channel disturbances in journal");
  } else {
    const double deadline = last_disturb_t_ + meta_convergence_window_;
    if (last_event_t_ < deadline) {
      report.skipped.push_back(
          "transport-convergence check: journal ends inside the "
          "convergence window of the disturbance" + at_time(last_disturb_t_));
    } else {
      for (int n = 0; n < static_cast<int>(meta_nodes_); ++n) {
        ++report.checks_run;
        const auto it = node_apply_after_.find(n);
        const double applied =
            it == node_apply_after_.end() ? -1.0 : it->second;
        if (applied < last_disturb_t_ || applied > deadline) {
          transport_violations_.push_back(
              "node" + std::to_string(n) +
              " did not re-apply settings within " +
              std::to_string(meta_convergence_window_) +
              "s of the last channel disturbance" + at_time(last_disturb_t_) +
              " (bounded convergence missed)");
        }
      }
    }
  }

  const auto take = [&report](std::vector<std::string>& from) {
    for (std::string& v : from) report.violations.push_back(std::move(v));
    from.clear();
  };
  take(budget_violations_);
  take(voltage_violations_);
  take(restart_violations);
  take(epoch_violations_);
  take(failover_violations_);
  take(transport_violations_);
  return report;
}

JournalCheckReport check_journal(const EventLog& log) {
  JournalChecker checker;
  for (const Event& e : log.events()) checker.observe(e);
  return checker.finish();
}

// ---------------------------------------------------------------------------
// Journal diff
// ---------------------------------------------------------------------------

JournalDiff diff_journals(const EventLog& a, const EventLog& b) {
  JournalDiff diff;
  for (const auto& tn : kTypeNames) {
    JournalDiff::TypeCount tc;
    tc.type = std::string(tn.name);
    for (const Event& e : a.events()) {
      if (e.type == tn.type) ++tc.a;
    }
    for (const Event& e : b.events()) {
      if (e.type == tn.type) ++tc.b;
    }
    if (tc.a > 0 || tc.b > 0) diff.type_counts.push_back(std::move(tc));
  }

  std::vector<const Event*> da, db;
  for (const Event& e : a.events()) {
    if (e.type == EventType::kDecision) da.push_back(&e);
  }
  for (const Event& e : b.events()) {
    if (e.type == EventType::kDecision) db.push_back(&e);
  }
  const std::size_t n = std::min(da.size(), db.size());
  diff.decisions_compared = n;
  diff.decisions_unmatched = std::max(da.size(), db.size()) - n;
  for (std::size_t i = 0; i < n; ++i) {
    if (da[i]->cpu != db[i]->cpu ||
        da[i]->num_or("granted_hz") != db[i]->num_or("granted_hz")) {
      ++diff.decisions_differing;
      if (diff.first_divergence_t < 0.0) {
        diff.first_divergence_t = da[i]->t;
        diff.first_divergence_cpu = da[i]->cpu;
      }
    }
  }
  return diff;
}

}  // namespace fvsst::sim
