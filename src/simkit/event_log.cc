#include "simkit/event_log.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>

#include "simkit/telemetry.h"

namespace fvsst::sim {

namespace {

struct TypeName {
  EventType type;
  std::string_view name;
};

constexpr std::array<TypeName, 16> kTypeNames{{
    {EventType::kRunMeta, "run_meta"},
    {EventType::kTablePoint, "table_point"},
    {EventType::kCycleStart, "cycle_start"},
    {EventType::kDecision, "decision"},
    {EventType::kDowngrade, "downgrade"},
    {EventType::kBudgetChange, "budget_change"},
    {EventType::kIdleEnter, "idle_enter"},
    {EventType::kIdleExit, "idle_exit"},
    {EventType::kInfeasibleBudget, "infeasible_budget"},
    {EventType::kActuation, "actuation"},
    {EventType::kFault, "fault"},
    {EventType::kDegradedMode, "degraded_mode"},
    {EventType::kMessageLost, "message_lost"},
    {EventType::kEpochChange, "epoch_change"},
    {EventType::kSettingsRejected, "settings_rejected"},
    {EventType::kSnapshot, "snapshot"},
}};

}  // namespace

std::string_view event_type_name(EventType type) {
  for (const auto& tn : kTypeNames) {
    if (tn.type == type) return tn.name;
  }
  return "?";
}

std::optional<EventType> event_type_from_name(std::string_view name) {
  for (const auto& tn : kTypeNames) {
    if (tn.name == name) return tn.type;
  }
  return std::nullopt;
}

bool Event::has_num(std::string_view key) const {
  for (const auto& [k, v] : num) {
    if (k == key) return true;
  }
  return false;
}

double Event::num_or(std::string_view key, double fallback) const {
  for (const auto& [k, v] : num) {
    if (k == key) return v;
  }
  return fallback;
}

const std::string* Event::find_str(std::string_view key) const {
  for (const auto& [k, v] : str) {
    if (k == key) return &v;
  }
  return nullptr;
}

Event& EventLog::append(double t, EventType type, int cpu) {
  Event e;
  e.t = t;
  e.type = type;
  e.cpu = cpu;
  push(std::move(e));
  return events_.back();
}

void EventLog::push(Event event) {
  if (capacity_ > 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(event));
}

void EventLog::clear() {
  events_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// JSONL export / import
// ---------------------------------------------------------------------------

namespace {

// JSON has no Infinity/NaN literals; clamp to the representable range so
// the journal of an unconstrained run (budget = +inf) stays parseable.
void write_number(std::ostream& out, double v) {
  if (std::isnan(v)) v = 0.0;
  v = std::clamp(v, -std::numeric_limits<double>::max(),
                 std::numeric_limits<double>::max());
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.write(buf, res.ptr - buf);
}

}  // namespace

void write_jsonl(std::ostream& out, const EventLog& log) {
  for (const Event& e : log.events()) {
    out << "{\"t\":";
    write_number(out, e.t);
    out << ",\"type\":";
    write_json_string(out, event_type_name(e.type));
    if (e.cpu >= 0) out << ",\"cpu\":" << e.cpu;
    for (const auto& [key, value] : e.num) {
      out << ',';
      write_json_string(out, key);
      out << ':';
      write_number(out, value);
    }
    for (const auto& [key, value] : e.str) {
      out << ',';
      write_json_string(out, key);
      out << ':';
      write_json_string(out, value);
    }
    out << "}\n";
  }
}

namespace {

/// Minimal parser for the flat one-object-per-line JSON that write_jsonl
/// emits: string and number values only (bool/null tolerated as numbers).
class LineParser {
 public:
  LineParser(const std::string& line, std::size_t line_no)
      : s_(line), line_no_(line_no) {}

  Event parse() {
    Event e;
    bool have_type = false;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      fail("event object is empty");
    }
    while (true) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const char c = peek();
      if (c == '"') {
        std::string value = parse_string();
        if (key == "type") {
          const auto type = event_type_from_name(value);
          if (!type) fail("unknown event type '" + value + "'");
          e.type = *type;
          have_type = true;
        } else {
          e.str.emplace_back(key, std::move(value));
        }
      } else {
        const double value = parse_number();
        if (key == "t") {
          e.t = value;
        } else if (key == "cpu") {
          e.cpu = static_cast<int>(value);
        } else {
          e.num.emplace_back(key, value);
        }
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      break;
    }
    expect('}');
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after object");
    if (!have_type) fail("event has no \"type\" field");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("journal line " + std::to_string(line_no_) +
                             ": " + why);
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) {
      fail(std::string("expected '") + c + "' at column " +
           std::to_string(pos_ + 1));
    }
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only \u-escapes control characters; anything wider
          // degrades to '?' rather than growing a UTF-8 encoder here.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    // Tolerate the JSON literals a hand-edited journal might contain.
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return 1.0;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return 0.0;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return 0.0;
    }
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a number at column " + std::to_string(pos_ + 1));
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  const std::string& s_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

namespace {

bool is_blank(const std::string& line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

EventLog read_jsonl(std::istream& in) {
  EventLog log;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_blank(line)) continue;
    log.push(LineParser(line, line_no).parse());
  }
  return log;
}

EventLog read_jsonl(std::istream& in, JsonlReadReport* report) {
  if (report) *report = {};
  EventLog log;
  std::string line;
  std::size_t line_no = 0;
  // Hold each parsed line until we know another non-blank line follows: a
  // failure with more data behind it is mid-file corruption (still thrown),
  // a failure on the last line is a torn tail (reported, not thrown).
  std::optional<Event> held;
  std::string held_error;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_blank(line)) continue;
    if (held) {
      log.push(*std::move(held));
      held.reset();
    } else if (!held_error.empty()) {
      throw std::runtime_error(held_error);  // corruption before the tail
    }
    try {
      held = LineParser(line, line_no).parse();
    } catch (const std::runtime_error& err) {
      held_error = err.what();
    }
  }
  if (held) {
    log.push(*std::move(held));
  } else if (!held_error.empty()) {
    if (report) {
      report->torn_tail = true;
      report->error = held_error;
    }
  }
  return log;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

namespace {

constexpr double kMicro = 1e6;  ///< Simulated seconds -> trace microseconds.

/// Emits one trace-event object; `extra` is the raw tail after the common
/// fields (caller supplies leading comma-separated members).
class ChromeWriter {
 public:
  explicit ChromeWriter(std::ostream& out) : out_(out) {
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    meta("process_name", "{\"name\":\"fvsst\"}", /*tid=*/-1);
    meta("thread_name", "{\"name\":\"control loop\"}", /*tid=*/1);
  }

  void finish() { out_ << "\n]}\n"; }

  void slice(std::string_view name, double ts_us, double dur_us,
             const std::string& args_json) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    write_number(out_, ts_us);
    out_ << ",\"dur\":";
    write_number(out_, std::max(dur_us, 0.001));  // visible at any zoom
    if (!args_json.empty()) out_ << ",\"args\":" << args_json;
    out_ << '}';
  }

  void counter(std::string_view name, double ts_us,
               const std::string& args_json) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"C\",\"pid\":1,\"ts\":";
    write_number(out_, ts_us);
    out_ << ",\"args\":" << args_json << '}';
  }

  void instant(std::string_view name, double ts_us,
               const std::string& args_json) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":1,\"ts\":";
    write_number(out_, ts_us);
    if (!args_json.empty()) out_ << ",\"args\":" << args_json;
    out_ << '}';
  }

  /// Builds an args object from (key, value) pairs.
  static std::string args(
      std::initializer_list<std::pair<std::string_view, double>> fields) {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : fields) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += k;
      out += "\":";
      char buf[32];
      double clamped = std::isnan(v) ? 0.0 : v;
      clamped = std::clamp(clamped, -std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::max());
      const auto res = std::to_chars(buf, buf + sizeof buf, clamped);
      out.append(buf, res.ptr);
    }
    out += '}';
    return out;
  }

 private:
  void begin() {
    out_ << (first_ ? "\n " : ",\n ");
    first_ = false;
  }

  void meta(std::string_view name, const std::string& args_json, int tid) {
    begin();
    out_ << "{\"name\":";
    write_json_string(out_, name);
    out_ << ",\"ph\":\"M\",\"pid\":1";
    if (tid >= 0) out_ << ",\"tid\":" << tid;
    out_ << ",\"args\":" << args_json << '}';
  }

  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const EventLog& log) {
  ChromeWriter w(out);
  for (const Event& e : log.events()) {
    const double ts = e.t * kMicro;
    switch (e.type) {
      case EventType::kRunMeta:
      case EventType::kTablePoint:
      case EventType::kCycleStart:
      case EventType::kDowngrade:
        break;  // folded into the actuation slice / decision counters
      case EventType::kDecision: {
        const std::string name = "cpu" + std::to_string(e.cpu) + " freq_mhz";
        w.counter(name, ts,
                  ChromeWriter::args(
                      {{"granted", e.num_or("granted_hz") / 1e6},
                       {"desired", e.num_or("desired_hz") / 1e6}}));
        break;
      }
      case EventType::kBudgetChange:
        w.instant("budget_change", ts,
                  ChromeWriter::args({{"budget_w", e.num_or("budget_w")}}));
        break;
      case EventType::kIdleEnter:
        w.instant("cpu" + std::to_string(e.cpu) + " idle_enter", ts, {});
        break;
      case EventType::kIdleExit:
        w.instant("cpu" + std::to_string(e.cpu) + " idle_exit", ts, {});
        break;
      case EventType::kInfeasibleBudget:
        w.instant("infeasible_budget", ts,
                  ChromeWriter::args(
                      {{"budget_w", e.num_or("budget_w")},
                       {"total_power_w", e.num_or("total_power_w")}}));
        break;
      case EventType::kFault: {
        std::string name = "fault";
        if (const std::string* kind = e.find_str("kind")) {
          name += ' ';
          name += *kind;
        }
        if (const std::string* state = e.find_str("state")) {
          name += ' ';
          name += *state;
        }
        w.instant(name, ts, {});
        break;
      }
      case EventType::kDegradedMode: {
        std::string name = "degraded";
        if (const std::string* reason = e.find_str("reason")) {
          name += ' ';
          name += *reason;
        }
        if (const std::string* state = e.find_str("state")) {
          name += ' ';
          name += *state;
        }
        w.instant(name, ts, {});
        break;
      }
      case EventType::kMessageLost:
        w.instant("message_lost", ts,
                  ChromeWriter::args({{"node", e.num_or("node", -1.0)}}));
        break;
      case EventType::kEpochChange: {
        std::string name = "epoch_change";
        if (const std::string* reason = e.find_str("reason")) {
          name += ' ';
          name += *reason;
        }
        w.instant(name, ts,
                  ChromeWriter::args(
                      {{"epoch", e.num_or("epoch")},
                       {"coordinator", e.num_or("coordinator", -1.0)}}));
        break;
      }
      case EventType::kSettingsRejected:
        w.instant("settings_rejected", ts,
                  ChromeWriter::args({{"node", e.num_or("node", -1.0)},
                                      {"msg_epoch", e.num_or("msg_epoch")},
                                      {"epoch", e.num_or("epoch")}}));
        break;
      case EventType::kSnapshot: {
        std::string name = "snapshot";
        if (const std::string* op = e.find_str("op")) {
          name += ' ';
          name += *op;
        }
        w.instant(name, ts,
                  ChromeWriter::args({{"epoch", e.num_or("epoch")},
                                      {"round", e.num_or("round")}}));
        break;
      }
      case EventType::kActuation: {
        if (const std::string* stage = e.find_str("stage")) {
          if (*stage == "node_apply") {
            w.instant("node" +
                          std::to_string(static_cast<int>(e.num_or("node"))) +
                          " apply",
                      ts, {});
            w.counter("cluster power (W)", ts,
                      ChromeWriter::args(
                          {{"power", e.num_or("cluster_power_w")}}));
          }
          break;
        }
        // The engine's end-of-cycle record: measured stage wall costs as
        // nested slices at the cycle instant, power/budget as a counter.
        const double est = e.num_or("estimate_s") * kMicro;
        const double pol = e.num_or("policy_s") * kMicro;
        const double act = e.num_or("actuate_s") * kMicro;
        w.slice("cycle", ts, est + pol + act,
                ChromeWriter::args(
                    {{"total_power_w", e.num_or("total_power_w")},
                     {"budget_w", e.num_or("budget_w")},
                     {"feasible", e.num_or("feasible", 1.0)},
                     {"downgrade_steps", e.num_or("downgrade_steps")}}));
        w.slice("estimate", ts, est, {});
        w.slice("policy", ts + est, pol, {});
        w.slice("actuate", ts + est + pol, act, {});
        w.counter("cpu power (W)", ts,
                  ChromeWriter::args(
                      {{"power", e.num_or("total_power_w")},
                       {"budget", e.num_or("budget_w")}}));
        break;
      }
    }
  }
  w.finish();
}

// ---------------------------------------------------------------------------
// Invariant checks
// ---------------------------------------------------------------------------

namespace {

std::string at_time(double t) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, t);
  return " at t=" + std::string(buf, res.ptr) + "s";
}

}  // namespace

JournalCheckReport check_journal(const EventLog& log) {
  JournalCheckReport report;
  constexpr double kPowerTolW = 1e-6;
  constexpr double kVoltTol = 1e-9;

  // 1. Budget compliance: whenever the scheduler claims feasibility, the
  //    total it granted must fit under the budget it was given.
  for (const Event& e : log.events()) {
    if (e.type != EventType::kActuation || e.find_str("stage")) continue;
    ++report.checks_run;
    const double total = e.num_or("total_power_w");
    const double budget = e.num_or("budget_w",
                                   std::numeric_limits<double>::max());
    if (e.num_or("feasible", 1.0) != 0.0 && total > budget + kPowerTolW) {
      report.violations.push_back(
          "feasible actuation exceeds budget" + at_time(e.t) + ": " +
          std::to_string(total) + " W > " + std::to_string(budget) + " W");
    }
  }

  // 2. Voltage is the table minimum for every granted frequency.
  std::map<int, std::map<double, const Event*>> tables;
  for (const Event& e : log.events()) {
    if (e.type == EventType::kTablePoint) {
      tables[e.cpu][e.num_or("hz")] = &e;
    }
  }
  if (tables.empty()) {
    report.skipped.push_back(
        "voltage-table check: no table_point events in journal");
  } else {
    for (const Event& e : log.events()) {
      if (e.type != EventType::kDecision) continue;
      const auto table_it = tables.find(e.cpu);
      if (table_it == tables.end()) continue;
      ++report.checks_run;
      const double hz = e.num_or("granted_hz");
      const auto point_it = table_it->second.find(hz);
      if (point_it == table_it->second.end()) {
        report.violations.push_back(
            "cpu" + std::to_string(e.cpu) + " granted " +
            std::to_string(hz / 1e6) + " MHz" + at_time(e.t) +
            ", not an operating point of its table");
        continue;
      }
      const double table_volts = point_it->second->num_or("volts");
      if (std::abs(e.num_or("volts") - table_volts) > kVoltTol) {
        report.violations.push_back(
            "cpu" + std::to_string(e.cpu) + at_time(e.t) + ": voltage " +
            std::to_string(e.num_or("volts")) + " V is not the table minimum " +
            std::to_string(table_volts) + " V for its granted frequency");
      }
    }
  }

  // 3. T restarts after a budget trigger (only meaningful for daemons with
  //    tick-counted periods, declared via run_meta t_restarts = 1).
  const Event* meta = nullptr;
  for (const Event& e : log.events()) {
    if (e.type == EventType::kRunMeta) {
      meta = &e;
      break;
    }
  }
  const double t_sample = meta ? meta->num_or("t_sample_s") : 0.0;
  const double multiplier = meta ? meta->num_or("multiplier") : 0.0;
  if (!meta || meta->num_or("t_restarts") == 0.0 || t_sample <= 0.0 ||
      multiplier <= 0.0) {
    report.skipped.push_back(
        "T-restart check: journal does not declare a tick-counted period");
  } else {
    // After a budget cycle the tick count restarts, so the next timer
    // cycle comes at least (n - 1) ticks later.
    const double min_gap = (multiplier - 1.0) * t_sample - 1e-9;
    const Event* pending_budget_cycle = nullptr;
    for (const Event& e : log.events()) {
      if (e.type != EventType::kCycleStart) continue;
      const std::string* trigger = e.find_str("trigger");
      if (!trigger) continue;
      if (*trigger == "budget") {
        pending_budget_cycle = &e;
      } else if (*trigger == "timer" && pending_budget_cycle) {
        ++report.checks_run;
        if (e.t - pending_budget_cycle->t < min_gap) {
          report.violations.push_back(
              "timer cycle" + at_time(e.t) +
              " fired only " + std::to_string(e.t - pending_budget_cycle->t) +
              "s after the budget trigger" +
              at_time(pending_budget_cycle->t) +
              "; T did not restart");
        }
        pending_budget_cycle = nullptr;
      }
    }
  }

  // 4. Epoch fencing: coordinators only ever move forward through epochs,
  //    every node's applied epoch is non-decreasing (no settings from a
  //    deposed coordinator land), and nothing applies from an epoch no
  //    coordinator announced.
  {
    bool any_epoch_data = false;
    double last_announced = -1.0;
    double max_announced = -1.0;
    bool saw_announcement = false;
    std::map<int, double> node_epoch;
    for (const Event& e : log.events()) {
      if (e.type == EventType::kEpochChange) {
        any_epoch_data = true;
        saw_announcement = true;
        ++report.checks_run;
        const double epoch = e.num_or("epoch");
        if (epoch < last_announced) {
          report.violations.push_back(
              "epoch regressed" + at_time(e.t) + ": coordinator " +
              std::to_string(static_cast<int>(e.num_or("coordinator", -1.0))) +
              " announced epoch " + std::to_string(epoch) + " after epoch " +
              std::to_string(last_announced));
        }
        last_announced = std::max(last_announced, epoch);
        max_announced = std::max(max_announced, epoch);
        continue;
      }
      if (e.type != EventType::kActuation) continue;
      const std::string* stage = e.find_str("stage");
      if (!stage || *stage != "node_apply" || !e.has_num("epoch")) continue;
      any_epoch_data = true;
      ++report.checks_run;
      const double epoch = e.num_or("epoch");
      const int node = static_cast<int>(e.num_or("node", -1.0));
      auto [it, inserted] = node_epoch.try_emplace(node, epoch);
      if (!inserted) {
        if (epoch < it->second) {
          report.violations.push_back(
              "node" + std::to_string(node) + at_time(e.t) +
              " applied settings from deposed epoch " + std::to_string(epoch) +
              " after epoch " + std::to_string(it->second));
        }
        it->second = std::max(it->second, epoch);
      }
      if (saw_announcement && epoch > max_announced) {
        report.violations.push_back(
            "node" + std::to_string(node) + at_time(e.t) +
            " applied settings from unannounced epoch " +
            std::to_string(epoch) + " (highest announced: " +
            std::to_string(max_announced) + ")");
      }
    }
    if (!any_epoch_data) {
      report.skipped.push_back(
          "epoch-fence check: no epoch data in journal");
    }
  }

  // 5. Failover compliance: after every budget *drop* the cluster must be
  //    back under the new limit within the failover window the run
  //    declared (covering coordinator crashes in between — this is the
  //    paper's cascade-deadline requirement restated over the journal).
  const double failover_window =
      meta ? meta->num_or("failover_window_s") : 0.0;
  if (failover_window <= 0.0) {
    report.skipped.push_back(
        "failover-window check: journal does not declare failover_window_s");
  } else {
    const auto& events = log.events();
    double prev_budget = -1.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      if (e.type != EventType::kBudgetChange) continue;
      const double budget = e.num_or("budget_w");
      const bool drop = prev_budget >= 0.0 && budget < prev_budget;
      prev_budget = budget;
      if (!drop) continue;
      const double deadline = e.t + failover_window;
      bool compliant = false;
      bool superseded = false;
      bool past_deadline = false;
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        const Event& f = events[j];
        if (f.type == EventType::kBudgetChange) {
          superseded = true;  // a newer limit owns the next window
          break;
        }
        if (f.type != EventType::kActuation) continue;
        const std::string* stage = f.find_str("stage");
        if (!stage || *stage != "node_apply") continue;
        if (f.t > deadline) {
          past_deadline = true;
          break;
        }
        if (f.num_or("cluster_power_w",
                     std::numeric_limits<double>::max()) <=
            budget + kPowerTolW) {
          compliant = true;
          break;
        }
      }
      if (compliant || superseded) {
        ++report.checks_run;
      } else if (past_deadline) {
        ++report.checks_run;
        report.violations.push_back(
            "cluster still over the " + std::to_string(budget) +
            " W budget " + std::to_string(failover_window) +
            "s after the drop" + at_time(e.t) +
            " (failover window missed)");
      } else {
        report.skipped.push_back(
            "failover-window check: journal ends inside the window of the "
            "budget drop" + at_time(e.t));
      }
    }
  }

  return report;
}

// ---------------------------------------------------------------------------
// Journal diff
// ---------------------------------------------------------------------------

JournalDiff diff_journals(const EventLog& a, const EventLog& b) {
  JournalDiff diff;
  for (const auto& tn : kTypeNames) {
    JournalDiff::TypeCount tc;
    tc.type = std::string(tn.name);
    for (const Event& e : a.events()) {
      if (e.type == tn.type) ++tc.a;
    }
    for (const Event& e : b.events()) {
      if (e.type == tn.type) ++tc.b;
    }
    if (tc.a > 0 || tc.b > 0) diff.type_counts.push_back(std::move(tc));
  }

  std::vector<const Event*> da, db;
  for (const Event& e : a.events()) {
    if (e.type == EventType::kDecision) da.push_back(&e);
  }
  for (const Event& e : b.events()) {
    if (e.type == EventType::kDecision) db.push_back(&e);
  }
  const std::size_t n = std::min(da.size(), db.size());
  diff.decisions_compared = n;
  diff.decisions_unmatched = std::max(da.size(), db.size()) - n;
  for (std::size_t i = 0; i < n; ++i) {
    if (da[i]->cpu != db[i]->cpu ||
        da[i]->num_or("granted_hz") != db[i]->num_or("granted_hz")) {
      ++diff.decisions_differing;
      if (diff.first_divergence_t < 0.0) {
        diff.first_divergence_t = da[i]->t;
        diff.first_divergence_cpu = da[i]->cpu;
      }
    }
  }
  return diff;
}

}  // namespace fvsst::sim
