// event_log.h - Structured decision journal for the control loop.
//
// The paper's evaluation (Fig. 4-9, Table 2) is post-processing of the
// daemon's scheduling logs, and PAPERS.md's trace-driven schedulability
// work validates frequency-scaling behaviour the same way: from execution
// traces.  MetricRegistry records *what* was decided (named series); the
// EventLog records *why*: timestamped, typed events for every scheduling
// cycle — the trigger, each processor's decision with its pass-1 rationale,
// the pass-2 downgrade order, budget changes, idle transitions, infeasible
// budgets and actuations — each carrying a small key/value payload.
//
// The journal is purely observational: recording reads simulation state and
// never mutates it, so schedules are bit-for-bit identical with it on or
// off.  A bounded ring-buffer mode (capacity > 0) keeps long-lived daemons
// at fixed memory by dropping the oldest events.
//
// Three export formats plus readers:
//   write_jsonl        one JSON object per line; read_jsonl loads it back.
//   write_binary       length-prefixed binary records ("FJB1" magic): the
//                      same Event model, ~an order of magnitude cheaper to
//                      serialize, and losslessly convertible to the exact
//                      JSONL bytes (doubles travel as raw bits).
//   write_chrome_trace Chrome trace-event JSON (open in Perfetto or
//                      chrome://tracing): per-cycle stage costs as duration
//                      slices, power/budget/frequency as counter tracks,
//                      triggers and idle transitions as instant events.
// check_journal verifies scheduling invariants over a journal and
// diff_journals compares two runs — the engine behind tools/fvsst_inspect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fvsst::sim {

/// What a journal event describes.  The schema (payload keys per type) is
/// documented next to each enumerator; producers live in core::ControlLoop
/// and the daemon facades.
enum class EventType {
  /// Once per run, from the facade: "t_sample_s", "multiplier", "cpus",
  /// "t_restarts" (1 when a budget trigger restarts the period T, the SMP
  /// daemon's semantic); str "daemon".
  kRunMeta,
  /// One per (cpu, operating point): "hz", "volts", "watts" — the ground
  /// truth for the inspector's minimum-voltage check.
  kTablePoint,
  /// One per scheduling cycle: "cycle", "budget_w"; str "trigger"
  /// (timer | budget | manual).
  kCycleStart,
  /// One per CPU per cycle: "granted_hz", "desired_hz", "volts", "watts",
  /// "predicted_loss", "idle"; str "pass1" (the pass-1 rationale) when the
  /// policy classifies; explain mode adds "pass1_loss", "rejected_loss".
  kDecision,
  /// Explain mode, one per pass-2 step: "seq", "from_hz", "to_hz",
  /// "marginal_loss", "watts_saved".
  kDowngrade,
  /// Power-limit move (the supply-failure trigger): "budget_w".
  kBudgetChange,
  kIdleEnter,  ///< A CPU's idle flag rose (no payload beyond cpu).
  kIdleExit,   ///< A CPU's idle flag cleared.
  /// Even all-minimum settings exceed the budget: "budget_w",
  /// "total_power_w".
  kInfeasibleBudget,
  /// Cycle applied: "total_power_w", "budget_w", "feasible",
  /// "downgrade_steps", plus this cycle's measured stage cost
  /// ("estimate_s", "policy_s", "actuate_s").  The cluster daemon also
  /// emits deferred per-node applies with str "stage" = "node_apply" and
  /// "node", "cluster_power_w".
  kActuation,
  /// An injected or observed fault: str "kind" (a sim::FaultKind wire
  /// name), str "state" (enter | exit) for windowed faults, plus
  /// kind-specific fields ("attempt", "target_hz" for actuation rejects,
  /// "held_w" for sensor dropout).
  kFault,
  /// The engine entered or left a degraded operating mode: str "state"
  /// (enter | exit), str "reason" (actuation_failsafe | node_silent |
  /// coordinator_silent), "hz" (the fail-safe grant) or "node" (the silent
  /// node; for coordinator_silent, the node that dropped to its autonomous
  /// budget/N frequency).
  kDegradedMode,
  /// A cluster message was dropped in flight: str "direction" (up | down),
  /// "node"; str "cause" = "fault" when a FaultPlan forced the drop.
  kMessageLost,
  /// A cluster coordinator announced a new epoch: "epoch", "coordinator";
  /// str "reason" (boot | takeover | stepdown).  Epochs must be
  /// non-decreasing over the journal (the inspector enforces it).
  kEpochChange,
  /// A node fenced off a settings message from a deposed coordinator:
  /// "node", "msg_epoch" (the stale message's epoch), "epoch" (the node's
  /// fence).
  kSettingsRejected,
  /// Coordinator stable-store activity: "epoch", "round", "budget_w"; str
  /// "op" (save | recover); recover adds "replayed" (grant records applied
  /// on top of the snapshot) and "checksum_ok".
  kSnapshot,
  // New event types are appended (never inserted): the enumerator value
  // travels as the u8 type byte of FJB1 binary records, so reordering
  // would silently re-type every existing binary journal.
  /// A monitor rule started firing: str "rule", "severity", "expr"; num
  /// "value" (the aggregate that crossed), "threshold", "window_s",
  /// "for_windows".  Producer: sim::monitor::Monitor.
  kAlertRaised,
  /// The rule's predicate went false while firing: str "rule", "severity";
  /// num "value", "raised_t", "duration_s".
  kAlertCleared,
  /// The reliable transport re-sent an unacked settings message: "node",
  /// "seq", "attempt" (1 = first retransmission); str "direction"
  /// ("down").  Producer: cluster::Transport via the cluster daemon.
  kMessageRetransmit,
  /// A sequenced message was suppressed at the receiver as a duplicate or
  /// stale reordered copy (at-least-once delivery, effectively-once
  /// apply): "node", "seq", "applied_seq"; str "direction".
  kMessageDuplicate,
  /// The transport gave up on an unacked message: "node", "seq",
  /// "attempts"; str "cause" ("retries" = retransmit budget exhausted,
  /// "epoch" = queue drained by the epoch fence across failover).
  kMessageExpired,
  /// A message failed its envelope checksum at the receiver (injected
  /// kChannelCorrupt) and was dropped instead of misdelivered: "node";
  /// str "direction".
  kMessageCorrupt,
  /// A coordinator-tree summary round (producer: core::TreeDaemon).  The
  /// per-round root decision carries "round", "cpus", "idle",
  /// "desired_power_w", "power_w", "budget_w", "cap_hz", "promoted",
  /// "feasible", "lag_s"; str "trigger".  With per-shard journalling
  /// enabled (journal_topology), leaf/aggregate hops add "tier", "shard"
  /// or "agg", "bytes" and "mailbox".
  kAggregation,
};

/// Stable wire name ("cycle_start", "decision", ...).
std::string_view event_type_name(EventType type);

/// Inverse of event_type_name; nullopt for unknown names.
std::optional<EventType> event_type_from_name(std::string_view name);

/// One journal entry: a timestamped, typed record with a small flat
/// key/value payload (numeric and string fields kept separately).
struct Event {
  double t = 0.0;                      ///< Simulated seconds.
  EventType type = EventType::kCycleStart;
  int cpu = -1;                        ///< Flattened CPU index; -1: global.
  std::vector<std::pair<std::string, double>> num;
  std::vector<std::pair<std::string, std::string>> str;

  Event& set(std::string key, double value) {
    num.emplace_back(std::move(key), value);
    return *this;
  }
  Event& set(std::string key, std::string value) {
    str.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  bool has_num(std::string_view key) const;
  /// Value of numeric field `key`, or `fallback` when absent.
  double num_or(std::string_view key, double fallback = 0.0) const;
  /// String field `key`, or nullptr when absent.
  const std::string* find_str(std::string_view key) const;
};

/// Appends `e`'s JSONL line (including the trailing newline) to `out` —
/// the exact bytes write_jsonl emits for that event.  write_jsonl and
/// JsonlStreamWriter both serialize through here, which is what makes the
/// buffered streaming path byte-identical to the end-of-run export by
/// construction.
void append_event_jsonl(std::string& out, const Event& e);

/// Thrown when a journal writer's underlying stream reports failure: the
/// bytes did not reach their destination (disk full, closed pipe, bad fd).
/// Journalling is observational, so callers usually report and keep the
/// simulation's results; what they must NOT do is trust the journal file.
class JournalWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sink for sealed journal events.  EventLog streams through this
/// interface, so a run can journal as JSONL or binary (or anything a test
/// fakes) without the producers knowing.  write() may buffer; flush()
/// drains and throws JournalWriteError if the underlying stream failed.
class JournalWriter {
 public:
  virtual ~JournalWriter() = default;
  virtual void write(const Event& e) = 0;
  virtual void flush() = 0;
  /// Events accepted by write() so far (buffered or flushed).
  virtual std::size_t events_written() const = 0;
};

/// Buffered JSONL emitter: serializes events into an internal buffer and
/// writes the underlying stream in `flush_bytes` chunks, so a scale run's
/// journal costs one syscall per few hundred events instead of one per
/// event.  flush() (also run by the destructor) drains the buffer and
/// throws JournalWriteError when the stream has failed; the destructor
/// swallows that error (it cannot throw), so callers who care about
/// durability must flush() explicitly before tearing down.
class JsonlStreamWriter final : public JournalWriter {
 public:
  explicit JsonlStreamWriter(std::ostream& out,
                             std::size_t flush_bytes = 64 * 1024);
  ~JsonlStreamWriter() override;
  JsonlStreamWriter(const JsonlStreamWriter&) = delete;
  JsonlStreamWriter& operator=(const JsonlStreamWriter&) = delete;

  void write(const Event& e) override;
  void flush() override;
  std::size_t events_written() const override { return events_; }

 private:
  std::ostream& out_;
  std::size_t flush_bytes_;
  std::string buffer_;
  std::size_t events_ = 0;
};

/// Buffered binary journal emitter.  The file is the 4-byte magic "FJB1"
/// followed by length-prefixed records: u32 payload length (little
/// endian), then the payload
///   u8  event type     (EventType enumerator value)
///   f64 t              (IEEE-754 bits, little endian)
///   i32 cpu            (little endian two's complement)
///   u16 num_count, u16 str_count
///   num_count x { u16 key length, key bytes, f64 value bits }
///   str_count x { u16 key length, key bytes, u32 value length, value }
/// Doubles travel as raw bits, so decoding and re-serializing with
/// append_event_jsonl reproduces the exact JSONL bytes write_jsonl would
/// have emitted — the converter is lossless both ways.  Same buffering and
/// error contract as JsonlStreamWriter.
class BinaryJournalWriter final : public JournalWriter {
 public:
  explicit BinaryJournalWriter(std::ostream& out,
                               std::size_t flush_bytes = 64 * 1024);
  ~BinaryJournalWriter() override;
  BinaryJournalWriter(const BinaryJournalWriter&) = delete;
  BinaryJournalWriter& operator=(const BinaryJournalWriter&) = delete;

  void write(const Event& e) override;
  void flush() override;
  std::size_t events_written() const override { return events_; }

 private:
  std::ostream& out_;
  std::size_t flush_bytes_;
  std::string buffer_;
  std::size_t events_ = 0;
};

/// Appends `e`'s length-prefixed binary record to `out` — the exact bytes
/// BinaryJournalWriter emits for that event (sans the file magic).
void append_event_binary(std::string& out, const Event& e);

/// Append-only journal, optionally bounded.  With capacity > 0 the log is a
/// ring buffer: appending past capacity drops the oldest event (counted in
/// dropped()).  References returned by append() stay valid until that event
/// is itself dropped (storage is a deque).
///
/// Unbounded logs can instead stream: attach a JournalWriter (JSONL or
/// binary) and each event is serialized once its payload is final (when
/// the next append arrives, or at flush_stream()) and released from
/// memory, so an arbitrarily long run journals in O(1) space.
class EventLog {
 public:
  /// `capacity` 0 keeps everything (unbounded).
  explicit EventLog(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Appends and returns a new event for in-place payload population:
  ///   log.append(now, EventType::kDecision, cpu).set("granted_hz", hz);
  Event& append(double t, EventType type, int cpu = -1);

  /// Appends a fully built event (the JSONL reader's path).
  void push(Event event);

  /// Streams every future event to `writer` (nullptr detaches).  Only the
  /// newest, still-mutable event is retained in events(); each is sealed
  /// and handed to the writer when the next append arrives.  Requires an
  /// unbounded log: the ring's drop-oldest contract cannot be honoured
  /// once bytes have left the process, so capacity > 0 throws.  Events
  /// already in the log are sealed by the next append as usual.
  void stream_to(JournalWriter* writer);

  /// Seals any pending tail into the stream and flushes the writer; call
  /// once the run is over.  No-op when not streaming.
  void flush_stream();

  /// Events handed to the streaming writer so far.
  std::size_t streamed() const { return streamed_; }

  const std::deque<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  std::size_t capacity() const { return capacity_; }
  /// Events discarded by the ring buffer so far.
  std::size_t dropped() const { return dropped_; }
  void clear();

 private:
  void seal_into_stream();

  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::size_t streamed_ = 0;
  JournalWriter* stream_ = nullptr;
  std::deque<Event> events_;
};

/// Writes one JSON object per event, one per line:
///   {"t":1.2,"type":"decision","cpu":3,"granted_hz":8e+08,"pass1":"epsilon"}
/// Reserved keys t/type/cpu come first; payload fields follow in insertion
/// order.  Non-finite values are clamped to the double range (JSON has no
/// infinity).
void write_jsonl(std::ostream& out, const EventLog& log);

/// Parses what write_jsonl wrote.  Unknown payload keys are kept; unknown
/// event types or malformed JSON throw std::runtime_error with a line
/// number.  Blank lines are skipped.
EventLog read_jsonl(std::istream& in);

/// Outcome of the tolerant read_jsonl overload.
struct JsonlReadReport {
  /// The final non-blank line failed to parse — the classic torn tail of a
  /// journal whose writer died mid-line.  The complete events before it
  /// were still recovered.
  bool torn_tail = false;
  std::string error;  ///< The tail's parse error (empty when !torn_tail).
};

/// Tolerant variant for journals that may end mid-write: a parse failure on
/// the *final* non-blank line is reported in `report` instead of thrown, and
/// every complete line before it is returned.  Corruption anywhere else
/// still throws — a torn tail is expected wear, a torn middle is not.
EventLog read_jsonl(std::istream& in, JsonlReadReport* report);

/// Streaming form of read_jsonl: invokes `fn` for each parsed event in
/// file order without materializing an EventLog, so a multi-GB scale-run
/// journal is inspected in bounded memory.  With `report` null any
/// malformed line throws (the strict contract); with `report` non-null the
/// tolerant torn-tail contract applies.  Returns the number of events
/// delivered.
std::size_t for_each_jsonl(std::istream& in,
                           const std::function<void(Event&&)>& fn,
                           JsonlReadReport* report = nullptr);

/// Writes the "FJB1" binary journal (see BinaryJournalWriter for the wire
/// layout).
void write_binary(std::ostream& out, const EventLog& log);

/// Streaming binary reader, the for_each_jsonl twin.  A record cut short
/// by the end of the stream — a partial length prefix or fewer payload
/// bytes than the prefix promised — is the binary torn tail: reported via
/// `report` (tolerant contract) or thrown (strict, `report` null); every
/// complete record before it is still delivered.  A payload that decodes
/// inconsistently (unknown event type, key running past the record, bytes
/// left over) is corruption and always throws, as does a missing or wrong
/// magic.  An empty stream is an empty journal.  Returns events delivered.
std::size_t for_each_binary(std::istream& in,
                            const std::function<void(Event&&)>& fn,
                            JsonlReadReport* report = nullptr);

/// Materializing wrappers over for_each_binary (strict / tolerant).
EventLog read_binary(std::istream& in);
EventLog read_binary(std::istream& in, JsonlReadReport* report);

/// On-disk journal encodings.
enum class JournalFormat { kJsonl, kBinary };

/// Sniffs which journal encoding `in` holds by peeking its first bytes
/// (the stream is rewound): the "FJB1" magic means binary, anything else
/// — including an empty or short stream — is JSONL, whose lines can never
/// start with that magic ('{' opens every line write_jsonl emits).
JournalFormat detect_journal_format(std::istream& in);

/// Writes Chrome trace-event JSON (load in Perfetto or chrome://tracing).
/// The timeline is simulated time in microseconds; each cycle's measured
/// stage costs render as nested duration slices at the cycle instant,
/// power/budget and per-CPU granted/desired frequency render as counter
/// tracks, and triggers/idle transitions/infeasible budgets as instants.
void write_chrome_trace(std::ostream& out, const EventLog& log);

/// Outcome of check_journal.
struct JournalCheckReport {
  std::size_t checks_run = 0;               ///< Individual assertions made.
  std::vector<std::string> skipped;         ///< Checks lacking data.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Incremental journal verifier: feed events in journal order (observe),
/// then collect the report (finish).  State is O(1) in the journal length
/// — the operating-point tables, a few per-node epoch scalars and the one
/// open failover window — so multi-GB journals check in bounded memory
/// (pair with for_each_jsonl).  The checks and their report wording are
/// exactly check_journal's; the only caveat of the single pass is that
/// events are judged against the metadata seen *so far*: a journal whose
/// run_meta or table_point events trailed the decisions they govern would
/// skip those early events, which no writer in this repo produces.
class JournalChecker {
 public:
  void observe(const Event& e);
  JournalCheckReport finish();

 private:
  std::size_t checks_run_ = 0;
  // 1. Budget compliance.
  std::vector<std::string> budget_violations_;
  // 2. Voltage-table minimum: cpu -> hz -> table volts, grown as
  //    table_point events arrive.
  std::map<int, std::map<double, double>> tables_;
  std::vector<std::string> voltage_violations_;
  // 3. T-restart: (budget-cycle t, next timer-cycle t) gaps, judged at
  //    finish() once the first run_meta has declared (or not) the period.
  bool have_meta_ = false;
  double meta_t_sample_ = 0.0;
  double meta_multiplier_ = 0.0;
  double meta_t_restarts_ = 0.0;
  double meta_failover_window_ = 0.0;
  double pending_budget_cycle_t_ = -1.0;
  std::vector<std::pair<double, double>> restart_gaps_;
  // 4. Epoch fencing.
  bool any_epoch_data_ = false;
  double last_announced_ = -1.0;
  double max_announced_ = -1.0;
  bool saw_announcement_ = false;
  std::map<int, double> node_epoch_;
  std::vector<std::string> epoch_violations_;
  // 5. Failover window: at most one window is open at a time (a newer
  //    budget change supersedes the previous window).
  double prev_budget_ = -1.0;
  bool window_open_ = false;
  double window_t_ = 0.0;
  double window_deadline_ = 0.0;
  double window_budget_ = 0.0;
  std::vector<std::string> failover_violations_;
  // 6. Transport (needs a kRunMeta with convergence_window_s > 0):
  //    monotone applied sequence per (node, epoch) — no duplicate or
  //    stale apply — and bounded convergence: after the last channel
  //    disturbance (message_lost / message_corrupt / message_expired),
  //    every node applies settings within the declared window.
  double meta_convergence_window_ = 0.0;
  double meta_nodes_ = 0.0;
  double last_disturb_t_ = -1.0;
  double last_event_t_ = 0.0;
  bool any_disturbance_ = false;
  std::map<int, std::pair<double, double>> node_seq_;  ///< node -> (epoch, seq).
  /// Per node: earliest node_apply after the latest disturbance seen so
  /// far (a value < last_disturb_t_ means none yet).
  std::map<int, double> node_apply_after_;
  std::vector<std::string> transport_violations_;
};

/// Verifies scheduling invariants over a journal:
///   1. whenever an actuation reports feasible, total power <= budget;
///   2. every granted frequency is an operating point of its CPU's table
///      and carries that point's minimum stable voltage (needs kTablePoint
///      events);
///   3. the scheduling period T restarts after a budget trigger (needs a
///      kRunMeta with t_restarts = 1): the next timer cycle comes no sooner
///      than (multiplier - 1) * t_sample_s after the budget cycle;
///   4. epoch fencing (needs epoch data): announced epochs are
///      non-decreasing, each node's applied epoch is non-decreasing (no
///      settings from a deposed coordinator are applied), and nothing
///      applies from an unannounced epoch;
///   5. failover compliance (needs a kRunMeta with failover_window_s > 0):
///      after every budget drop, some node_apply shows aggregate cluster
///      power back under the new limit within the window.
///   6. transport guarantees (needs a kRunMeta with convergence_window_s
///      > 0): applied sequence numbers are strictly increasing per
///      (node, epoch) — at-least-once delivery never becomes a duplicate
///      or stale apply — and after the last channel disturbance
///      (message_lost / message_corrupt / message_expired) every node
///      applies settings within the declared window (the
///      bounded-convergence guarantee).
/// Convenience wrapper over JournalChecker for in-memory logs.
JournalCheckReport check_journal(const EventLog& log);

/// Outcome of diff_journals.
struct JournalDiff {
  struct TypeCount {
    std::string type;
    std::size_t a = 0;
    std::size_t b = 0;
  };
  std::vector<TypeCount> type_counts;       ///< Only types seen in either.
  std::size_t decisions_compared = 0;       ///< Pairwise-aligned decisions.
  std::size_t decisions_differing = 0;      ///< Granted-frequency mismatches.
  std::size_t decisions_unmatched = 0;      ///< Length difference remainder.
  double first_divergence_t = -1.0;         ///< < 0 when decisions agree.
  int first_divergence_cpu = -1;
  bool identical_decisions() const {
    return decisions_differing == 0 && decisions_unmatched == 0;
  }
};

/// Compares two journals: per-type event counts and an in-order alignment
/// of decision events (granted frequency per cycle per CPU).
JournalDiff diff_journals(const EventLog& a, const EventLog& b);

}  // namespace fvsst::sim
