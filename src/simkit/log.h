// log.h - Lightweight leveled logging.
//
// The fvsst daemon in the paper "generates both scheduling and performance
// counter data logs"; this logger backs those logs in the reproduction.
// It is intentionally simple: synchronous, single-threaded (the simulator
// itself is single-threaded), with a process-global level.
#pragma once

#include <sstream>
#include <string>

namespace fvsst::sim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses FVSST_LOG (debug|info|warn|error|off) if set; call once at start.
void init_log_level_from_env();

/// Emits one log line: "[level] [component] message".  `sim_time` < 0 means
/// "no simulated timestamp".
void log_message(LogLevel level, const std::string& component,
                 const std::string& message, double sim_time = -1.0);

/// Stream-style helper: LOG_AT(kInfo, "sched", sim.now()) << "budget=" << b;
class LogLine {
 public:
  LogLine(LogLevel level, std::string component, double sim_time)
      : level_(level), component_(std::move(component)), sim_time_(sim_time) {}
  ~LogLine() { log_message(level_, component_, stream_.str(), sim_time_); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  double sim_time_;
  std::ostringstream stream_;
};

}  // namespace fvsst::sim
