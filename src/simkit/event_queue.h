// event_queue.h - Discrete-event simulation core.
//
// The whole fvsst reproduction runs on a single-threaded discrete-event
// simulator: cores advance in fixed ticks, counter samplers fire every `t`,
// the scheduler fires every `T`, and power-supply failures are one-shot
// events.  Events at equal timestamps execute in insertion order
// (FIFO-stable), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fvsst::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulation engine.
///
/// Typical use:
///   Simulation sim;
///   sim.schedule_every(0.01, [&]{ sampler.sample(); });
///   sim.schedule_at(5.0, [&]{ supply.fail(); });
///   sim.run_until(30.0);
class Simulation {
 public:
  using Action = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  double now() const { return now_; }

  /// Schedules `action` at absolute simulated time `when` (seconds).
  /// Times in the past are clamped to `now()`.
  EventId schedule_at(double when, Action action);

  /// Schedules `action` after `delay` seconds.
  EventId schedule_after(double delay, Action action);

  /// Schedules `action` every `period` seconds starting at `now() + period`
  /// (or at `start` if given).  The action keeps repeating until cancelled.
  EventId schedule_every(double period, Action action);
  EventId schedule_every_from(double start, double period, Action action);

  /// Cancels a pending (or repeating) event.  Returns true if the event was
  /// still live.  Cancelling an already-fired one-shot event is a no-op.
  bool cancel(EventId id);

  /// Runs events until the queue is exhausted or `t_end` is reached; the
  /// clock always finishes at exactly `t_end` (even if the queue drains
  /// early) so that "run for 10s" semantics hold.
  void run_until(double t_end);

  /// Convenience: run_until(now() + duration).
  void run_for(double duration);

  /// Executes events one at a time; returns false when the queue is empty.
  bool step();

  /// Number of events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  std::size_t pending() const;

 private:
  struct Event {
    double when = 0.0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among equal timestamps
    EventId id = 0;
    double period = 0.0;  // > 0 for repeating events
    // Repeating events fire at origin + k*period (computed, not
    // accumulated) so long-running periodic timers don't drift in
    // floating point.
    double origin = 0.0;
    std::uint64_t fires = 0;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  EventId push(double when, double period, Action action);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;  // ids cancelled but still in queue_
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
};

}  // namespace fvsst::sim
