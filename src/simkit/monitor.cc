#include "simkit/monitor.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace fvsst::sim::monitor {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

// ---- SlidingWindow --------------------------------------------------------

SlidingWindow::SlidingWindow(double window_s, std::size_t buckets)
    : window_s_(window_s > 0.0 ? window_s : 1.0),
      bucket_s_(window_s_ / static_cast<double>(buckets ? buckets : 1)),
      buckets_(buckets ? buckets : 1) {}

std::int64_t SlidingWindow::bucket_index(double t) const {
  return static_cast<std::int64_t>(std::floor(t / bucket_s_));
}

void SlidingWindow::observe(double t, double value) {
  const std::int64_t idx = bucket_index(t);
  Bucket& b = buckets_[static_cast<std::size_t>(
      ((idx % static_cast<std::int64_t>(buckets_.size())) +
       static_cast<std::int64_t>(buckets_.size())) %
      static_cast<std::int64_t>(buckets_.size()))];
  if (b.index != idx) {
    b.index = idx;
    b.count = 0;
    b.sum = 0.0;
    b.min = value;
    b.max = value;
  }
  ++b.count;
  b.sum += value;
  b.min = std::min(b.min, value);
  b.max = std::max(b.max, value);
  newest_ = std::max(newest_, idx);
}

template <typename Fold>
void SlidingWindow::fold(double t, Fold&& f) const {
  // The window ending at `t` covers the B bucket slots whose absolute
  // index lies in (idx(t) - B, idx(t)]; a slot whose recorded index fell
  // behind that range holds expired data and is skipped.
  const std::int64_t idx = bucket_index(t);
  const std::int64_t oldest = idx - static_cast<std::int64_t>(buckets_.size());
  for (const Bucket& b : buckets_) {
    if (b.index > oldest && b.index <= idx && b.count > 0) f(b);
  }
}

std::size_t SlidingWindow::count(double t) const {
  std::size_t n = 0;
  fold(t, [&](const Bucket& b) { n += b.count; });
  return n;
}

double SlidingWindow::sum(double t) const {
  double s = 0.0;
  fold(t, [&](const Bucket& b) { s += b.sum; });
  return s;
}

double SlidingWindow::rate(double t) const { return sum(t) / window_s_; }

double SlidingWindow::mean(double t) const {
  double s = 0.0;
  std::size_t n = 0;
  fold(t, [&](const Bucket& b) {
    s += b.sum;
    n += b.count;
  });
  return n ? s / static_cast<double>(n) : kNaN;
}

double SlidingWindow::min(double t) const {
  double m = kNaN;
  bool any = false;
  fold(t, [&](const Bucket& b) {
    m = any ? std::min(m, b.min) : b.min;
    any = true;
  });
  return m;
}

double SlidingWindow::max(double t) const {
  double m = kNaN;
  bool any = false;
  fold(t, [&](const Bucket& b) {
    m = any ? std::max(m, b.max) : b.max;
    any = true;
  });
  return m;
}

// ---- Ewma -----------------------------------------------------------------

void Ewma::observe(double t, double value) {
  if (!has_value_) {
    has_value_ = true;
    value_ = value;
    last_t_ = t;
    return;
  }
  const double dt = t - last_t_;
  last_t_ = t;
  if (!(tau_s_ > 0.0)) {
    value_ = value;
    return;
  }
  const double alpha = 1.0 - std::exp(-std::max(dt, 0.0) / tau_s_);
  value_ += alpha * (value - value_);
}

// ---- P2Quantile -----------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.001, 0.999)) {
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  incr_[0] = 0.0;
  incr_[1] = q_ / 2.0;
  incr_[2] = q_;
  incr_[3] = (1.0 + q_) / 2.0;
  incr_[4] = 1.0;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    pos_[i] = static_cast<double>(i + 1);
  }
}

void P2Quantile::observe(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  // Cell k: the marker interval the new observation falls into; the two
  // extreme markers track the running min and max exactly.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];
  ++n_;

  // Nudge the three middle markers toward their desired rank positions:
  // parabolic (piecewise-quadratic) interpolation when it stays monotone,
  // linear otherwise — the P² update rule verbatim.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      const double qp =
          heights_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + s) * (heights_[i + 1] - heights_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - s) * (heights_[i] - heights_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        const int j = static_cast<int>(s);
        heights_[i] += s * (heights_[i + j] - heights_[i]) /
                       (pos_[i + j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return kNaN;
  if (n_ < 5) {
    // Exact (interpolated) order statistic over the stored prefix.
    double sorted[5];
    std::copy(heights_, heights_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double rank = q_ * static_cast<double>(n_ - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

// ---- Names ----------------------------------------------------------------

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

std::string_view agg_func_name(AggFunc func) {
  switch (func) {
    case AggFunc::kRate: return "rate";
    case AggFunc::kMean: return "mean";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kEwma: return "ewma";
    case AggFunc::kValue: return "value";
  }
  return "?";
}

namespace {

std::string_view cmp_op_name(CmpOp op) {
  switch (op) {
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
  }
  return "?";
}

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string Rule::expression() const {
  std::string out;
  out += agg_func_name(func);
  out += '(';
  out += input;
  out += ", ";
  out += format_number(window_s);
  out += "s) ";
  out += cmp_op_name(op);
  out += ' ';
  out += format_number(threshold);
  if (for_windows > 1) {
    out += " for ";
    out += std::to_string(for_windows);
    out += " windows";
  }
  return out;
}

// ---- RuleSet and the DSL parser -------------------------------------------

namespace {

/// Splits a DSL line into word tokens and single-character punctuation
/// tokens ('(', ')', ','); comparison operators survive as words.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;  // Comment to end of line.
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else if (c == '(' || c == ')' || c == ',') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
      tokens.push_back(std::string(1, c));
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("rules line " + std::to_string(line_no) + ": " +
                           what);
}

double parse_strict_number(const std::string& token, std::size_t line_no,
                           const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &used);
  } catch (const std::exception&) {
    parse_fail(line_no, std::string("bad ") + what + " '" + token + "'");
  }
  if (used != token.size()) {
    parse_fail(line_no,
               std::string("trailing junk in ") + what + " '" + token + "'");
  }
  return v;
}

/// "600ms" -> 0.6, "10s" -> 10.  The unit suffix is mandatory so a bare
/// number can never silently mean the wrong magnitude.
double parse_window(const std::string& token, std::size_t line_no) {
  std::string number;
  double scale = 0.0;
  if (token.size() > 2 && token.compare(token.size() - 2, 2, "ms") == 0) {
    number = token.substr(0, token.size() - 2);
    scale = 1e-3;
  } else if (token.size() > 1 && token.back() == 's') {
    number = token.substr(0, token.size() - 1);
    scale = 1.0;
  } else {
    parse_fail(line_no, "window '" + token + "' needs an s or ms suffix");
  }
  const double v = parse_strict_number(number, line_no, "window");
  if (!(v > 0.0)) parse_fail(line_no, "window must be positive");
  return v * scale;
}

}  // namespace

RuleSet RuleSet::parse(std::istream& in) {
  RuleSet out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    std::size_t i = 0;
    auto need = [&](const char* what) -> const std::string& {
      if (i >= tok.size()) parse_fail(line_no, std::string(what));
      return tok[i++];
    };
    if (need("expected 'alert'") != "alert") {
      parse_fail(line_no, "rule must start with 'alert', got '" + tok[0] + "'");
    }
    Rule rule;
    rule.name = need("missing rule name");

    if (i < tok.size() && tok[i] == "severity") {
      ++i;
      const std::string& sev = need("missing severity value");
      if (sev == "info") rule.severity = Severity::kInfo;
      else if (sev == "warning") rule.severity = Severity::kWarning;
      else if (sev == "critical") rule.severity = Severity::kCritical;
      else parse_fail(line_no, "unknown severity '" + sev + "'");
    }
    if (need("missing 'when'") != "when") {
      parse_fail(line_no, "expected 'when' after the rule name");
    }
    const std::string& func = need("missing aggregation function");
    if (func == "rate") rule.func = AggFunc::kRate;
    else if (func == "mean") rule.func = AggFunc::kMean;
    else if (func == "min") rule.func = AggFunc::kMin;
    else if (func == "max") rule.func = AggFunc::kMax;
    else if (func == "ewma") rule.func = AggFunc::kEwma;
    else if (func == "value") rule.func = AggFunc::kValue;
    else parse_fail(line_no, "unknown aggregation '" + func + "'");
    if (need("missing '('") != "(") parse_fail(line_no, "expected '('");
    rule.input = need("missing input name");
    if (rule.input == "(" || rule.input == ")" || rule.input == ",") {
      parse_fail(line_no, "missing input name");
    }
    if (need("missing ','") != ",") {
      parse_fail(line_no, "expected ',' after the input name");
    }
    rule.window_s = parse_window(need("missing window"), line_no);
    if (need("missing ')'") != ")") parse_fail(line_no, "expected ')'");

    const std::string& op = need("missing comparison operator");
    if (op == ">") rule.op = CmpOp::kGt;
    else if (op == ">=") rule.op = CmpOp::kGe;
    else if (op == "<") rule.op = CmpOp::kLt;
    else if (op == "<=") rule.op = CmpOp::kLe;
    else parse_fail(line_no, "unknown comparison '" + op + "'");
    rule.threshold =
        parse_strict_number(need("missing threshold"), line_no, "threshold");

    if (i < tok.size()) {
      if (tok[i] != "for") {
        parse_fail(line_no, "unexpected token '" + tok[i] + "'");
      }
      ++i;
      const double n =
          parse_strict_number(need("missing window count"), line_no,
                              "window count");
      if (n < 1.0 || n != std::floor(n)) {
        parse_fail(line_no, "window count must be a positive integer");
      }
      rule.for_windows = static_cast<int>(n);
      if (need("missing 'windows'") != "windows") {
        parse_fail(line_no, "expected 'windows' after the count");
      }
    }
    if (i != tok.size()) {
      parse_fail(line_no, "unexpected trailing token '" + tok[i] + "'");
    }
    for (const Rule& existing : out.rules_) {
      if (existing.name == rule.name) {
        parse_fail(line_no, "duplicate rule name '" + rule.name + "'");
      }
    }
    out.add(std::move(rule));
  }
  return out;
}

RuleSet RuleSet::parse_string(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse(in);
}

void RuleSet::add(Rule rule) { rules_.push_back(std::move(rule)); }

std::string default_rule_pack() {
  // Inputs are fed by the daemons at scheduling instants (see
  // docs/observability.md); windows and thresholds assume the default
  // sampling configuration t = 10 ms, T = 10 t = 0.1 s.
  return
      "# fvsst default monitoring rules\n"
      "# Sustained actual power above the effective budget: transient\n"
      "# overshoot inside the failover window is expected, a window-long\n"
      "# minimum above zero is not.\n"
      "alert budget_overshoot severity critical when min(over_budget_w, "
      "600ms) > 0.001 for 2 windows\n"
      "# Pass-2 never settling: every cycle in the last second downgraded.\n"
      "alert downgrade_storm severity warning when min(downgrade_steps, 1s) "
      ">= 1 for 5 windows\n"
      "# More than a quarter of the nodes running their autonomous\n"
      "# budget/N fail-safe frequency.\n"
      "alert node_failsafe severity critical when max(failsafe_frac, 500ms) "
      "> 0.25 for 1 windows\n"
      "# More than a quarter of the nodes silent (accounted at f_max).\n"
      "alert node_degraded severity warning when max(stale_frac, 1s) > 0.25 "
      "for 2 windows\n"
      "# A budget-triggered round still has nodes over the promised\n"
      "# compliance window.\n"
      "alert failover_breach severity critical when max(failover_breach, 1s) "
      ">= 1 for 1 windows\n"
      "# No global round for 3.5 T: the coordinator (and any standby) is\n"
      "# down or partitioned.\n"
      "alert coordinator_silent severity critical when min(since_round_s, "
      "500ms) > 0.35 for 1 windows\n"
      "# Tree topology: grants applying more than 5 ms after the summary\n"
      "# instant they answer.  The four-hop pipeline is 400 us at the\n"
      "# nominal 100 us link latency, so a 10x lag means the tree is\n"
      "# congested, lossy, or repairing via retransmission.\n"
      "alert aggregation_lag severity warning when max(aggregation_lag_s, "
      "500ms) > 0.005 for 1 windows\n"
      "# The journal ring dropped events (undersized --journal-cap).\n"
      "alert journal_loss severity warning when rate(journal_dropped, 5s) > "
      "0 for 1 windows\n"
      "# Cluster channels losing more than 2 messages/s.\n"
      "alert message_loss severity warning when rate(messages_lost, 2s) > 2 "
      "for 2 windows\n"
      "# The reliable transport retransmitting faster than it converges:\n"
      "# a sustained storm means the channel is bad enough that settings\n"
      "# are being repaired by brute force round after round.\n"
      "alert retransmit_storm severity warning when rate(retransmits, 2s) > "
      "5 for 2 windows\n";
}

// ---- Monitor --------------------------------------------------------------

Monitor::Monitor(const RuleSet& rules) : Monitor(rules, Options{}) {}

Monitor::Monitor(const RuleSet& rules, Options options)
    : options_(std::move(options)), rules_(rules.rules()) {
  rule_states_.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    rule_states_.push_back(RuleState{
        SlidingWindow(rule.window_s, options_.window_buckets),
        Ewma(rule.window_s), false, 0.0});
  }
  states_.resize(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const InputId id = input(rules_[i].input);
    inputs_[id.index].rule_indices.push_back(i);
  }
}

InputId Monitor::input(std::string_view name) {
  const auto it = input_index_.find(std::string(name));
  if (it != input_index_.end()) return InputId{it->second};
  const std::size_t index = inputs_.size();
  Input in;
  in.name = std::string(name);
  in.sketches.reserve(options_.sketch_quantiles.size());
  for (double q : options_.sketch_quantiles) in.sketches.emplace_back(q);
  inputs_.push_back(std::move(in));
  input_names_.push_back(std::string(name));
  input_index_.emplace(std::string(name), index);
  return InputId{index};
}

void Monitor::observe(InputId id, double t, double value) {
  if (!id.valid()) return;
  Input& in = inputs_[id.index];
  ++in.observations;
  in.last_value = value;
  for (P2Quantile& sketch : in.sketches) sketch.observe(value);
  for (std::size_t r : in.rule_indices) {
    RuleState& state = rule_states_[r];
    state.window.observe(t, value);
    state.ewma.observe(t, value);
    state.has_value = true;
    state.last_value = value;
  }
}

void Monitor::bind_counter(std::string_view input_name,
                           const MetricRegistry* registry, CounterId id) {
  counter_bindings_.push_back(CounterBinding{input(input_name), registry, id,
                                             0.0});
}

void Monitor::bind_series(std::string_view input_name,
                          const MetricRegistry* registry, MetricId id) {
  series_bindings_.push_back(SeriesBinding{input(input_name), registry, id,
                                           0});
}

std::size_t Monitor::bind_metrics(MetricRegistry& registry) {
  std::size_t bound = 0;
  for (const Rule& rule : rules_) {
    bool already = false;
    for (const CounterBinding& b : counter_bindings_) {
      if (input_names_[b.input.index] == rule.input) already = true;
    }
    for (const SeriesBinding& b : series_bindings_) {
      if (input_names_[b.input.index] == rule.input) already = true;
    }
    if (already) continue;
    const auto& counters = registry.counter_keys();
    if (std::find(counters.begin(), counters.end(), rule.input) !=
        counters.end()) {
      bind_counter(rule.input, &registry, registry.intern_counter(rule.input));
      ++bound;
      continue;
    }
    if (registry.find_series(rule.input) != nullptr) {
      bind_series(rule.input, &registry, registry.intern_series(rule.input));
      ++bound;
    }
  }
  return bound;
}

double Monitor::rule_value(std::size_t rule_index, double now) const {
  const Rule& rule = rules_[rule_index];
  const RuleState& state = rule_states_[rule_index];
  switch (rule.func) {
    case AggFunc::kRate: return state.window.rate(now);
    case AggFunc::kMean: return state.window.mean(now);
    case AggFunc::kMin: return state.window.min(now);
    case AggFunc::kMax: return state.window.max(now);
    case AggFunc::kEwma: return state.ewma.value();
    case AggFunc::kValue: return state.has_value ? state.last_value : kNaN;
  }
  return kNaN;
}

void Monitor::evaluate(double now) {
  // Pull bound registry metrics through their interned handles — O(1)
  // accesses, no hash probes, so the zero-lookup steady-state contract of
  // the hot loop holds with a monitor attached.
  for (CounterBinding& b : counter_bindings_) {
    const double value = b.registry->counter(b.id);
    observe(b.input, now, value - b.last);
    b.last = value;
  }
  for (SeriesBinding& b : series_bindings_) {
    const TimeSeries& s = b.registry->series(b.id);
    for (; b.next_sample < s.size(); ++b.next_sample) {
      observe(b.input, s[b.next_sample].t, s[b.next_sample].value);
    }
  }

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    AlertState& alert = states_[i];
    const double value = rule_value(i, now);
    alert.value = value;
    bool holds = false;
    switch (rule.op) {
      case CmpOp::kGt: holds = value > rule.threshold; break;
      case CmpOp::kGe: holds = value >= rule.threshold; break;
      case CmpOp::kLt: holds = value < rule.threshold; break;
      case CmpOp::kLe: holds = value <= rule.threshold; break;
    }
    if (holds) {
      if (alert.true_windows < rule.for_windows) ++alert.true_windows;
      if (!alert.firing && alert.true_windows >= rule.for_windows) {
        alert.firing = true;
        alert.raised_t = now;
        ++alert.raises;
        ++alerts_raised_;
        if (options_.journal) {
          options_.journal->append(now, EventType::kAlertRaised)
              .set("value", value)
              .set("threshold", rule.threshold)
              .set("window_s", rule.window_s)
              .set("for_windows", static_cast<double>(rule.for_windows))
              .set("rule", rule.name)
              .set("severity", std::string(severity_name(rule.severity)))
              .set("expr", rule.expression());
        }
      }
    } else {
      alert.true_windows = 0;
      if (alert.firing) {
        alert.firing = false;
        ++alert.clears;
        ++alerts_cleared_;
        if (options_.journal) {
          options_.journal->append(now, EventType::kAlertCleared)
              .set("value", value)
              .set("raised_t", alert.raised_t)
              .set("duration_s", now - alert.raised_t)
              .set("rule", rule.name)
              .set("severity", std::string(severity_name(rule.severity)));
        }
      }
    }
  }
  ++evaluations_;
}

std::size_t Monitor::firing_count() const {
  std::size_t n = 0;
  for (const AlertState& s : states_) n += s.firing ? 1 : 0;
  return n;
}

std::size_t Monitor::input_count(InputId id) const {
  return id.valid() ? inputs_[id.index].observations : 0;
}

double Monitor::input_last(InputId id) const {
  return id.valid() ? inputs_[id.index].last_value : kNaN;
}

double Monitor::input_quantile(InputId id, std::size_t k) const {
  if (!id.valid() || k >= inputs_[id.index].sketches.size()) return kNaN;
  return inputs_[id.index].sketches[k].value();
}

}  // namespace fvsst::sim::monitor
