#include "simkit/csv.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "simkit/time_series.h"

namespace fvsst::sim {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

bool write_series_csv(const std::string& path,
                      const std::vector<const TimeSeries*>& series,
                      double dt) {
  std::ofstream probe(path);
  if (!probe) return false;
  probe.close();

  CsvWriter csv(path);
  std::vector<std::string> header{"time_s"};
  double t0 = 0.0, t1 = 0.0;
  bool any = false;
  for (const auto* s : series) {
    if (!s) continue;
    header.push_back(s->name().empty() ? "series" : s->name());
    if (!s->empty()) {
      if (!any) {
        t0 = s->first_time();
        t1 = s->last_time();
        any = true;
      } else {
        t0 = std::min(t0, s->first_time());
        t1 = std::max(t1, s->last_time());
      }
    }
  }
  csv.write_row(header);
  if (!any || dt <= 0.0) return true;
  for (double t = t0; t <= t1 + dt * 0.5; t += dt) {
    std::vector<double> row{t};
    for (const auto* s : series) {
      if (!s || s->empty()) continue;
      const double tc = std::clamp(t, s->first_time(), s->last_time());
      row.push_back(s->value_at(tc));
    }
    csv.write_row(row);
  }
  return true;
}

std::string csv_output_dir() {
  const char* dir = std::getenv("FVSST_CSV_DIR");
  return dir ? std::string(dir) : std::string();
}

}  // namespace fvsst::sim
