// transport.h - Reliable session layer between the coordinator and node
// agents.
//
// The paper's cluster scheduler assumes settings eventually reach every
// node; over a lossy datagram channel "eventually" is only as good as the
// next scheduling round.  Transport upgrades that to an explicit
// guarantee: per-(coordinator, node) sessions number every settings
// message, nodes piggyback cumulative acks on their periodic counter
// summaries, and unacked settings are retransmitted — with deterministic
// exponential backoff and a per-round retransmit budget — until they are
// acked, superseded by a newer grant, or expired.  Delivery is
// at-least-once on the wire and effectively-once at the node: duplicate
// suppression plus idempotent settings application mean a retransmitted
// or fault-duplicated frame can never double-apply or roll a node back.
//
// Everything is epoch-fenced (see election.h): a deposed coordinator's
// retransmit queue drains on the first evidence of a higher epoch, so
// failover never leaves stale settings circulating.
//
// Transport also owns the channel-level fault shim for both transport
// modes.  On every unicast send it consults the FaultPlan for
// channel_loss (drop), channel_delay_spike / channel_reorder (extra
// delay), channel_corrupt (checksum damage, detected at the receiver and
// surfaced as a message_corrupt event — never silent misdelivery) and
// channel_duplicate (a second, later copy).  Fault draws use the plan's
// stateless hashing, so datagram mode with no transport faults is
// bit-identical to a run without the shim.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/channel.h"
#include "simkit/event_queue.h"
#include "simkit/fault_plan.h"

namespace fvsst::cluster {

/// Wire framing: the protocol envelope plus session-layer fields.  seq 0
/// means "unsequenced" (datagram mode, heartbeats); ack is the receiver's
/// cumulative applied sequence, piggybacked on summaries.
struct Frame {
  Envelope envelope;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint64_t checksum = 0;  ///< frame_checksum() of the fields above.
};

/// FNV-1a over the frame's protocol fields (excluding checksum itself).
/// The payload travels inside a closure and cannot be corrupted by the
/// fault shim, so the envelope fields are the whole attack surface.
std::uint64_t frame_checksum(const Frame& frame);

/// True when the frame's stamped checksum does not match its contents —
/// i.e. the fault shim damaged it in flight.
bool frame_corrupt(const Frame& frame);

enum class TransportMode {
  kDatagram,  ///< PR-8 semantics: fire-and-forget, loss is final.
  kReliable,  ///< Sequenced, acked, retransmitted, epoch-fenced.
};

/// Tuning knobs.  Zero or negative values are resolved to deterministic
/// defaults derived from the channel's latency model and the round
/// period — see Transport's constructor.
struct TransportOptions {
  TransportMode mode = TransportMode::kDatagram;
  /// Scheduling round period T (seconds); the natural retransmit
  /// timescale, since acks ride on once-per-round summaries.
  double round_period_s = 0.1;
  /// Extra delay applied to a reorder-faulted frame so it lands behind
  /// later traffic.  Default: round_period_s + 3 * latency.
  double reorder_delay_s = 0.0;
  /// Extra delay of the second copy of a duplicate-faulted frame.
  /// Default: one channel latency.
  double duplicate_delay_s = 0.0;
  /// Fallback retransmit timeout.  Fast retransmit (a summary ack that
  /// fails to cover the pending seq) is the primary recovery path; the
  /// timer only catches the case where summaries themselves stop.
  /// Default: round_period_s + 4 * (latency + jitter).
  double rto_s = 0.0;
  /// Backoff multiplier: retry k waits rto_s * backoff_base^k.
  double backoff_base = 2.0;
  /// Retransmissions per message before it expires with cause
  /// "retries".
  int max_retransmits = 5;
  /// Retransmissions allowed per round window across all nodes; excess
  /// retries wait for the next window (storm control).  Default:
  /// max(4, 2 * nodes).
  int round_retransmit_budget = 0;
  /// An ack older than the pending seq only triggers fast retransmit if
  /// the pending frame has been in flight at least this long (the ack
  /// may simply predate it).  Default: 2 * (latency + jitter).
  double min_ack_flight_s = 0.0;
  /// Period of the retransmit-timer scan.  One repeating simulation
  /// event drives all timers (exact per-message events would leak lazy
  /// cancellations); deadlines quantize to this grid identically in
  /// tick and event-driven advance modes.  Default: round_period_s / 10.
  double pump_period_s = 0.0;
};

/// Per-direction session layer over one Channel.  The daemon owns two: a
/// "down" transport (coordinator -> nodes: settings, tracked) and an "up"
/// transport (nodes -> coordinator: summaries, sequenced but untracked —
/// the next round's summary supersedes a lost one by construction).
class Transport {
 public:
  /// Owner callbacks for journalling; all optional.  `direction` is the
  /// wire direction of the affected frame ("down" or "up").
  struct Hooks {
    /// A send consumed by the channel_loss fault shim (the channel's own
    /// probabilistic loss still reports through Channel's drop handler).
    std::function<void(int node)> on_fault_drop;
    std::function<void(int node, std::uint64_t seq, int attempt)>
        on_retransmit;
    /// A tracked message gave up: `cause` is "retries" (budget of
    /// max_retransmits exhausted) or "epoch" (fenced by a newer epoch).
    std::function<void(int node, std::uint64_t seq, int attempts,
                       const char* cause)>
        on_expired;
  };

  /// `faults` may be null (no shim).  `nodes`/`coordinators` size the
  /// session tables.  In reliable mode a repeating pump event is
  /// scheduled on `sim` to drive retransmit timers; datagram mode
  /// schedules nothing.
  Transport(sim::Simulation& sim, Channel& channel,
            const sim::FaultPlan* faults, const TransportOptions& options,
            std::size_t nodes, std::size_t coordinators, const char* direction);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  bool reliable() const { return opts_.mode == TransportMode::kReliable; }
  const TransportOptions& options() const { return opts_; }
  const char* direction() const { return direction_; }

  /// Sends `envelope` (+ piggybacked `ack`) to `node` through the fault
  /// shim and channel.  In reliable mode frames to node >= 0 are
  /// sequenced; `track` additionally installs the frame in the node's
  /// pending slot for ack-or-retransmit (one slot per node — a newer
  /// tracked send supersedes the old frame, which cumulative acks make
  /// safe).  node < 0 (heartbeat broadcast) bypasses both shim and
  /// sequencing.  Returns false when the shim or channel dropped the
  /// frame (tracked frames still retransmit later).
  bool send(int node, const Envelope& envelope, std::uint64_t ack, bool track,
            std::function<void(const Frame&)> deliver);

  enum class Verdict { kDeliver, kDuplicate };

  /// Node-side receive filter for fence-admitted settings frames: adopts
  /// newer epochs, suppresses duplicate/stale seqs within an epoch.
  /// Unsequenced frames always deliver.
  Verdict receive_at_node(int node, const Frame& frame);

  /// Coordinator-side receive filter for summary frames, keyed per
  /// (coordinator, node) so primary and standby dedup independently.
  Verdict receive_at_coordinator(int coordinator, int node,
                                 const Frame& frame);

  /// Cumulative ack state the node piggybacks on its next summary: the
  /// highest settings seq applied, and the epoch it was applied under.
  std::uint64_t node_ack(int node) const;
  Epoch node_ack_epoch(int node) const;

  /// Feeds a piggybacked ack back into the send side.  Releases the
  /// node's pending frame when covered; an ack that is provably stale
  /// (older seq, same epoch, pending frame past its ack flight time)
  /// fast-retransmits without waiting for the timer.
  void on_ack(int node, Epoch epoch, std::uint64_t seq);

  /// Expires every pending frame older than `epoch` (cause "epoch").
  /// Called on evidence of a newer coordinator so a deposed leader's
  /// queue drains instead of fighting the new one.
  void fence(Epoch epoch);

  bool has_pending() const;

  std::size_t retransmits() const { return retransmits_; }
  std::size_t expired() const { return expired_; }
  std::size_t duplicates_suppressed() const { return duplicates_; }
  std::size_t fault_dropped() const { return fault_dropped_; }

 private:
  struct Pending {
    bool active = false;
    Envelope envelope;
    std::uint64_t seq = 0;
    int attempts = 0;        ///< Retransmissions performed so far.
    double sent_t = 0.0;     ///< Time of the most recent (re)send.
    double retry_t = 0.0;    ///< Next timer-driven retry deadline.
    std::function<void(const Frame&)> deliver;
  };
  struct NodeSession {
    Epoch epoch = 0;
    std::uint64_t applied_seq = 0;
  };

  /// Pushes one frame through the fault shim and channel (shared by
  /// first transmission and retransmission).  Returns false on drop.
  bool transmit(int node, const Frame& frame,
                const std::function<void(const Frame&)>& deliver);
  void pump();
  void maybe_retransmit(int node);
  void expire(int node, const char* cause);
  bool budget_allows();

  sim::Simulation& sim_;
  Channel& channel_;
  const sim::FaultPlan* faults_;
  TransportOptions opts_;
  const char* direction_;
  Hooks hooks_;

  std::vector<std::uint64_t> next_seq_;   ///< Per-node send counters.
  std::vector<Pending> pending_;          ///< Per-node retransmit slots.
  std::vector<NodeSession> node_rx_;      ///< Node-side dedup + ack state.
  /// Coordinator-side dedup: last seq seen, [coordinator][node].
  std::vector<std::vector<std::uint64_t>> coord_rx_;

  sim::EventId pump_event_ = 0;
  long budget_window_ = -1;
  int budget_used_ = 0;

  std::size_t retransmits_ = 0;
  std::size_t expired_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t fault_dropped_ = 0;
};

}  // namespace fvsst::cluster
