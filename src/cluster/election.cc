#include "cluster/election.h"

namespace fvsst::cluster {

namespace {

// Same mix as sim::FaultPlan's stateless draws: platform-independent and
// free of query-order effects.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double takeover_jitter_s(std::uint64_t seed, int coordinator, Epoch claim,
                         double max_jitter_s) {
  if (max_jitter_s <= 0.0) return 0.0;
  std::uint64_t h = splitmix64(seed ^ 0xe1ec710de1ec710dull);
  h = splitmix64(h ^ static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(coordinator)));
  h = splitmix64(h ^ claim);
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit * max_jitter_s;
}

}  // namespace fvsst::cluster
