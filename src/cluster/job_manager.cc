#include "cluster/job_manager.h"

#include <algorithm>
#include <stdexcept>

namespace fvsst::cluster {

JobManager::JobManager(sim::Simulation& sim, Cluster& cluster,
                       PlacementPolicy policy)
    : sim_(sim), cluster_(cluster), policy_(policy),
      procs_(cluster.all_procs()) {}

std::vector<std::size_t> JobManager::load_vector() {
  refresh();
  std::vector<std::size_t> load(procs_.size(), 0);
  for (const auto& job : jobs_) {
    if (job.finished_at >= 0.0) continue;
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      if (procs_[p].node == job.placed_on.node &&
          procs_[p].cpu == job.placed_on.cpu) {
        ++load[p];
        break;
      }
    }
  }
  return load;
}

ProcAddress JobManager::place() {
  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      const ProcAddress addr = procs_[rr_next_];
      rr_next_ = (rr_next_ + 1) % procs_.size();
      return addr;
    }
    case PlacementPolicy::kLeastLoaded: {
      const auto load = load_vector();
      const std::size_t best = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      return procs_[best];
    }
    case PlacementPolicy::kPackFirstFit: {
      // Consolidating placement: fill the lowest-index processor up to a
      // small multiprogramming level before spilling to the next — the
      // assignment style that leaves whole processors idle for power
      // management to harvest.
      constexpr std::size_t kJobsPerProc = 2;
      const auto load = load_vector();
      for (std::size_t p = 0; p < procs_.size(); ++p) {
        if (load[p] < kJobsPerProc) return procs_[p];
      }
      const std::size_t best = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      return procs_[best];
    }
  }
  throw std::logic_error("JobManager: unknown policy");
}

std::size_t JobManager::submit(const workload::WorkloadSpec& spec) {
  if (spec.loop) {
    throw std::invalid_argument("JobManager: batch jobs must be finite");
  }
  JobRecord record;
  record.name = spec.name;
  record.placed_on = place();
  record.submitted_at = sim_.now();
  record.job_index = cluster_.core(record.placed_on).add_workload(spec);
  jobs_.push_back(record);
  return jobs_.size() - 1;
}

void JobManager::submit_at(double when, workload::WorkloadSpec spec) {
  sim_.schedule_at(when,
                   [this, spec = std::move(spec)] { submit(spec); });
}

void JobManager::refresh() {
  for (auto& job : jobs_) {
    if (job.finished_at >= 0.0) continue;
    const double finish =
        cluster_.core(job.placed_on).job_finish_time(job.job_index);
    if (finish >= 0.0) {
      job.finished_at = finish;
      turnaround_.add(finish - job.submitted_at);
    }
  }
}

const JobManager::JobRecord& JobManager::job(std::size_t id) {
  refresh();
  return jobs_.at(id);
}

std::size_t JobManager::completed() {
  refresh();
  std::size_t done = 0;
  for (const auto& job : jobs_) {
    if (job.finished_at >= 0.0) ++done;
  }
  return done;
}

const sim::SampleSet& JobManager::turnaround_times() {
  refresh();
  return turnaround_;
}

}  // namespace fvsst::cluster
