#include "cluster/parallel_stepper.h"

namespace fvsst::cluster {

StepPool::StepPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(threads_ > 1 ? static_cast<std::size_t>(threads_ - 1) : 0);
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back(
        [this, w] { worker_main(static_cast<std::size_t>(w)); });
  }
}

StepPool::~StepPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void StepPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    n_ = n;
    fn_ = &fn;
    outstanding_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  // The caller is worker 0, processing its own fixed partition while the
  // pool covers the rest.
  const auto stride = static_cast<std::size_t>(threads_);
  for (std::size_t i = 0; i < n; i += stride) fn(i);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  fn_ = nullptr;
}

void StepPool::worker_main(std::size_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::size_t n = n_;
    const auto* fn = fn_;
    lock.unlock();
    const auto stride = static_cast<std::size_t>(threads_);
    for (std::size_t i = worker; i < n; i += stride) (*fn)(i);
    lock.lock();
    if (--outstanding_ == 0) done_cv_.notify_one();
  }
}

}  // namespace fvsst::cluster
