#include "cluster/shard.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace fvsst::cluster {

ShardMap::ShardMap(const Cluster& cluster, std::size_t shards) {
  const std::size_t nodes = cluster.node_count();
  if (nodes == 0) throw std::invalid_argument("ShardMap: empty cluster");
  if (shards < 1) shards = 1;
  if (shards > nodes) shards = nodes;

  // Prefix CPU weights: boundaries fall at the weight quantiles, so slab
  // weights differ by at most one node.
  std::vector<std::size_t> prefix(nodes + 1, 0);
  for (std::size_t n = 0; n < nodes; ++n) {
    prefix[n + 1] = prefix[n] + cluster.node(n).cpu_count();
  }
  total_cpus_ = prefix[nodes];

  node_shard_.resize(nodes);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    // Quantile target for this slab's end, rounded to the nearest weight.
    const std::size_t target =
        (2 * (s + 1) * total_cpus_ + shards) / (2 * shards);
    std::size_t end = cursor + 1;  // at least one node per shard
    while (end < nodes && prefix[end] < target) ++end;
    // Leave enough nodes for the remaining shards to get one each.
    const std::size_t max_end = nodes - (shards - 1 - s);
    if (end > max_end) end = max_end;
    if (s + 1 == shards) end = nodes;

    ShardSpan span;
    span.first_node = cursor;
    span.node_count = end - cursor;
    span.first_cpu = prefix[cursor];
    span.cpu_count = prefix[end] - prefix[cursor];
    for (std::size_t n = cursor; n < end; ++n) {
      node_shard_[n] = static_cast<std::uint32_t>(s);
    }
    spans_.push_back(span);
    cursor = end;
  }
}

std::size_t ShardMap::auto_shards(std::size_t nodes) {
  if (nodes <= 1) return 1;
  const auto s = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(nodes))));
  return s < 1 ? 1 : (s > nodes ? nodes : s);
}

Shard::Shard(Cluster& cluster, ShardSpan span) : span_(span) {
  cores_.reserve(span.cpu_count);
  core_node_.reserve(span.cpu_count);
  core_table_.reserve(span.cpu_count);
  for (std::size_t n = span.first_node; n < span.end_node(); ++n) {
    Node& node = cluster.node(n);
    for (std::size_t c = 0; c < node.cpu_count(); ++c) {
      cores_.push_back(&node.core(c));
      core_node_.push_back(static_cast<std::uint32_t>(n));
      core_table_.push_back(&node.machine().freq_table);
    }
  }
  const std::size_t n = cores_.size();
  synced_until_.assign(n, -std::numeric_limits<double>::infinity());
  next_interesting_.assign(n, std::numeric_limits<double>::infinity());
  frequency_hz_.assign(n, 0.0);
  next_interesting_min_ = std::numeric_limits<double>::infinity();
}

void Shard::advance_to(double t, const unsigned char* node_skip) {
  const std::size_t n = cores_.size();
  const unsigned char* skip = nullptr;
  std::size_t flagged = 0;
  if (node_skip) {
    skip_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      skip_scratch_[i] = node_skip[core_node_[i]];
      flagged += skip_scratch_[i] ? 1 : 0;
    }
    skip = skip_scratch_.data();
  }
  cores_advanced_ += cpu::Core::advance_batch(
      cores_.data(), n, t, skip, synced_until_.data(),
      next_interesting_.data(), frequency_hz_.data());
  cores_skipped_ += flagged;
  ++sweeps_;
  double soonest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (next_interesting_[i] < soonest) soonest = next_interesting_[i];
  }
  next_interesting_min_ = soonest;
}

double Shard::cached_power_w() const {
  double total = 0.0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (frequency_hz_[i] <= 0.0) continue;  // before the first sweep
    total += core_table_[i]->power(frequency_hz_[i]);
  }
  return total;
}

void Shard::enqueue(std::function<void()> action) {
  queue_.push_back(std::move(action));
}

void Shard::drain() {
  // Actions may enqueue follow-ups; drain by index so growth is safe.
  for (std::size_t i = 0; i < queue_.size(); ++i) queue_[i]();
  queue_.clear();
}

std::vector<Shard> make_shards(Cluster& cluster, const ShardMap& map) {
  std::vector<Shard> shards;
  shards.reserve(map.size());
  for (const ShardSpan& span : map.spans()) {
    shards.emplace_back(cluster, span);
  }
  return shards;
}

}  // namespace fvsst::cluster
