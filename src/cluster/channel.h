// channel.h - Latency-modelled messaging between node agents and the
// global scheduler.
//
// In the cluster deployment the paper envisions, per-node agents ship
// counter summaries to a global scheduler and receive frequency settings
// back; the scheduling interval T is chosen large "to help stabilize the
// scheduler and amortize the overhead of ... the inter-processor
// communication required".  Channel models that communication as a fixed
// one-way latency plus optional jitter, so the response-time experiments
// can measure time-to-compliance against the supply's cascade deadline.
#pragma once

#include <cstdint>
#include <functional>

#include "simkit/event_queue.h"
#include "simkit/rng.h"

namespace fvsst::cluster {

/// Coordinator epoch/term number.  Stamped on every settings and heartbeat
/// message so receivers can fence off traffic from a deposed coordinator.
using Epoch = std::uint64_t;

/// Protocol metadata carried next to a message's closure payload: the
/// sending coordinator's epoch and identity.
struct Envelope {
  Epoch epoch = 0;
  int sender = -1;  ///< Coordinator index (0 = primary, 1 = standby).
};

/// One-way message channel with latency, jitter and loss.
class Channel {
 public:
  /// `latency_s` is the mean one-way delay; `jitter_s` adds a uniform
  /// [0, jitter_s) component per message.
  Channel(sim::Simulation& sim, double latency_s, double jitter_s = 0.0,
          sim::Rng rng = sim::Rng(0x7a3d));

  /// Delivers `handler` after the channel delay.  The payload is carried
  /// inside the closure; this keeps the channel type-agnostic.  Lost
  /// messages (see set_loss_probability) are dropped as on a real
  /// unreliable datagram path; returns false for a drop so the sender can
  /// account the loss instead of inferring it.
  bool send(std::function<void()> handler);

  /// As send(), with `extra_delay_s` (>= 0) added on top of the
  /// latency+jitter draw — the transport layer's hook for fault-injected
  /// delay spikes and reordering.  Consumes exactly the randomness of
  /// send(), so a zero extra delay is indistinguishable from it.
  bool send_delayed(double extra_delay_s, std::function<void()> handler);

  /// Envelope-stamped variant: delivers `handler(envelope)` after the same
  /// delay model.  Consumes exactly the randomness of the plain overload,
  /// so wiring envelopes through an existing protocol does not perturb its
  /// loss/jitter stream.
  bool send(const Envelope& envelope,
            std::function<void(const Envelope&)> handler);

  /// Fraction of messages dropped, in [0, 1).  The periodic scheduling
  /// rounds make the cluster protocol naturally loss-tolerant; tests and
  /// the robustness ablation exercise that.  Throws std::invalid_argument
  /// for NaN or out-of-range values (NaN would otherwise slip through a
  /// range comparison and silently disable loss).
  void set_loss_probability(double p);
  double loss_probability() const { return loss_probability_; }

  /// Invoked synchronously for every dropped message, before send()
  /// returns false — the owner's hook for counting and journalling losses.
  ///
  /// Reentrancy contract: the handler runs *after* the drop has been fully
  /// accounted (dropped() already includes it and the loss draw is
  /// complete), so a handler that itself calls send() — e.g. to emit a
  /// loss report — is safe: the nested send is an ordinary message that
  /// draws the next values from the RNG stream and is counted like any
  /// other, and no counter or RNG state is left half-updated.  A handler
  /// whose nested send is itself dropped recurses; guard against unbounded
  /// recursion in the handler, not here.
  void set_drop_handler(std::function<void()> handler);

  double latency_s() const { return latency_s_; }
  double jitter_s() const { return jitter_s_; }

  /// Messages delivered so far.
  std::size_t delivered() const { return delivered_; }

  /// Messages dropped so far.
  std::size_t dropped() const { return dropped_; }

 private:
  sim::Simulation& sim_;
  double latency_s_;
  double jitter_s_;
  double loss_probability_ = 0.0;
  std::function<void()> drop_handler_;
  sim::Rng rng_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace fvsst::cluster
