// parallel_stepper.h - Fixed-partition worker pool for the deterministic
// parallel node stepper.
//
// The cluster daemon's per-tick hot work is advancing every node's lazily
// synchronised core models up to the tick time.  Those advances touch only
// per-core state — each core owns its RNG stream, sampling-grid cursor,
// counter history and value-copied workload runners — so distinct nodes
// can advance concurrently without changing a single bit of the result.
// This holds in event-driven mode too: a pre-synced core subdivides the
// skipped span at its own sampling grid (cpu::Core::set_sampling_grid),
// reproducing exactly the sync boundaries the tick-driven serial run would
// have used, entirely within per-core state.  Everything order-sensitive
// (journal emission, channel sends, coordinator rounds, history replay
// into the samplers) stays on the simulation thread, run in node order
// after the pool joins.
//
// StepPool implements the parallel half.  run(n, fn) executes fn(i) for
// every i in [0, n); worker w owns the fixed partition { i : i % threads
// == w }, so each index is always processed by the same worker regardless
// of timing — the assignment is part of the contract, not a scheduling
// accident — and the calling thread participates as worker 0.  run()
// blocks until every index has completed; the mutex/condvar handshake also
// provides the happens-before edges that let workers read state the caller
// wrote before the call (the simulation clock) and the caller read state
// the workers wrote (the advanced cores).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fvsst::cluster {

class StepPool {
 public:
  /// `threads` <= 1 creates no workers; run() then executes inline.
  explicit StepPool(int threads);
  ~StepPool();
  StepPool(const StepPool&) = delete;
  StepPool& operator=(const StepPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n) across the pool and blocks until all
  /// are done.  fn must be callable concurrently for distinct i and must
  /// not throw.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_main(std::size_t worker);

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< Bumped once per run() dispatch.
  std::size_t n_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  int outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace fvsst::cluster
