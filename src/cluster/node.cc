#include "cluster/node.h"

namespace fvsst::cluster {

Node::Node(sim::Simulation& sim, std::string name,
           const mach::MachineConfig& mc, sim::Rng& rng, const Options& opts)
    : name_(std::move(name)), machine_(mc) {
  cores_.reserve(mc.num_cpus);
  for (std::size_t i = 0; i < mc.num_cpus; ++i) {
    cpu::Core::Config cfg;
    cfg.name = name_ + "/cpu" + std::to_string(i);
    cfg.latencies = mc.latencies;
    cfg.max_hz = mc.nominal_hz;
    cfg.idle_ipc = mc.idle_ipc;
    cfg.idles_by_halting = mc.idles_by_halting;
    cfg.scaling_mode = opts.scaling_mode;
    cfg.counter_noise_sigma = opts.counter_noise_sigma;
    cfg.execution_noise_sigma = opts.execution_noise_sigma;
    cfg.quantum_s = opts.quantum_s;
    cores_.push_back(std::make_unique<cpu::Core>(sim, cfg, rng.fork()));
  }
}

double Node::cpu_power_w() const {
  double total = 0.0;
  for (const auto& core : cores_) {
    total += machine_.freq_table.power(core->frequency_hz());
  }
  return total;
}

double Node::total_power_w() const {
  return cpu_power_w() + machine_.non_cpu_power_w;
}

void Node::reset_to_max_frequency() {
  for (auto& core : cores_) {
    core->set_frequency(machine_.nominal_hz);
  }
}

}  // namespace fvsst::cluster
