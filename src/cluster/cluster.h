// cluster.h - A collection of nodes under one global power budget.
//
// The paper's power limit "is a global one" spanning every processor of
// every node.  Cluster flattens (node, cpu) pairs for the scheduler and
// aggregates power for the sensors and the cascade monitor.  A single SMP
// server is simply a one-node cluster.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "cluster/node.h"

namespace fvsst::cluster {

/// Addressing a processor within the cluster.
struct ProcAddress {
  std::size_t node = 0;
  std::size_t cpu = 0;
};

/// A set of nodes treated as one scheduling domain.
class Cluster {
 public:
  explicit Cluster(std::vector<std::unique_ptr<Node>> nodes);

  /// Builds `count` identical nodes from one machine description.
  static Cluster homogeneous(sim::Simulation& sim, const mach::MachineConfig&,
                             std::size_t count, sim::Rng& rng,
                             const Node::Options& opts = NodeOptions());

  /// Builds one node per machine description (mixed generations, derated
  /// bins — the heterogeneous case of paper Sec. 5).
  static Cluster heterogeneous(sim::Simulation& sim,
                               const std::vector<mach::MachineConfig>& configs,
                               sim::Rng& rng,
                               const Node::Options& opts = NodeOptions());

  std::size_t node_count() const { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_.at(i); }
  const Node& node(std::size_t i) const { return *nodes_.at(i); }

  /// Total number of processors across nodes.
  std::size_t cpu_count() const;

  /// Flattened processor addresses in (node-major) order.
  std::vector<ProcAddress> all_procs() const;

  cpu::Core& core(const ProcAddress& addr) {
    return nodes_.at(addr.node)->core(addr.cpu);
  }

  /// Aggregate CPU power of the whole cluster (the quantity the paper's
  /// budget constrains).
  double cpu_power_w() const;

  /// CPU power plus every node's non-CPU overhead.
  double total_power_w() const;

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fvsst::cluster
