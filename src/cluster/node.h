// node.h - One machine (SMP node) built from a MachineConfig.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "mach/machine_config.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"

namespace fvsst::cluster {

/// An SMP node: a set of cores sharing one machine description.  Node power
/// is the sum of per-core peak power at each core's *requested* operating
/// point (the paper's upper-bound convention: "this calculation ignores
/// clock gating, but it provides an upper bound on power") plus the
/// frequency-independent non-CPU power.
/// Per-node core construction options.
struct NodeOptions {
  cpu::ScalingMode scaling_mode = cpu::ScalingMode::kIdealDvfs;
  double counter_noise_sigma = 0.01;
  double execution_noise_sigma = 0.005;
  double quantum_s = 0.010;
};

class Node {
 public:
  using Options = NodeOptions;

  Node(sim::Simulation& sim, std::string name, const mach::MachineConfig& mc,
       sim::Rng& rng, const Options& opts = NodeOptions());

  const std::string& name() const { return name_; }
  const mach::MachineConfig& machine() const { return machine_; }

  std::size_t cpu_count() const { return cores_.size(); }
  cpu::Core& core(std::size_t i) { return *cores_.at(i); }
  const cpu::Core& core(std::size_t i) const { return *cores_.at(i); }

  /// Aggregate CPU power at the currently requested operating points.
  double cpu_power_w() const;

  /// CPU power plus the node's frequency-independent overhead.
  double total_power_w() const;

  /// Sets every core to the machine's maximum frequency.
  void reset_to_max_frequency();

 private:
  std::string name_;
  mach::MachineConfig machine_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
};

}  // namespace fvsst::cluster
