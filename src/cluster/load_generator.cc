#include "cluster/load_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fvsst::cluster {

LoadGenerator::LoadGenerator(sim::Simulation& sim, Cluster& cluster,
                             std::vector<ProcAddress> targets,
                             Options options, sim::Rng rng)
    : sim_(sim),
      cluster_(cluster),
      targets_(std::move(targets)),
      options_(std::move(options)),
      rng_(rng) {
  if (targets_.empty()) {
    throw std::invalid_argument("LoadGenerator: no target CPUs");
  }
  if (options_.request.phases.empty()) {
    throw std::invalid_argument("LoadGenerator: empty request template");
  }
  if (options_.base_rate_hz <= 0.0) {
    throw std::invalid_argument("LoadGenerator: rate must be positive");
  }
  options_.request.loop = false;  // requests are finite by definition
  if (options_.closed_users > 0) {
    if (options_.think_time_s <= 0.0) {
      throw std::invalid_argument("LoadGenerator: think time must be > 0");
    }
    for (std::size_t u = 0; u < options_.closed_users; ++u) {
      // Stagger the first submissions across one think time.
      sim_.schedule_after(rng_.exponential(1.0 / options_.think_time_s),
                          [this, alive = alive_] {
                            if (*alive) start_user_cycle();
                          });
    }
  } else {
    schedule_next();
  }
}

void LoadGenerator::start_user_cycle() {
  const std::size_t index = dispatch_one();
  watch_user_completion(index);
}

void LoadGenerator::watch_user_completion(std::size_t arrival_index) {
  // Poll cheaply for this request's completion, then think and resubmit.
  sim_.schedule_after(1e-3, [this, arrival_index, alive = alive_] {
    if (!*alive) return;
    const auto& a = arrivals_[arrival_index];
    if (cluster_.core(a.target).job_finish_time(a.job_index) >= 0.0) {
      sim_.schedule_after(rng_.exponential(1.0 / options_.think_time_s),
                          [this, alive] {
                            if (*alive) start_user_cycle();
                          });
    } else {
      watch_user_completion(arrival_index);
    }
  });
}

LoadGenerator::~LoadGenerator() {
  *alive_ = false;
  sim_.cancel(pending_event_);
  if (batch_timeout_event_ != 0) sim_.cancel(batch_timeout_event_);
}

void LoadGenerator::schedule_next() {
  // Thinning-free approximation: draw the gap from the *current* rate.
  // Adequate for modulations that vary slowly relative to the gap.
  const double mod =
      options_.modulation ? options_.modulation(sim_.now()) : 1.0;
  const double rate = std::max(options_.base_rate_hz * mod, 1e-6);
  const double gap = rng_.exponential(rate);
  pending_event_ = sim_.schedule_after(gap, [this] {
    on_arrival();
    schedule_next();
  });
}

void LoadGenerator::on_arrival() {
  if (options_.batch_size <= 1) {
    held_arrival_times_.push_back(sim_.now());
    flush_batch();
    return;
  }
  held_arrival_times_.push_back(sim_.now());
  if (held_arrival_times_.size() == 1) {
    batch_timeout_event_ = sim_.schedule_after(options_.batch_timeout_s,
                                               [this] { flush_batch(); });
  }
  if (held_arrival_times_.size() >= options_.batch_size) {
    sim_.cancel(batch_timeout_event_);
    batch_timeout_event_ = 0;
    flush_batch();
  }
}

void LoadGenerator::flush_batch() {
  if (held_arrival_times_.empty()) return;
  ++batches_;
  for (const double at : held_arrival_times_) {
    dispatch_one();
    arrivals_.back().at_s = at;  // latency counts from true arrival
  }
  held_arrival_times_.clear();
  batch_timeout_event_ = 0;
}

std::size_t LoadGenerator::dispatch_one() {
  const std::size_t ordinal = arrivals_.size();
  const std::size_t slot = options_.placement
                               ? options_.placement(ordinal) % targets_.size()
                               : ordinal % targets_.size();
  Arrival arrival;
  arrival.target = targets_[slot];
  arrival.at_s = sim_.now();
  arrival.job_index =
      cluster_.core(arrival.target).add_workload(options_.request);
  arrivals_.push_back(arrival);
  return arrivals_.size() - 1;
}

void LoadGenerator::harvest() {
  for (auto& a : arrivals_) {
    if (a.harvested) continue;
    const double finish = cluster_.core(a.target).job_finish_time(a.job_index);
    if (finish >= 0.0) {
      a.harvested = true;
      ++completed_;
      response_times_.add(finish - a.at_s);
    }
  }
}

const sim::SampleSet& LoadGenerator::response_times() {
  harvest();
  return response_times_;
}

std::function<double(double)> diurnal_modulation(double low, double high,
                                                 double period_s) {
  return [low, high, period_s](double t) {
    const double phase = 2.0 * M_PI * t / period_s;
    // Trough at t = 0, peak at half period.
    return low + (high - low) * 0.5 * (1.0 - std::cos(phase));
  };
}

}  // namespace fvsst::cluster
