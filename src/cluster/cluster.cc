#include "cluster/cluster.h"

#include <stdexcept>

namespace fvsst::cluster {

Cluster::Cluster(std::vector<std::unique_ptr<Node>> nodes)
    : nodes_(std::move(nodes)) {
  if (nodes_.empty()) {
    throw std::invalid_argument("Cluster: no nodes");
  }
}

Cluster Cluster::homogeneous(sim::Simulation& sim,
                             const mach::MachineConfig& mc, std::size_t count,
                             sim::Rng& rng, const Node::Options& opts) {
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes.push_back(std::make_unique<Node>(
        sim, "node" + std::to_string(i), mc, rng, opts));
  }
  return Cluster(std::move(nodes));
}

Cluster Cluster::heterogeneous(
    sim::Simulation& sim, const std::vector<mach::MachineConfig>& configs,
    sim::Rng& rng, const Node::Options& opts) {
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    nodes.push_back(std::make_unique<Node>(
        sim, "node" + std::to_string(i), configs[i], rng, opts));
  }
  return Cluster(std::move(nodes));
}

std::size_t Cluster::cpu_count() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) total += n->cpu_count();
  return total;
}

std::vector<ProcAddress> Cluster::all_procs() const {
  std::vector<ProcAddress> out;
  out.reserve(cpu_count());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (std::size_t c = 0; c < nodes_[n]->cpu_count(); ++c) {
      out.push_back({n, c});
    }
  }
  return out;
}

double Cluster::cpu_power_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->cpu_power_w();
  return total;
}

double Cluster::total_power_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->total_power_w();
  return total;
}

}  // namespace fvsst::cluster
