// job_manager.h - Batch job submission and placement.
//
// The paper deliberately leaves work placement to "the operating system or
// cluster management software" and only schedules frequencies underneath
// it (Sec. 5: "there is nothing in the frequency and voltage scheduler
// that attempts to balance the system").  JobManager is that management
// software: a batch queue that places submitted jobs on processors
// according to a pluggable policy and tracks their lifetimes, so benches
// can study how placement quality interacts with frequency scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "simkit/event_queue.h"
#include "simkit/stats.h"
#include "workload/phase.h"

namespace fvsst::cluster {

/// Placement policies for arriving jobs.
enum class PlacementPolicy {
  kRoundRobin,     ///< Cycle through processors.
  kLeastLoaded,    ///< Fewest unfinished jobs (ties: lowest index).
  kPackFirstFit,   ///< Fill processor 0 first, then 1, ... (consolidating).
};

/// Batch-queue manager over a cluster.
class JobManager {
 public:
  struct JobRecord {
    std::string name;
    ProcAddress placed_on;
    std::size_t job_index = 0;   ///< Index within the core's run queue.
    double submitted_at = 0.0;
    double finished_at = -1.0;   ///< Negative while running.
  };

  JobManager(sim::Simulation& sim, Cluster& cluster,
             PlacementPolicy policy = PlacementPolicy::kLeastLoaded);

  /// Places a job now.  Returns its JobManager id.
  std::size_t submit(const workload::WorkloadSpec& spec);

  /// Schedules a job submission at absolute time `when`.
  void submit_at(double when, workload::WorkloadSpec spec);

  /// Refreshes completion states; returns the record.
  const JobRecord& job(std::size_t id);

  std::size_t submitted() const { return jobs_.size(); }
  std::size_t completed();

  /// Turnaround times (submit to finish) of completed jobs.
  const sim::SampleSet& turnaround_times();

  /// Unfinished-job count per flattened processor (the load the
  /// kLeastLoaded policy balances).
  std::vector<std::size_t> load_vector();

  PlacementPolicy policy() const { return policy_; }

 private:
  ProcAddress place();
  void refresh();

  sim::Simulation& sim_;
  Cluster& cluster_;
  PlacementPolicy policy_;
  std::vector<ProcAddress> procs_;
  std::size_t rr_next_ = 0;
  std::vector<JobRecord> jobs_;
  sim::SampleSet turnaround_;
};

}  // namespace fvsst::cluster
