// election.h - Epoch fencing and heartbeat-timeout election for the
// cluster coordinator.
//
// The paper's cluster design routes every node's summaries through one
// global scheduler — the exact component whose loss matters most during
// the supply-failure scenario the paper is built around.  This module is
// the small, self-contained half of making that coordinator survivable:
//
//   EpochFence       the receiver-side guard.  Every settings/heartbeat
//                    message carries the sender's epoch (cluster::Epoch);
//                    a fence admits only epochs >= the highest it has
//                    seen, so a deposed coordinator's stale grants can
//                    never over-commit the power budget (no split-brain
//                    over-grant).
//   FailureDetector  a lease clock: leadership is presumed alive while
//                    heartbeats keep arriving, and expires after a fixed
//                    silence.
//   claim_epoch      the epoch a candidate announces when it takes over.
//                    Claims are unique per coordinator by construction
//                    (max_seen + 1 + id), so two candidates electing
//                    themselves in the same instant still produce
//                    distinct, totally ordered epochs.
//   takeover_jitter  a deterministic, seeded election delay spread so
//                    concurrent candidates stand down for each other in
//                    every rerun of the same seed (simulations must stay
//                    reproducible; there is no wall-clock randomness).
#pragma once

#include <cstdint>

#include "cluster/channel.h"

namespace fvsst::cluster {

/// Receiver-side epoch guard.  Starts below any real epoch so the first
/// message always admits.
class EpochFence {
 public:
  /// Admits `epoch` when it is not older than the newest epoch seen,
  /// adopting it as the new fence; returns false (reject) for messages
  /// from a deposed coordinator.
  bool admit(Epoch epoch) {
    if (epoch < current_) return false;
    current_ = epoch;
    return true;
  }

  Epoch current() const { return current_; }

 private:
  Epoch current_ = 0;
};

/// Heartbeat lease clock: tracks the last time the monitored party was
/// heard from and expires after `timeout_s` of silence.
class FailureDetector {
 public:
  explicit FailureDetector(double timeout_s, double start_time = 0.0)
      : timeout_s_(timeout_s), last_heard_(start_time) {}

  void heard(double now) { last_heard_ = now; }
  double silent_for(double now) const { return now - last_heard_; }
  bool expired(double now) const { return silent_for(now) > timeout_s_; }
  double timeout_s() const { return timeout_s_; }
  double last_heard() const { return last_heard_; }

 private:
  double timeout_s_;
  double last_heard_;
};

/// The epoch a candidate coordinator claims at election: strictly above
/// everything it has seen, and unique per coordinator id even when two
/// candidates claim simultaneously from the same `max_seen`.
inline Epoch claim_epoch(Epoch max_seen, int coordinator) {
  return max_seen + 1 + static_cast<Epoch>(coordinator);
}

/// Deterministic election-delay jitter in [0, max_jitter_s): hashed from
/// (seed, coordinator, claim), so concurrent candidates spread out
/// identically on every rerun of the same seed.
double takeover_jitter_s(std::uint64_t seed, int coordinator, Epoch claim,
                         double max_jitter_s);

}  // namespace fvsst::cluster
