#include "cluster/channel.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace fvsst::cluster {

Channel::Channel(sim::Simulation& sim, double latency_s, double jitter_s,
                 sim::Rng rng)
    : sim_(sim), latency_s_(latency_s), jitter_s_(jitter_s), rng_(rng) {
  if (latency_s < 0.0 || jitter_s < 0.0) {
    throw std::invalid_argument("Channel: negative latency/jitter");
  }
}

void Channel::set_loss_probability(double p) {
  // The negated comparison also rejects NaN, which `p < 0.0 || p >= 1.0`
  // would silently wave through (every comparison with NaN is false).
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument(
        "Channel: loss probability must be in [0, 1), got " +
        std::to_string(p));
  }
  loss_probability_ = p;
}

void Channel::set_drop_handler(std::function<void()> handler) {
  drop_handler_ = std::move(handler);
}

bool Channel::send(const Envelope& envelope,
                   std::function<void(const Envelope&)> handler) {
  return send([envelope, h = std::move(handler)] { h(envelope); });
}

bool Channel::send(std::function<void()> handler) {
  return send_delayed(0.0, std::move(handler));
}

bool Channel::send_delayed(double extra_delay_s,
                           std::function<void()> handler) {
  if (!(extra_delay_s >= 0.0)) {
    throw std::invalid_argument("Channel: negative extra delay");
  }
  if (loss_probability_ > 0.0 && rng_.bernoulli(loss_probability_)) {
    // The drop is fully accounted (counter bumped, loss draw consumed)
    // before the handler runs, so a handler that reenters send() sees a
    // consistent channel and simply consumes the next RNG draws.
    ++dropped_;
    if (drop_handler_) drop_handler_();
    return false;
  }
  const double delay = extra_delay_s + latency_s_ +
                       (jitter_s_ > 0.0 ? rng_.uniform(0.0, jitter_s_) : 0.0);
  sim_.schedule_after(delay, [this, h = std::move(handler)] {
    ++delivered_;
    h();
  });
  return true;
}

}  // namespace fvsst::cluster
