// load_generator.h - Open-loop request load for server experiments.
//
// The paper's domain is "server farm and cluster sites"; its related work
// (Elnozahy et al.) manages web-server power against fluctuating demand.
// LoadGenerator produces that demand: requests arrive as a Poisson process
// whose rate can be modulated over time (diurnal load), each request is a
// finite job executed by a core, and per-request response times (queueing
// + service) are collected — so benches can study the latency cost of a
// power cap under each scheduling policy.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"
#include "simkit/stats.h"
#include "workload/phase.h"

namespace fvsst::cluster {

/// Poisson request generator with pluggable rate and placement.
class LoadGenerator {
 public:
  struct Options {
    /// Request template: executed once per arrival (loop flag is ignored).
    workload::WorkloadSpec request;
    /// Mean arrivals per second at modulation 1.0.
    double base_rate_hz = 100.0;
    /// Rate modulation over time (e.g. a diurnal curve); default constant 1.
    std::function<double(double t)> modulation;
    /// Placement: index of the target CPU among `targets`; default
    /// round-robin.  Receives the arrival ordinal.
    std::function<std::size_t(std::size_t arrival)> placement;
    /// Request batching (Elnozahy et al., the paper's related work):
    /// arrivals are held and dispatched together once `batch_size`
    /// accumulate or `batch_timeout_s` elapses since the first held
    /// request.  Lets processors idle in longer stretches during low
    /// demand, at a bounded latency cost.  batch_size <= 1 disables.
    std::size_t batch_size = 1;
    double batch_timeout_s = 0.010;
    /// Closed-loop mode: instead of an open Poisson stream, a fixed
    /// population of `closed_users` virtual users each submits a request,
    /// waits for its completion, thinks for an exponential time with mean
    /// `think_time_s`, and repeats.  0 keeps the open-loop behaviour.
    /// Closed loops self-throttle under slow service — the realistic model
    /// for interactive clients.  base_rate_hz/modulation are ignored.
    std::size_t closed_users = 0;
    double think_time_s = 0.1;
  };

  /// Requests are dispatched onto `targets` (addresses into `cluster`).
  LoadGenerator(sim::Simulation& sim, Cluster& cluster,
                std::vector<ProcAddress> targets, Options options,
                sim::Rng rng = sim::Rng(0x10ad));
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Requests dispatched so far.
  std::size_t arrivals() const { return arrivals_.size(); }

  /// Requests completed so far (harvests outstanding completions first).
  std::size_t completions() {
    harvest();
    return completed_;
  }

  /// Response times (arrival to completion, seconds) of completed
  /// requests.  Call after the run; harvests outstanding completions.
  const sim::SampleSet& response_times();

  /// Batches flushed so far (equals arrivals when batching is disabled).
  std::size_t batches_dispatched() const { return batches_; }

 private:
  struct Arrival {
    ProcAddress target;
    std::size_t job_index = 0;
    double at_s = 0.0;
    bool harvested = false;
  };

  void schedule_next();
  void on_arrival();
  std::size_t dispatch_one();
  void flush_batch();
  void harvest();
  void start_user_cycle();
  void watch_user_completion(std::size_t arrival_index);

  sim::Simulation& sim_;
  Cluster& cluster_;
  std::vector<ProcAddress> targets_;
  Options options_;
  sim::Rng rng_;
  sim::EventId pending_event_ = 0;
  /// Closed-loop callbacks are one-shot chains that can outlive the
  /// generator in the event queue; they check this token and become
  /// no-ops once the generator is destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<Arrival> arrivals_;
  std::size_t completed_ = 0;
  sim::SampleSet response_times_;
  std::vector<double> held_arrival_times_;  ///< The batch being formed.
  sim::EventId batch_timeout_event_ = 0;
  std::size_t batches_ = 0;
};

/// A diurnal modulation curve: sinusoid between `low` and `high` with the
/// given period (default 24 "hours" compressed into `period_s`).
std::function<double(double)> diurnal_modulation(double low, double high,
                                                 double period_s);

}  // namespace fvsst::cluster
