#include "cluster/transport.h"

#include <algorithm>

namespace fvsst::cluster {
namespace {

// A frame damaged by the corrupt fault flips checksum bits with this
// nonzero mask, so the damage is always detectable (XOR with zero would
// be a no-op corruption).
constexpr std::uint64_t kCorruptMask = 0x5a5a5a5a5a5a5a5aull;

}  // namespace

std::uint64_t frame_checksum(const Frame& frame) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;  // FNV-1a prime
    }
  };
  mix(frame.envelope.epoch);
  mix(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(frame.envelope.sender)));
  mix(frame.seq);
  mix(frame.ack);
  return h;
}

bool frame_corrupt(const Frame& frame) {
  return frame.checksum != frame_checksum(frame);
}

Transport::Transport(sim::Simulation& sim, Channel& channel,
                     const sim::FaultPlan* faults,
                     const TransportOptions& options, std::size_t nodes,
                     std::size_t coordinators, const char* direction)
    : sim_(sim),
      channel_(channel),
      faults_(faults),
      opts_(options),
      direction_(direction),
      next_seq_(nodes, 0),
      pending_(nodes),
      node_rx_(nodes),
      coord_rx_(coordinators, std::vector<std::uint64_t>(nodes, 0)) {
  const double hop = channel_.latency_s() + channel_.jitter_s();
  if (opts_.round_period_s <= 0.0) opts_.round_period_s = 0.1;
  if (opts_.reorder_delay_s <= 0.0) {
    opts_.reorder_delay_s = opts_.round_period_s + 3.0 * channel_.latency_s();
  }
  if (opts_.duplicate_delay_s <= 0.0) {
    opts_.duplicate_delay_s = std::max(channel_.latency_s(), 1e-6);
  }
  if (opts_.rto_s <= 0.0) opts_.rto_s = opts_.round_period_s + 4.0 * hop;
  if (opts_.min_ack_flight_s <= 0.0) opts_.min_ack_flight_s = 2.0 * hop;
  if (opts_.round_retransmit_budget <= 0) {
    opts_.round_retransmit_budget = std::max(4, 2 * static_cast<int>(nodes));
  }
  if (opts_.pump_period_s <= 0.0) {
    opts_.pump_period_s = opts_.round_period_s / 10.0;
  }
  if (opts_.mode == TransportMode::kReliable) {
    pump_event_ = sim_.schedule_every(opts_.pump_period_s, [this] { pump(); });
  }
}

Transport::~Transport() {
  if (pump_event_ != 0) sim_.cancel(pump_event_);
}

bool Transport::send(int node, const Envelope& envelope, std::uint64_t ack,
                     bool track, std::function<void(const Frame&)> deliver) {
  Frame frame;
  frame.envelope = envelope;
  frame.ack = ack;
  if (node < 0) {
    // Heartbeat broadcast: no per-node session and no fault shim — a
    // node-targeted fault window (target -1 matches every query) must not
    // be able to damage cluster-wide liveness signalling.
    Frame wire = frame;
    wire.checksum = frame_checksum(wire);
    return channel_.send([deliver = std::move(deliver), wire] {
      deliver(wire);
    });
  }
  if (reliable()) {
    frame.seq = ++next_seq_[static_cast<std::size_t>(node)];
    if (track) {
      Pending& p = pending_[static_cast<std::size_t>(node)];
      // One slot per node: a newer tracked frame supersedes the old one
      // (cumulative acks make the old frame's fate irrelevant).  A frame
      // from a deposed epoch must not clobber a fresher leader's slot —
      // it goes out untracked and the node's fence rejects it anyway.
      if (!p.active || envelope.epoch >= p.envelope.epoch) {
        p.active = true;
        p.envelope = envelope;
        p.seq = frame.seq;
        p.attempts = 0;
        p.sent_t = sim_.now();
        p.retry_t = sim_.now() + opts_.rto_s;
        p.deliver = deliver;
      }
    }
  }
  return transmit(node, frame, deliver);
}

bool Transport::transmit(int node, const Frame& frame,
                         const std::function<void(const Frame&)>& deliver) {
  Frame wire = frame;
  wire.checksum = frame_checksum(wire);
  if (faults_ == nullptr) {
    return channel_.send_delayed(0.0, [deliver, wire] { deliver(wire); });
  }
  const double now = sim_.now();
  using sim::FaultKind;
  if (const auto* loss = faults_->active(FaultKind::kChannelLoss, node, now)) {
    if (faults_->chance(FaultKind::kChannelLoss, node, now, loss->value)) {
      ++fault_dropped_;
      if (hooks_.on_fault_drop) hooks_.on_fault_drop(node);
      return false;
    }
  }
  double extra = 0.0;
  if (const auto* spike =
          faults_->active(FaultKind::kChannelDelaySpike, node, now)) {
    extra += spike->value;
  }
  if (const auto* reorder =
          faults_->active(FaultKind::kChannelReorder, node, now)) {
    if (faults_->chance(FaultKind::kChannelReorder, node, now,
                        reorder->value)) {
      extra += opts_.reorder_delay_s;
    }
  }
  if (const auto* corrupt =
          faults_->active(FaultKind::kChannelCorrupt, node, now)) {
    if (faults_->chance(FaultKind::kChannelCorrupt, node, now,
                        corrupt->value)) {
      wire.checksum ^= kCorruptMask;
    }
  }
  const bool sent =
      channel_.send_delayed(extra, [deliver, wire] { deliver(wire); });
  if (const auto* dup =
          faults_->active(FaultKind::kChannelDuplicate, node, now)) {
    if (faults_->chance(FaultKind::kChannelDuplicate, node, now, dup->value)) {
      channel_.send_delayed(extra + opts_.duplicate_delay_s,
                            [deliver, wire] { deliver(wire); });
    }
  }
  return sent;
}

Transport::Verdict Transport::receive_at_node(int node, const Frame& frame) {
  if (frame.seq == 0 || node < 0 ||
      node >= static_cast<int>(node_rx_.size())) {
    return Verdict::kDeliver;
  }
  NodeSession& rx = node_rx_[static_cast<std::size_t>(node)];
  if (frame.envelope.epoch > rx.epoch) {
    rx.epoch = frame.envelope.epoch;
    rx.applied_seq = frame.seq;
    return Verdict::kDeliver;
  }
  if (frame.envelope.epoch == rx.epoch && frame.seq > rx.applied_seq) {
    rx.applied_seq = frame.seq;
    return Verdict::kDeliver;
  }
  ++duplicates_;
  return Verdict::kDuplicate;
}

Transport::Verdict Transport::receive_at_coordinator(int coordinator, int node,
                                                     const Frame& frame) {
  if (frame.seq == 0 || coordinator < 0 ||
      coordinator >= static_cast<int>(coord_rx_.size()) || node < 0 ||
      node >= static_cast<int>(next_seq_.size())) {
    return Verdict::kDeliver;
  }
  std::uint64_t& last = coord_rx_[static_cast<std::size_t>(coordinator)]
                                 [static_cast<std::size_t>(node)];
  if (frame.seq <= last) {
    ++duplicates_;
    return Verdict::kDuplicate;
  }
  last = frame.seq;
  return Verdict::kDeliver;
}

std::uint64_t Transport::node_ack(int node) const {
  if (node < 0 || node >= static_cast<int>(node_rx_.size())) return 0;
  return node_rx_[static_cast<std::size_t>(node)].applied_seq;
}

Epoch Transport::node_ack_epoch(int node) const {
  if (node < 0 || node >= static_cast<int>(node_rx_.size())) return 0;
  return node_rx_[static_cast<std::size_t>(node)].epoch;
}

void Transport::on_ack(int node, Epoch epoch, std::uint64_t seq) {
  if (node < 0 || node >= static_cast<int>(pending_.size())) return;
  Pending& p = pending_[static_cast<std::size_t>(node)];
  if (!p.active) return;
  if (epoch > p.envelope.epoch) {
    // The node is applying a newer coordinator's grants; our frame can
    // never be acked.  Drain it rather than retransmitting into a fence.
    expire(node, "epoch");
    return;
  }
  if (epoch < p.envelope.epoch) return;  // ack predates our epoch; timer
                                         // recovery still applies
  if (seq >= p.seq) {
    p.active = false;
    p.deliver = nullptr;
    return;
  }
  // The node acked an older seq after our frame had time to land: the
  // frame (or a previous retry) was lost.  Fast retransmit beats waiting
  // out the timer — this is the primary loss-recovery path, since acks
  // arrive every summary round.
  if (sim_.now() - p.sent_t >= opts_.min_ack_flight_s) maybe_retransmit(node);
}

void Transport::fence(Epoch epoch) {
  for (std::size_t n = 0; n < pending_.size(); ++n) {
    if (pending_[n].active && pending_[n].envelope.epoch < epoch) {
      expire(static_cast<int>(n), "epoch");
    }
  }
}

bool Transport::has_pending() const {
  for (const Pending& p : pending_) {
    if (p.active) return true;
  }
  return false;
}

void Transport::pump() {
  const double now = sim_.now();
  for (std::size_t n = 0; n < pending_.size(); ++n) {
    if (pending_[n].active && now >= pending_[n].retry_t) {
      maybe_retransmit(static_cast<int>(n));
    }
  }
}

void Transport::maybe_retransmit(int node) {
  Pending& p = pending_[static_cast<std::size_t>(node)];
  if (!p.active) return;
  if (p.attempts >= opts_.max_retransmits) {
    expire(node, "retries");
    return;
  }
  if (!budget_allows()) {
    // Storm control: the round's retransmit budget is spent.  Re-check on
    // the next pump; a new round window refills the budget.  The deferral
    // does not consume an attempt.
    p.retry_t = sim_.now() + opts_.pump_period_s;
    return;
  }
  ++p.attempts;
  ++budget_used_;
  ++retransmits_;
  if (hooks_.on_retransmit) hooks_.on_retransmit(node, p.seq, p.attempts);
  Frame frame;
  frame.envelope = p.envelope;
  frame.seq = p.seq;
  p.sent_t = sim_.now();
  double scale = 1.0;
  for (int k = 0; k < p.attempts; ++k) scale *= opts_.backoff_base;
  p.retry_t = sim_.now() + opts_.rto_s * scale;
  transmit(node, frame, p.deliver);
}

void Transport::expire(int node, const char* cause) {
  Pending& p = pending_[static_cast<std::size_t>(node)];
  if (!p.active) return;
  ++expired_;
  if (hooks_.on_expired) hooks_.on_expired(node, p.seq, p.attempts, cause);
  p.active = false;
  p.deliver = nullptr;
}

bool Transport::budget_allows() {
  const long window =
      static_cast<long>(sim_.now() / opts_.round_period_s);
  if (window != budget_window_) {
    budget_window_ = window;
    budget_used_ = 0;
  }
  return budget_used_ < opts_.round_retransmit_budget;
}

}  // namespace fvsst::cluster
