// shard.h - Contiguous node slabs with structure-of-arrays batched stepping.
//
// StepPool (parallel_stepper.h) made node stepping deterministic at any
// thread count, but its fixed `i mod N` partition interleaves every
// worker's nodes across the whole cluster: at 10k+ nodes each worker
// touches cache lines spread over the entire core array, and every
// per-core query chases a Node -> unique_ptr<Core> pointer chain.  The
// shard layer fixes both:
//
//   ShardMap   cuts the cluster into contiguous slabs of nodes, balanced
//              by per-node CPU weight (the locality-aware replacement for
//              `i mod N`: a worker's slab is one cache-friendly range, the
//              idiom NUMA-aware schedulers use for vCPU placement);
//   Shard      owns one slab's hot per-core state as parallel arrays —
//              synced-until, next-interesting-time, set-point frequency —
//              and advances the whole slab with one batched sweep
//              (cpu::Core::advance_batch) that skips already-synced cores
//              without touching the cold Core objects at all.
//
// Each Shard also carries its own deferred-action queue: the hierarchical
// daemon routes per-shard work (grant applies, interval closes) through
// the owning shard's queue and drains them in shard order on the
// simulation thread, so workers never contend on a global queue and the
// ordered effects stay byte-identical to a serial run.
//
// Partitioning never changes simulation results: the batched advance
// touches only per-core state, and every ordered effect is committed
// serially in node order — the same contract StepPool::run documents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster.h"

namespace fvsst::cluster {

/// One shard's contiguous slab of nodes (and the flattened CPU range the
/// slab covers in the cluster's node-major processor order).
struct ShardSpan {
  std::size_t first_node = 0;
  std::size_t node_count = 0;
  std::size_t first_cpu = 0;  ///< Flat index of the slab's first CPU.
  std::size_t cpu_count = 0;

  std::size_t end_node() const { return first_node + node_count; }
};

/// Locality-aware partition of a cluster into contiguous node slabs,
/// balanced by per-node CPU count (a heterogeneous cluster's fat nodes
/// count for their real weight).
class ShardMap {
 public:
  /// Cuts `cluster` into `shards` slabs; `shards` is clamped to [1,
  /// node_count] so every shard owns at least one node.  Shard boundaries
  /// fall at the CPU-weight quantiles, so slabs differ by at most one
  /// node's weight.
  ShardMap(const Cluster& cluster, std::size_t shards);

  /// The default shard count for `nodes` nodes: ~sqrt(nodes), the
  /// two-level fan-out that keeps both the per-shard slab and the
  /// root's child list O(sqrt N).
  static std::size_t auto_shards(std::size_t nodes);

  std::size_t size() const { return spans_.size(); }
  const ShardSpan& span(std::size_t s) const { return spans_.at(s); }
  const std::vector<ShardSpan>& spans() const { return spans_; }

  /// Shard owning `node`.
  std::size_t shard_of_node(std::size_t node) const {
    return node_shard_.at(node);
  }

  std::size_t total_cpus() const { return total_cpus_; }

 private:
  std::vector<ShardSpan> spans_;
  std::vector<std::uint32_t> node_shard_;
  std::size_t total_cpus_ = 0;
};

/// One slab's cores in structure-of-arrays form, plus the shard-local
/// deferred-action queue.  The hot arrays (synced-until, next-interesting,
/// frequency) live contiguously so a batch sweep reads them linearly; the
/// cold Core objects are only dereferenced for cores that actually need
/// advancing.
class Shard {
 public:
  Shard(Cluster& cluster, ShardSpan span);

  const ShardSpan& span() const { return span_; }
  std::size_t core_count() const { return cores_.size(); }
  cpu::Core& core(std::size_t i) { return *cores_.at(i); }

  /// Global node index owning within-shard core `i`.
  std::size_t node_of_core(std::size_t i) const { return core_node_.at(i); }

  /// Advances every core in the slab to absolute time `t` (one batched
  /// sweep; cores already synced to >= t are skipped via the hot array,
  /// without touching the Core object).  When `node_skip` is non-null it
  /// indexes *global* node ids; cores of flagged nodes are left alone —
  /// the crash-window contract of ClusterDaemon::agents_tick.
  void advance_to(double t, const unsigned char* node_skip = nullptr);

  /// Earliest next model discontinuity across the slab, as cached by the
  /// last advance_to sweep (infinity before the first sweep or when no
  /// core bounds its advance).
  double next_interesting_time() const { return next_interesting_min_; }

  /// Hot per-core state refreshed by the last sweep.
  const std::vector<double>& synced_until() const { return synced_until_; }
  const std::vector<double>& frequency_hz() const { return frequency_hz_; }

  /// Peak power of the slab at the frequencies cached by the last sweep.
  double cached_power_w() const;

  /// Sweep statistics (for the scale bench and the inspector).
  std::uint64_t sweeps() const { return sweeps_; }
  std::uint64_t cores_advanced() const { return cores_advanced_; }
  std::uint64_t cores_skipped() const { return cores_skipped_; }

  // --- Shard-local deferred-action queue --------------------------------
  // FIFO of actions bound for this shard (grant applies, interval closes).
  // Producers enqueue from the simulation thread; the daemon drains shards
  // in shard order, so effects commit in the same order a serial run
  // would.  Never touched by pool workers.

  void enqueue(std::function<void()> action);
  /// Runs and removes every queued action in FIFO order.
  void drain();
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  ShardSpan span_;
  std::vector<cpu::Core*> cores_;          // cold: dereferenced on demand
  std::vector<std::uint32_t> core_node_;   // global node id per core
  std::vector<const mach::FrequencyTable*> core_table_;
  // Hot SoA arrays, parallel to cores_.
  std::vector<double> synced_until_;
  std::vector<double> next_interesting_;
  std::vector<double> frequency_hz_;
  std::vector<unsigned char> skip_scratch_;
  double next_interesting_min_ = 0.0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t cores_advanced_ = 0;
  std::uint64_t cores_skipped_ = 0;
  std::vector<std::function<void()>> queue_;
};

/// Builds one Shard per ShardMap slab.
std::vector<Shard> make_shards(Cluster& cluster, const ShardMap& map);

}  // namespace fvsst::cluster
