// counter_trace.h - Capture and replay of performance-counter traces.
//
// The paper's prototype "generates both scheduling and performance counter
// data logs that provide performance and frequency information for
// monitoring and data analysis".  This module makes those logs round-trip:
// a recorder captures per-interval counter deltas from a running core (or
// they can come from a real machine via src/host — the schema is the
// same), the trace serialises to a text file, and a converter turns it
// back into a phase workload whose counter behaviour reproduces the
// original: capture in production, replay in the simulator.
//
// File format (one directive per line, '#' comments):
//   countertrace <name>
//   interval <seconds> <instructions> <cycles> <l2> <l3> <mem>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "cpu/perf_counters.h"
#include "mach/machine_config.h"
#include "simkit/event_queue.h"
#include "workload/phase.h"
#include "workload/trace.h"  // TraceParseError

namespace fvsst::cpu {

/// One observation interval.
struct CounterInterval {
  double duration_s = 0.0;
  PerfCounters delta;
};

/// A named sequence of intervals.
struct CounterTrace {
  std::string name;
  std::vector<CounterInterval> intervals;
};

/// Records a core's counters every `period_s` into a CounterTrace.
class CounterTraceRecorder {
 public:
  CounterTraceRecorder(sim::Simulation& sim, Core& core, double period_s,
                       std::string name = "capture");
  ~CounterTraceRecorder();

  CounterTraceRecorder(const CounterTraceRecorder&) = delete;
  CounterTraceRecorder& operator=(const CounterTraceRecorder&) = delete;

  const CounterTrace& trace() const { return trace_; }

 private:
  void sample();

  sim::Simulation& sim_;
  Core& core_;
  double period_s_;
  sim::EventId event_ = 0;
  PerfCounters last_;
  CounterTrace trace_;
};

/// Serialisation.  Parsing throws workload::TraceParseError on malformed
/// input (same error type as the workload trace format).
std::string format_counter_trace(const CounterTrace& trace);
CounterTrace parse_counter_trace(std::istream& in);
CounterTrace parse_counter_trace_string(const std::string& text);
void save_counter_trace(const std::string& path, const CounterTrace& trace);
CounterTrace load_counter_trace(const std::string& path);

/// Converts a counter trace into a replayable workload: each interval
/// becomes one phase whose (alpha, access rates) reproduce the recorded
/// IPC and counter rates under the paper's CPI decomposition with the
/// given nominal latencies.  Intervals with (near-)zero instructions —
/// halted idle gaps — are replayed as slow filler phases that preserve
/// the interval's duration at its recorded frequency.
workload::WorkloadSpec counter_trace_to_workload(
    const CounterTrace& trace, const mach::MemoryLatencies& lat,
    bool loop = false);

}  // namespace fvsst::cpu
