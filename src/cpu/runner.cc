#include "cpu/runner.h"

#include <stdexcept>

namespace fvsst::cpu {

WorkloadRunner::WorkloadRunner(workload::WorkloadSpec spec)
    : spec_(std::move(spec)) {
  if (spec_.phases.empty()) {
    throw std::invalid_argument("WorkloadRunner: workload has no phases");
  }
  for (const auto& p : spec_.phases) {
    if (p.instructions <= 0.0 || p.alpha <= 0.0) {
      throw std::invalid_argument(
          "WorkloadRunner: phase needs positive instructions and alpha");
    }
  }
  finished_ = false;
}

const workload::Phase& WorkloadRunner::current_phase() const {
  if (finished_) {
    throw std::logic_error("WorkloadRunner: finished");
  }
  return spec_.phases[phase_index_];
}

double WorkloadRunner::instructions_left_in_phase() const {
  return current_phase().instructions - done_in_phase_;
}

void WorkloadRunner::retire(double n) {
  if (finished_) throw std::logic_error("WorkloadRunner: finished");
  if (n < 0.0 || n > instructions_left_in_phase() + 1e-6) {
    throw std::invalid_argument("WorkloadRunner: retire beyond phase end");
  }
  done_in_phase_ += n;
  retired_total_ += n;
  // Use a tolerance: floating-point chunking leaves sub-instruction dust.
  if (instructions_left_in_phase() <= 1e-6) {
    done_in_phase_ = 0.0;
    ++phase_index_;
    if (phase_index_ >= spec_.phases.size()) {
      phase_index_ = 0;
      ++passes_;
      if (!spec_.loop) finished_ = true;
    }
  }
}

}  // namespace fvsst::cpu
