#include "cpu/throttle.h"

#include <cmath>
#include <stdexcept>

namespace fvsst::cpu {

ThrottleModel::ThrottleModel(ScalingMode mode, double max_hz, int duty_steps)
    : mode_(mode), max_hz_(max_hz), duty_steps_(duty_steps) {
  if (mode_ == ScalingMode::kFetchThrottle) {
    if (max_hz_ <= 0.0) {
      throw std::invalid_argument("ThrottleModel: throttling needs max_hz");
    }
    if (duty_steps_ < 1) {
      throw std::invalid_argument("ThrottleModel: duty_steps must be >= 1");
    }
  }
}

double ThrottleModel::effective_hz(double requested_hz) const {
  if (mode_ == ScalingMode::kIdealDvfs) return requested_hz;
  // Round the duty cycle to the nearest available throttle position; never
  // exceed the request (the hardware cannot run faster than asked).
  const double duty = requested_hz / max_hz_;
  const double steps = std::floor(duty * duty_steps_ + 0.5);
  const double granted =
      std::min(steps / duty_steps_, 1.0) * max_hz_;
  return granted > requested_hz ? (steps - 1.0) / duty_steps_ * max_hz_
                                : granted;
}

}  // namespace fvsst::cpu
