#include "cpu/sampler.h"

namespace fvsst::cpu {

CounterSampler::CounterSampler(sim::Simulation& sim, Core& core,
                               double period_s)
    : sim_(sim), core_(core) {
  previous_ = core_.read_counters();
  event_id_ = sim_.schedule_every(period_s, [this] { sample(); });
}

CounterSampler::~CounterSampler() {
  sim_.cancel(event_id_);
}

void CounterSampler::sample() {
  const PerfCounters current = core_.read_counters();
  last_delta_ = current - previous_;
  aggregate_ += last_delta_;
  previous_ = current;
  ++samples_;
}

PerfCounters CounterSampler::take_aggregate() {
  const PerfCounters out = aggregate_;
  aggregate_ = PerfCounters{};
  return out;
}

}  // namespace fvsst::cpu
