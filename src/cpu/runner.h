// runner.h - Walks a WorkloadSpec by retired instructions.
#pragma once

#include <cstddef>

#include "workload/phase.h"

namespace fvsst::cpu {

/// Tracks progress of one job through its phase list.  The owning Core
/// advances it by instruction counts; the runner reports the current phase
/// and completion.
class WorkloadRunner {
 public:
  explicit WorkloadRunner(workload::WorkloadSpec spec);

  const workload::WorkloadSpec& spec() const { return spec_; }

  /// True once a non-looping workload has retired all instructions.
  bool finished() const { return finished_; }

  /// Phase currently executing.  Precondition: !finished().
  const workload::Phase& current_phase() const;

  /// Instructions remaining in the current phase.
  double instructions_left_in_phase() const;

  /// Retires `n` instructions (must not exceed the current phase's
  /// remainder); advances phase/loop state.
  void retire(double n);

  /// Total instructions retired across all phases (and loop iterations).
  double instructions_retired() const { return retired_total_; }

  /// Completed passes over the phase list (for looping workloads this is
  /// the throughput numerator the synthetic benchmark reports).
  std::size_t passes_completed() const { return passes_; }

 private:
  workload::WorkloadSpec spec_;
  std::size_t phase_index_ = 0;
  double done_in_phase_ = 0.0;
  double retired_total_ = 0.0;
  std::size_t passes_ = 0;
  bool finished_ = false;
};

}  // namespace fvsst::cpu
