// sampler.h - Periodic performance-counter sampling.
//
// The paper's prototype "collects the performance-counter data periodically"
// every dispatch interval t (>= 10 ms, below which Linux's time quantum
// makes the data inaccurate) and schedules every T = n*t.  CounterSampler
// implements the per-core sampling half: it snapshots counters every t and
// exposes both the most recent interval delta and the aggregate since the
// last scheduler consumption.
#pragma once

#include <vector>

#include "cpu/core.h"
#include "cpu/perf_counters.h"
#include "simkit/event_queue.h"

namespace fvsst::cpu {

/// Samples one core's counters every `period_s`.
class CounterSampler {
 public:
  CounterSampler(sim::Simulation& sim, Core& core, double period_s);
  ~CounterSampler();

  CounterSampler(const CounterSampler&) = delete;
  CounterSampler& operator=(const CounterSampler&) = delete;

  /// Delta observed over the most recent completed sampling interval.
  const PerfCounters& last_interval() const { return last_delta_; }

  /// Sum of deltas since the last take_aggregate() call (the T-interval
  /// input to the scheduler).
  const PerfCounters& aggregate() const { return aggregate_; }

  /// Returns the aggregate and resets it; called by the scheduler at each
  /// T boundary.
  PerfCounters take_aggregate();

  /// Number of samples taken so far.
  std::size_t samples() const { return samples_; }

  Core& core() { return core_; }

 private:
  void sample();

  sim::Simulation& sim_;
  Core& core_;
  sim::EventId event_id_ = 0;
  PerfCounters previous_;
  PerfCounters last_delta_;
  PerfCounters aggregate_;
  std::size_t samples_ = 0;
};

}  // namespace fvsst::cpu
