// perf_counters.h - The performance-counter schema fvsst consumes.
//
// The Power4+ "has performance counters that a scheduling mechanism may use
// to gather the number of accesses to each level of the memory hierarchy in
// an interval of time" (paper Sec. 4.3).  This struct is that schema: it is
// the *only* information the predictor and scheduler ever see about a
// processor, whether the source is the simulator (src/cpu) or a real host
// (src/host).
#pragma once

namespace fvsst::cpu {

/// Monotonic counter values; subtract two snapshots to get an interval.
struct PerfCounters {
  double instructions = 0.0;   ///< Instructions completed.
  double cycles = 0.0;         ///< Processor cycles elapsed (at current f).
  double l2_accesses = 0.0;    ///< Accesses serviced by the L2.
  double l3_accesses = 0.0;    ///< Accesses serviced by the L3.
  double mem_accesses = 0.0;   ///< Accesses serviced by main memory.
  double halted_cycles = 0.0;  ///< Halted cycles (0 on hot-idle cores).

  PerfCounters& operator+=(const PerfCounters& o) {
    instructions += o.instructions;
    cycles += o.cycles;
    l2_accesses += o.l2_accesses;
    l3_accesses += o.l3_accesses;
    mem_accesses += o.mem_accesses;
    halted_cycles += o.halted_cycles;
    return *this;
  }

  friend PerfCounters operator-(PerfCounters a, const PerfCounters& b) {
    a.instructions -= b.instructions;
    a.cycles -= b.cycles;
    a.l2_accesses -= b.l2_accesses;
    a.l3_accesses -= b.l3_accesses;
    a.mem_accesses -= b.mem_accesses;
    a.halted_cycles -= b.halted_cycles;
    return a;
  }

  friend PerfCounters operator+(PerfCounters a, const PerfCounters& b) {
    a += b;
    return a;
  }

  /// Observed IPC over the interval this delta covers; 0 when no cycles.
  double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }
};

}  // namespace fvsst::cpu
