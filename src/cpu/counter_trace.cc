#include "cpu/counter_trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace fvsst::cpu {
namespace {

using workload::TraceParseError;

constexpr double kMinInstructions = 1e3;

double parse_number(const std::string& token, int line, const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &used);
  } catch (const std::exception&) {
    throw TraceParseError(line, std::string("bad ") + what);
  }
  if (used != token.size()) {
    throw TraceParseError(line, std::string("trailing junk in ") + what);
  }
  return v;
}

}  // namespace

CounterTraceRecorder::CounterTraceRecorder(sim::Simulation& sim, Core& core,
                                           double period_s, std::string name)
    : sim_(sim), core_(core), period_s_(period_s) {
  trace_.name = std::move(name);
  last_ = core_.read_counters();
  event_ = sim_.schedule_every(period_s, [this] { sample(); });
}

CounterTraceRecorder::~CounterTraceRecorder() {
  sim_.cancel(event_);
}

void CounterTraceRecorder::sample() {
  const PerfCounters now = core_.read_counters();
  trace_.intervals.push_back({period_s_, now - last_});
  last_ = now;
}

std::string format_counter_trace(const CounterTrace& trace) {
  std::ostringstream out;
  out.precision(17);
  out << "countertrace " << trace.name << "\n";
  for (const auto& iv : trace.intervals) {
    out << "interval " << iv.duration_s << " " << iv.delta.instructions
        << " " << iv.delta.cycles << " " << iv.delta.l2_accesses << " "
        << iv.delta.l3_accesses << " " << iv.delta.mem_accesses << "\n";
  }
  return out.str();
}

CounterTrace parse_counter_trace(std::istream& in) {
  CounterTrace trace;
  bool have_header = false;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    for (std::string tok; line >> tok;) tokens.push_back(tok);
    if (tokens.empty()) continue;
    if (tokens[0] == "countertrace") {
      if (tokens.size() != 2) {
        throw TraceParseError(line_no, "countertrace takes one name");
      }
      if (have_header) throw TraceParseError(line_no, "duplicate header");
      trace.name = tokens[1];
      have_header = true;
    } else if (tokens[0] == "interval") {
      if (!have_header) {
        throw TraceParseError(line_no, "interval before countertrace");
      }
      if (tokens.size() != 7) {
        throw TraceParseError(
            line_no, "interval needs: seconds instr cycles l2 l3 mem");
      }
      CounterInterval iv;
      iv.duration_s = parse_number(tokens[1], line_no, "seconds");
      iv.delta.instructions = parse_number(tokens[2], line_no, "instr");
      iv.delta.cycles = parse_number(tokens[3], line_no, "cycles");
      iv.delta.l2_accesses = parse_number(tokens[4], line_no, "l2");
      iv.delta.l3_accesses = parse_number(tokens[5], line_no, "l3");
      iv.delta.mem_accesses = parse_number(tokens[6], line_no, "mem");
      if (iv.duration_s <= 0.0 || iv.delta.cycles < 0.0 ||
          iv.delta.instructions < 0.0) {
        throw TraceParseError(line_no, "negative interval field");
      }
      trace.intervals.push_back(iv);
    } else {
      throw TraceParseError(line_no,
                            "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!have_header) throw TraceParseError(line_no, "missing countertrace");
  if (trace.intervals.empty()) {
    throw TraceParseError(line_no, "trace has no intervals");
  }
  return trace;
}

CounterTrace parse_counter_trace_string(const std::string& text) {
  std::istringstream in(text);
  return parse_counter_trace(in);
}

void save_counter_trace(const std::string& path, const CounterTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << format_counter_trace(trace);
  if (!out) throw std::runtime_error("write failed: " + path);
}

CounterTrace load_counter_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return parse_counter_trace(in);
}

workload::WorkloadSpec counter_trace_to_workload(
    const CounterTrace& trace, const mach::MemoryLatencies& lat, bool loop) {
  workload::WorkloadSpec spec;
  spec.name = "replay:" + trace.name;
  spec.loop = loop;
  std::size_t index = 0;
  for (const auto& iv : trace.intervals) {
    const std::string name = "iv" + std::to_string(index++);
    workload::Phase p;
    p.name = name;
    const double f = iv.delta.cycles / iv.duration_s;  // measured frequency
    if (iv.delta.instructions < kMinInstructions || iv.delta.cycles <= 0.0) {
      // Idle gap: a slow CPU-bound filler that takes duration_s at the
      // recorded frequency (or any frequency — it is frequency-linear).
      p.alpha = 0.01;
      p.instructions = std::max(iv.duration_s * std::max(f, 1e6) * 0.01, 1.0);
      spec.phases.push_back(std::move(p));
      continue;
    }
    const double cpi = iv.delta.cycles / iv.delta.instructions;
    const double m = (iv.delta.l2_accesses * lat.t_l2 +
                      iv.delta.l3_accesses * lat.t_l3 +
                      iv.delta.mem_accesses * lat.t_mem) /
                     iv.delta.instructions;
    const double alpha_inv = std::max(cpi - m * f, 0.05);
    p.alpha = 1.0 / alpha_inv;
    p.apki_l2 = iv.delta.l2_accesses / iv.delta.instructions * 1000.0;
    p.apki_l3 = iv.delta.l3_accesses / iv.delta.instructions * 1000.0;
    p.apki_mem = iv.delta.mem_accesses / iv.delta.instructions * 1000.0;
    p.instructions = iv.delta.instructions;
    spec.phases.push_back(std::move(p));
  }
  return spec;
}

}  // namespace fvsst::cpu
