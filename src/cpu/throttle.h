// throttle.h - Fetch-throttling approximation of frequency scaling.
//
// The paper's prototype "relies on an approximation of frequency scaling and
// cannot actually scale voltages.  The underlying hardware provides
// mechanisms for throttling the pipeline...  Fetch throttling is used to
// mimic the effects of frequency scaling" (Sec. 6).  ThrottleModel captures
// that substitution: in kIdealDvfs mode the effective frequency equals the
// requested one; in kFetchThrottle mode the request is realised as a duty
// cycle quantised to a fixed number of steps, so the effective frequency
// deviates slightly from the request — a realistic, bounded source of
// prediction error.
#pragma once

namespace fvsst::cpu {

enum class ScalingMode {
  kIdealDvfs,     ///< Effective frequency == requested frequency.
  kFetchThrottle, ///< Duty-cycle quantisation of the requested frequency.
};

/// Maps a requested core frequency to the effective one.
class ThrottleModel {
 public:
  /// `duty_steps` is the number of distinct throttle positions between 0%
  /// and 100% (the P630's throttle "can cover the entire range").
  explicit ThrottleModel(ScalingMode mode = ScalingMode::kIdealDvfs,
                         double max_hz = 0.0, int duty_steps = 32);

  /// Effective frequency delivered for a request.
  double effective_hz(double requested_hz) const;

  ScalingMode mode() const { return mode_; }

 private:
  ScalingMode mode_;
  double max_hz_;
  int duty_steps_;
};

}  // namespace fvsst::cpu
