#include "cpu/core.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fvsst::cpu {
namespace {

constexpr double kTimeEpsilon = 1e-12;

}  // namespace

Core::Core(sim::Simulation& sim, Config cfg, sim::Rng rng)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(rng),
      requested_hz_(cfg_.max_hz),
      effective_hz_(cfg_.max_hz),
      throttle_(cfg_.scaling_mode, cfg_.max_hz, cfg_.throttle_steps),
      idle_runner_(workload::idle_loop(cfg_.idle_ipc)),
      synced_until_(sim.now()) {
  if (cfg_.max_hz <= 0.0) {
    throw std::invalid_argument("Core: max_hz must be positive");
  }
  effective_hz_ = throttle_.effective_hz(requested_hz_);
}

std::size_t Core::add_workload(workload::WorkloadSpec spec) {
  sync();
  jobs_.emplace_back(std::move(spec));
  finish_times_.push_back(-1.0);
  return jobs_.size() - 1;
}

bool Core::idle() {
  sync();
  return pick_runner() == nullptr;
}

void Core::set_frequency(double hz) {
  if (hz <= 0.0 || hz > cfg_.max_hz + kTimeEpsilon) {
    throw std::invalid_argument("Core: frequency out of range");
  }
  sync();
  requested_hz_ = hz;
  effective_hz_ = throttle_.effective_hz(hz);
}

PerfCounters Core::read_counters() {
  sync();
  return counters_;
}

double Core::instructions_retired() {
  sync();
  double total = 0.0;
  for (const auto& j : jobs_) total += j.instructions_retired();
  return total;
}

double Core::job_instructions_retired(std::size_t job) {
  sync();
  return jobs_.at(job).instructions_retired();
}

std::size_t Core::passes_completed() {
  sync();
  std::size_t total = 0;
  for (const auto& j : jobs_) total += j.passes_completed();
  return total;
}

double Core::job_finish_time(std::size_t job) {
  sync();
  return finish_times_.at(job);
}

const workload::Phase* Core::active_phase() {
  sync();
  WorkloadRunner* runner = pick_runner();
  return runner ? &runner->current_phase() : nullptr;
}

void Core::steal_time(double seconds) {
  if (seconds < 0.0) {
    throw std::invalid_argument("Core: negative stolen time");
  }
  sync();
  stolen_pending_s_ += seconds;
}

void Core::sync() { advance_to(sim_.now()); }

void Core::advance_to(double t) {
  if (t < synced_until_) return;
  if (grid_period_ > 0.0) {
    // Subdivide at the sampling lattice: every instant in (synced_until, t]
    // ends its own advance segment, so chunk boundaries (and with them the
    // per-chunk noise draws) land exactly where a per-tick driver would
    // have put them.  Instants are origin + k*period in that exact
    // floating-point form — the expression sim::Simulation uses to re-arm
    // periodic events — so a lattice instant compares equal to the tick
    // time it stands in for.
    while (true) {
      const double g =
          grid_origin_ + static_cast<double>(grid_next_k_) * grid_period_;
      if (g > t) break;
      const double dt = g - synced_until_;
      if (dt > kTimeEpsilon) advance(dt, g);
      synced_until_ = g;
      // The per-sample overhead the daemon would have stolen at this tick.
      // Pending stolen time never touches the counters until a later
      // advance consumes it, so adding it before the snapshot leaves the
      // snapshot identical to a tick-driven read.
      if (grid_steal_s_ > 0.0) stolen_pending_s_ += grid_steal_s_;
      if (grid_history_) history_.push_back(counters_);
      ++grid_next_k_;
    }
  }
  const double dt = t - synced_until_;
  if (dt > kTimeEpsilon) advance(dt, t);
  synced_until_ = t;
}

double Core::next_interesting_time() const {
  double limit = std::numeric_limits<double>::infinity();
  if (grid_period_ > 0.0) {
    limit = std::min(limit, grid_origin_ + static_cast<double>(grid_next_k_) *
                                               grid_period_);
  }
  if (stolen_pending_s_ > kTimeEpsilon) {
    return std::min(limit, synced_until_ + stolen_pending_s_);
  }
  // pick_runner() mutates the round-robin cursor; peek without committing.
  const WorkloadRunner* runner = nullptr;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const auto& j = jobs_[(rr_index_ + i) % jobs_.size()];
    if (!j.finished()) {
      runner = &j;
      break;
    }
  }
  const bool is_idle = (runner == nullptr);
  if (is_idle && cfg_.idles_by_halting) return limit;
  const WorkloadRunner& active = is_idle ? idle_runner_ : *runner;
  const double rate = workload::true_performance(
      active.current_phase(), cfg_.latencies, effective_hz_);
  if (rate > 0.0) {
    limit = std::min(limit, synced_until_ +
                                active.instructions_left_in_phase() / rate);
  }
  if (!is_idle) {
    limit = std::min(limit,
                     synced_until_ + (cfg_.quantum_s - quantum_used_s_));
  }
  return limit;
}

void Core::set_sampling_grid(double origin, double period,
                             double recurring_steal_s, bool record_history) {
  if (period <= 0.0) {
    throw std::invalid_argument("Core: sampling grid period must be positive");
  }
  if (grid_period_ > 0.0 &&
      (grid_origin_ != origin || grid_period_ != period)) {
    throw std::logic_error(
        "Core: a different sampling grid is already registered");
  }
  grid_origin_ = origin;
  grid_period_ = period;
  grid_steal_s_ = recurring_steal_s;
  grid_history_ = record_history;
  grid_next_k_ = 0;
}

void Core::drain_counter_history(std::vector<PerfCounters>& out) {
  out.insert(out.end(), history_.begin(), history_.end());
  history_.clear();
}

WorkloadRunner* Core::pick_runner() {
  if (jobs_.empty()) return nullptr;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    auto& j = jobs_[(rr_index_ + i) % jobs_.size()];
    if (!j.finished()) {
      if (i != 0) {
        rr_index_ = (rr_index_ + i) % jobs_.size();
        quantum_used_s_ = 0.0;
      }
      return &j;
    }
  }
  return nullptr;
}

void Core::rotate_if_quantum_expired() {
  if (quantum_used_s_ + kTimeEpsilon < cfg_.quantum_s) return;
  quantum_used_s_ = 0.0;
  if (!jobs_.empty()) rr_index_ = (rr_index_ + 1) % jobs_.size();
}

// Advances the model by `dt` seconds ending at absolute time `end_time`.
// Finish times are derived from end_time (not sim_.now()) so a span
// subdivided at grid instants produces bit-identical timestamps to the
// per-tick advances it replaces.
void Core::advance(double dt, double end_time) {
  ++advance_calls_;
  double remaining = dt;
  while (remaining > kTimeEpsilon) {
    // Scheduler/daemon overhead executes first: cycles pass, no retirement.
    if (stolen_pending_s_ > kTimeEpsilon) {
      const double chunk = std::min(remaining, stolen_pending_s_);
      counters_.cycles += chunk * effective_hz_;
      stolen_pending_s_ -= chunk;
      remaining -= chunk;
      continue;
    }

    WorkloadRunner* runner = pick_runner();
    const bool is_idle = (runner == nullptr);
    if (is_idle && cfg_.idles_by_halting) {
      // Halting idle: cycles elapse and are flagged halted; nothing
      // retires.  The daemon can infer idleness from the counter alone.
      counters_.cycles += remaining * effective_hz_;
      counters_.halted_cycles += remaining * effective_hz_;
      remaining = 0.0;
      continue;
    }
    WorkloadRunner& active = is_idle ? idle_runner_ : *runner;
    const workload::Phase& phase = active.current_phase();

    // Ground-truth retirement rate at the delivered frequency, with a small
    // per-chunk execution jitter the predictor cannot anticipate.
    double rate =
        workload::true_performance(phase, cfg_.latencies, effective_hz_);
    if (cfg_.execution_noise_sigma > 0.0) {
      rate *= std::max(0.1, 1.0 + rng_.normal(0.0, cfg_.execution_noise_sigma));
    }

    double chunk = remaining;
    if (!is_idle) {
      chunk = std::min(chunk, cfg_.quantum_s - quantum_used_s_);
    }
    const double to_phase_end = active.instructions_left_in_phase() / rate;
    chunk = std::min(chunk, to_phase_end);
    chunk = std::max(chunk, kTimeEpsilon);

    const double instr =
        std::min(rate * chunk, active.instructions_left_in_phase());
    active.retire(instr);

    counters_.instructions += instr;
    counters_.cycles += chunk * effective_hz_;
    auto noisy = [&](double value) {
      if (cfg_.counter_noise_sigma <= 0.0 || value <= 0.0) return value;
      return value *
             std::max(0.0, 1.0 + rng_.normal(0.0, cfg_.counter_noise_sigma));
    };
    counters_.l2_accesses += noisy(instr * phase.apki_l2 / 1000.0);
    counters_.l3_accesses += noisy(instr * phase.apki_l3 / 1000.0);
    counters_.mem_accesses += noisy(instr * phase.apki_mem / 1000.0);

    if (!is_idle) {
      quantum_used_s_ += chunk;
      if (active.finished()) {
        const double now_local = end_time - remaining + chunk;
        finish_times_[rr_index_] = now_local;
        ++jobs_finished_;
        quantum_used_s_ = 0.0;
      } else {
        rotate_if_quantum_expired();
      }
    }
    remaining -= chunk;
  }
}

std::size_t Core::advance_batch(Core* const* cores, std::size_t n, double t,
                                const unsigned char* skip,
                                double* synced_until,
                                double* next_interesting,
                                double* frequency_hz) {
  std::size_t advanced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Core& core = *cores[i];
    if (skip && skip[i]) {
      // A skipped (crashed) core's cached state may be stale; republish
      // the truth so the caller's arrays never lie about the watermark.
      if (synced_until) synced_until[i] = core.synced_until_;
      if (next_interesting) next_interesting[i] = core.next_interesting_time();
      if (frequency_hz) frequency_hz[i] = core.requested_hz_;
      continue;
    }
    // The hot-array fast path: a core whose cached watermark already
    // covers `t` would make advance_to a clamped no-op — skip the model
    // entirely (the set-point is still re-read: actuations between sweeps
    // move it without moving the watermark).
    if (synced_until && synced_until[i] >= t) {
      if (frequency_hz) frequency_hz[i] = core.requested_hz_;
      continue;
    }
    if (core.synced_until_ < t) {
      core.advance_to(t);
      ++advanced;
    }
    if (synced_until) synced_until[i] = core.synced_until_;
    if (next_interesting) next_interesting[i] = core.next_interesting_time();
    if (frequency_hz) frequency_hz[i] = core.requested_hz_;
  }
  return advanced;
}

}  // namespace fvsst::cpu
