// core.h - The simulated processor core.
//
// A Core executes one or more jobs (time-sliced round-robin, since the
// paper targets multi-programmed systems) according to the phase-based
// performance model: at effective frequency f a phase retires
// 1 / (1/alpha + M_true * f) instructions per cycle.  The core maintains
// the Power4+-style performance counters that are fvsst's only window into
// the workload, including realistic imperfections:
//
//   - access counts carry small multiplicative sampling noise;
//   - each phase's true service times may deviate from the machine's
//     nominal latency constants (Phase::latency_scale);
//   - with ScalingMode::kFetchThrottle, delivered frequency is a quantised
//     duty cycle rather than the exact request;
//   - an empty run queue executes the "hot idle" loop at IPC ~1.3 — the
//     Power4+ behaviour that defeats naive utilisation-based scaling.
//
// The core is lazily synchronised: queries advance the model to the current
// simulation time, so no per-tick events are needed.  Event-driven callers
// can go further: next_interesting_time() names the next model
// discontinuity (phase boundary, quantum rotation, stolen-time end, trace
// exhaustion) and advance_to(t) jumps the model there in one call.  When a
// daemon samples the core on a fixed lattice, set_sampling_grid() makes a
// single large advance_to() internally subdivide at the lattice instants —
// reproducing the exact chunk boundaries, noise draws, overhead steals and
// counter snapshots a per-tick driver would have produced — so an
// event-driven run is bit-for-bit identical to a tick-driven one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cpu/perf_counters.h"
#include "cpu/runner.h"
#include "cpu/throttle.h"
#include "mach/machine_config.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"
#include "workload/phase.h"

namespace fvsst::cpu {

/// Simulated processor core.
class Core {
 public:
  struct Config {
    std::string name = "cpu";
    mach::MemoryLatencies latencies;
    double max_hz = 0.0;       ///< Nameplate frequency (initial setting).
    double idle_ipc = 1.3;     ///< IPC of the hot idle loop.
    /// When true the core halts while idle: no instructions retire and the
    /// halted-cycle counter advances (instead of the hot idle loop).
    bool idles_by_halting = false;
    ScalingMode scaling_mode = ScalingMode::kIdealDvfs;
    int throttle_steps = 32;
    /// Multiplicative noise (sigma) on per-interval access counts.
    double counter_noise_sigma = 0.01;
    /// Multiplicative noise (sigma) on the instruction retirement rate.
    double execution_noise_sigma = 0.005;
    /// Round-robin time slice for multiprogrammed jobs.
    double quantum_s = 0.010;
  };

  Core(sim::Simulation& sim, Config cfg, sim::Rng rng);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  const std::string& name() const { return cfg_.name; }

  /// Enqueues a job; returns its index for later queries.
  std::size_t add_workload(workload::WorkloadSpec spec);

  /// True when no unfinished real job exists (the core is running the hot
  /// idle loop).  This is the signal the paper's idle detector would send.
  bool idle();

  /// Requested frequency (one of the machine's settings).
  double frequency_hz() const { return requested_hz_; }

  /// Frequency actually delivered (after throttling quantisation).
  double effective_hz() const { return effective_hz_; }

  /// Changes the core's frequency.  Takes effect immediately; the model is
  /// synchronised to the current time first so past work is charged at the
  /// old frequency.
  void set_frequency(double hz);

  /// Reads the monotonic counters (synchronises first).
  PerfCounters read_counters();

  /// Total instructions retired by real jobs (idle loop excluded).
  double instructions_retired();

  /// Per-job retired instructions.
  double job_instructions_retired(std::size_t job);

  /// Completed passes over the phase list, summed across jobs (the
  /// throughput metric the synthetic benchmark reports).
  std::size_t passes_completed();

  /// Simulated time at which job `job` finished; negative if still running.
  /// Synchronises first so completions up to now() are visible.
  double job_finish_time(std::size_t job);

  /// Number of jobs that have finished (synchronises first).
  std::size_t jobs_finished() {
    sync();
    return jobs_finished_;
  }

  /// Phase currently executing on the core, or nullptr when idling.
  const workload::Phase* active_phase();

  /// Injects scheduler/daemon overhead: the next `seconds` of core time
  /// execute no workload instructions (used to model fvsst's own cost).
  void steal_time(double seconds);

  /// Advances the execution model to the current simulation time.
  void sync();

  // --- Event-driven advance ---------------------------------------------

  /// Advances the model to absolute time `t` (clamped to never move
  /// backwards).  With a sampling grid registered the span is subdivided at
  /// every grid instant in (synced_until, t]: each segment advances with
  /// the exact chunking a per-tick sync would have used, and each grid
  /// instant applies the recurring steal and (when enabled) records a
  /// counter snapshot.  `sync()` is `advance_to(sim.now())`.
  void advance_to(double t);

  /// Absolute time of the next model discontinuity after the last advance:
  /// the earliest of pending-stolen-time end, round-robin quantum expiry,
  /// current phase boundary, and next sampling-grid instant.  Infinity when
  /// nothing bounds the advance (halting idle, no grid).  The phase
  /// boundary uses the noise-free retirement rate, so with
  /// execution_noise_sigma > 0 it is an estimate; jumping past it is always
  /// safe (the model re-chunks), it just costs the skipped precision.
  double next_interesting_time() const;

  /// Registers the daemon's sampling lattice: instants origin + k*period
  /// for k = 0, 1, 2, ... where `origin` is itself the FIRST instant —
  /// the exact floating-point expression sim::Simulation uses to re-arm
  /// periodic events (origin is the first firing, not the schedule time).
  /// At each instant crossed by an advance the core adds
  /// `recurring_steal_s` of overhead and, when `record_history`, snapshots
  /// its counters for later replay by the sampler.  One consumer only:
  /// re-registering with a different lattice throws.
  void set_sampling_grid(double origin, double period,
                         double recurring_steal_s, bool record_history);

  bool has_sampling_grid() const { return grid_period_ > 0.0; }

  /// Moves the per-grid-instant counter snapshots accumulated since the
  /// last drain into `out` (appended in time order).
  void drain_counter_history(std::vector<PerfCounters>& out);

  /// Model-advance invocations so far (one per advance_to/sync that had
  /// work to do, counting grid-subdivision segments separately).  The
  /// skip-ahead bench pins its regression floor on this.
  std::uint64_t advance_calls() const { return advance_calls_; }

  /// Absolute time the model has been synchronised to (the lazy-sync
  /// watermark).  Queries at or before this time cost nothing.
  double synced_until() const { return synced_until_; }

  // --- Batched stepping (SoA slabs) -------------------------------------

  /// Batch-stepping entry point for structure-of-arrays slabs
  /// (cluster::Shard): advances cores[i] to `t` for every i not flagged in
  /// `skip` (null = advance all) whose cached watermark is behind `t`,
  /// then refreshes the parallel hot arrays — `synced_until[i]`,
  /// `next_interesting[i]` and `frequency_hz[i]` (any of which may be
  /// null).  Semantically identical to calling advance_to(t) on each
  /// unskipped core in turn — same chunk boundaries, same noise draws —
  /// just without re-dereferencing cold cores the arrays prove are already
  /// synced.  Returns the number of cores actually advanced.
  static std::size_t advance_batch(Core* const* cores, std::size_t n,
                                   double t, const unsigned char* skip,
                                   double* synced_until,
                                   double* next_interesting,
                                   double* frequency_hz);

 private:
  void advance(double dt, double end_time);
  WorkloadRunner* pick_runner();
  void rotate_if_quantum_expired();

  sim::Simulation& sim_;
  Config cfg_;
  sim::Rng rng_;

  double requested_hz_;
  double effective_hz_;
  ThrottleModel throttle_;

  std::vector<WorkloadRunner> jobs_;
  std::vector<double> finish_times_;
  std::size_t jobs_finished_ = 0;
  WorkloadRunner idle_runner_;

  std::size_t rr_index_ = 0;     ///< Round-robin cursor into jobs_.
  double quantum_used_s_ = 0.0;  ///< Time used by the current job's slice.

  double synced_until_ = 0.0;
  double stolen_pending_s_ = 0.0;
  PerfCounters counters_;

  // Sampling lattice (event-driven mode); period 0 = none registered.
  double grid_origin_ = 0.0;
  double grid_period_ = 0.0;
  double grid_steal_s_ = 0.0;
  bool grid_history_ = false;
  std::uint64_t grid_next_k_ = 0;  ///< Next unprocessed lattice index.
  std::vector<PerfCounters> history_;
  std::uint64_t advance_calls_ = 0;
};

}  // namespace fvsst::cpu
