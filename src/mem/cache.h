// cache.h - Set-associative cache model.
//
// The phase model in src/workload characterises workloads by per-level
// access counts; this module provides the substrate those counts come
// from: a functional (timing-free) set-associative cache with true LRU,
// composable into the P630's L1/L2/L3 hierarchy (mem/hierarchy.h).  The
// profile extractor (mem/profile_extractor.h) drives synthetic address
// streams through the hierarchy to derive apki_l2/l3/mem values from first
// principles — validating, for example, the paper's claim that the
// synthetic benchmark's large footprint makes "a miss in the L1 highly
// likely to result in a memory access".
#pragma once

#include <cstdint>
#include <vector>

namespace fvsst::mem {

/// Victim-selection policy on a set-associative miss.
enum class ReplacementPolicy {
  kLru,     ///< True least-recently-used (default; worst-case thrashing).
  kFifo,    ///< Evict the oldest fill, ignoring reuse.
  kRandom,  ///< Uniform random way (deterministic via the cache's seed).
};

/// Geometry of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint64_t line_bytes = 0;     ///< Power of two.
  std::uint64_t associativity = 0;  ///< Ways per set.
  ReplacementPolicy replacement = ReplacementPolicy::kLru;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / associativity; }
};

/// Functional set-associative cache with configurable replacement.
class Cache {
 public:
  /// Throws std::invalid_argument for non-power-of-two line size, sizes
  /// that don't divide evenly, or zero fields.  `seed` only matters for
  /// ReplacementPolicy::kRandom (kept deterministic for reproducibility).
  explicit Cache(CacheConfig config, std::uint64_t seed = 0x5eed);

  /// Looks up the line containing `address`; on a miss the line is filled
  /// (evicting the LRU way).  Returns true on hit.
  bool access(std::uint64_t address);

  /// Hit check without side effects.
  bool contains(std::uint64_t address) const;

  /// Invalidates everything (keeps statistics).
  void flush();

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }
  void reset_stats();

  const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;   ///< LRU ordering.
    std::uint64_t filled_at = 0;  ///< FIFO ordering.
    bool valid = false;
  };

  std::uint64_t set_index(std::uint64_t address) const;
  std::uint64_t tag_of(std::uint64_t address) const;

  CacheConfig config_;
  std::vector<Way> ways_;  ///< num_sets * associativity, set-major.
  std::uint64_t rng_state_;
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fvsst::mem
