#include "mem/cache.h"

#include <stdexcept>

namespace fvsst::mem {
namespace {

bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace

Cache::Cache(CacheConfig config, std::uint64_t seed)
    : config_(config), rng_state_(seed | 1) {
  if (config_.size_bytes == 0 || config_.line_bytes == 0 ||
      config_.associativity == 0) {
    throw std::invalid_argument("Cache: zero geometry field");
  }
  if (!is_power_of_two(config_.line_bytes)) {
    throw std::invalid_argument("Cache: line size must be a power of two");
  }
  if (config_.size_bytes % config_.line_bytes != 0) {
    throw std::invalid_argument("Cache: size not a multiple of line size");
  }
  if (config_.num_lines() % config_.associativity != 0) {
    throw std::invalid_argument("Cache: lines not divisible by ways");
  }
  ways_.resize(config_.num_lines());
}

std::uint64_t Cache::set_index(std::uint64_t address) const {
  return (address / config_.line_bytes) % config_.num_sets();
}

std::uint64_t Cache::tag_of(std::uint64_t address) const {
  return (address / config_.line_bytes) / config_.num_sets();
}

bool Cache::access(std::uint64_t address) {
  ++accesses_;
  ++tick_;
  const std::uint64_t set = set_index(address);
  const std::uint64_t tag = tag_of(address);
  Way* begin = &ways_[set * config_.associativity];

  for (std::uint64_t w = 0; w < config_.associativity; ++w) {
    if (begin[w].valid && begin[w].tag == tag) {
      begin[w].last_use = tick_;
      return true;
    }
  }

  // Miss: fill into an invalid way if available, else evict per policy.
  ++misses_;
  Way* victim = nullptr;
  for (std::uint64_t w = 0; w < config_.associativity; ++w) {
    if (!begin[w].valid) {
      victim = &begin[w];
      break;
    }
  }
  if (victim == nullptr) {
    switch (config_.replacement) {
      case ReplacementPolicy::kLru:
        victim = begin;
        for (std::uint64_t w = 1; w < config_.associativity; ++w) {
          if (begin[w].last_use < victim->last_use) victim = &begin[w];
        }
        break;
      case ReplacementPolicy::kFifo:
        victim = begin;
        for (std::uint64_t w = 1; w < config_.associativity; ++w) {
          if (begin[w].filled_at < victim->filled_at) victim = &begin[w];
        }
        break;
      case ReplacementPolicy::kRandom: {
        // xorshift64*: deterministic, stateful, no allocation.
        rng_state_ ^= rng_state_ >> 12;
        rng_state_ ^= rng_state_ << 25;
        rng_state_ ^= rng_state_ >> 27;
        const std::uint64_t r = rng_state_ * 0x2545F4914F6CDD1Dull;
        victim = &begin[r % config_.associativity];
        break;
      }
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  victim->filled_at = tick_;
  return false;
}

bool Cache::contains(std::uint64_t address) const {
  const std::uint64_t set = set_index(address);
  const std::uint64_t tag = tag_of(address);
  const Way* begin = &ways_[set * config_.associativity];
  for (std::uint64_t w = 0; w < config_.associativity; ++w) {
    if (begin[w].valid && begin[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& way : ways_) way.valid = false;
}

void Cache::reset_stats() {
  accesses_ = 0;
  misses_ = 0;
}

}  // namespace fvsst::mem
