#include "mem/address_stream.h"

#include <numeric>
#include <stdexcept>

namespace fvsst::mem {

StridedStream::StridedStream(std::uint64_t base,
                             std::uint64_t working_set_bytes,
                             std::uint64_t stride_bytes)
    : base_(base), size_(working_set_bytes), stride_(stride_bytes) {
  if (size_ == 0 || stride_ == 0) {
    throw std::invalid_argument("StridedStream: zero size or stride");
  }
}

std::uint64_t StridedStream::next() {
  const std::uint64_t address = base_ + offset_;
  offset_ = (offset_ + stride_) % size_;
  return address;
}

UniformRandomStream::UniformRandomStream(std::uint64_t base,
                                         std::uint64_t working_set_bytes,
                                         sim::Rng rng)
    : base_(base), size_(working_set_bytes), rng_(rng) {
  if (size_ == 0) {
    throw std::invalid_argument("UniformRandomStream: zero working set");
  }
}

std::uint64_t UniformRandomStream::next() {
  return base_ + rng_.next_u64() % size_;
}

PointerChaseStream::PointerChaseStream(std::uint64_t base,
                                       std::uint64_t working_set_bytes,
                                       std::uint64_t line_bytes,
                                       sim::Rng rng)
    : base_(base), line_(line_bytes) {
  if (line_bytes == 0 || working_set_bytes < line_bytes) {
    throw std::invalid_argument("PointerChaseStream: bad geometry");
  }
  const auto lines =
      static_cast<std::uint32_t>(working_set_bytes / line_bytes);
  // Sattolo's algorithm: a uniform random single-cycle permutation, so the
  // chase visits every line before repeating (no short cycles).
  std::vector<std::uint32_t> order(lines);
  std::iota(order.begin(), order.end(), 0);
  for (std::uint32_t i = lines - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.uniform_int(0, i - 1));
    std::swap(order[i], order[j]);
  }
  successor_.resize(lines);
  for (std::uint32_t i = 0; i + 1 < lines; ++i) {
    successor_[order[i]] = order[i + 1];
  }
  successor_[order[lines - 1]] = order[0];
  current_ = order[0];
}

std::uint64_t PointerChaseStream::next() {
  const std::uint64_t address = base_ + static_cast<std::uint64_t>(current_) *
                                            line_;
  current_ = successor_[current_];
  return address;
}

MixStream::MixStream(std::vector<std::unique_ptr<AddressStream>> parts,
                     std::vector<double> weights, sim::Rng rng)
    : parts_(std::move(parts)), rng_(rng) {
  if (parts_.empty() || parts_.size() != weights.size()) {
    throw std::invalid_argument("MixStream: parts/weights mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("MixStream: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("MixStream: zero weight");
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::uint64_t MixStream::next() {
  const double u = rng_.uniform();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return parts_[i]->next();
  }
  return parts_.back()->next();
}

}  // namespace fvsst::mem
