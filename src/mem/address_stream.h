// address_stream.h - Synthetic data-reference streams.
//
// These generate the address sequences that, pushed through the cache
// hierarchy, produce the per-level access counts the workload model is
// parameterised with.  The paper's synthetic benchmark is "constructed so
// that a miss in the L1 is highly likely to result in a memory access due
// to the large memory footprint" — i.e. a random/pointer-chase stream over
// a working set far larger than the L3.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simkit/rng.h"

namespace fvsst::mem {

/// Interface: an infinite stream of data addresses.
class AddressStream {
 public:
  virtual ~AddressStream() = default;
  virtual std::uint64_t next() = 0;
};

/// Sequential walk with a fixed stride, wrapping inside a working set.
/// Small strides are prefetch-friendly (high L1 hit rate once warm when
/// the set fits); strides >= line size touch a new line every access.
class StridedStream final : public AddressStream {
 public:
  StridedStream(std::uint64_t base, std::uint64_t working_set_bytes,
                std::uint64_t stride_bytes);
  std::uint64_t next() override;

 private:
  std::uint64_t base_;
  std::uint64_t size_;
  std::uint64_t stride_;
  std::uint64_t offset_ = 0;
};

/// Uniformly random addresses within a working set: classic capacity-miss
/// generator; hit rate at each level tracks (level size / working set).
class UniformRandomStream final : public AddressStream {
 public:
  UniformRandomStream(std::uint64_t base, std::uint64_t working_set_bytes,
                      sim::Rng rng);
  std::uint64_t next() override;

 private:
  std::uint64_t base_;
  std::uint64_t size_;
  sim::Rng rng_;
};

/// A random cyclic permutation of cache lines within the working set —
/// the canonical latency-bound pointer chase (every access depends on the
/// previous one; no spatial locality beyond the line).
class PointerChaseStream final : public AddressStream {
 public:
  PointerChaseStream(std::uint64_t base, std::uint64_t working_set_bytes,
                     std::uint64_t line_bytes, sim::Rng rng);
  std::uint64_t next() override;

 private:
  std::uint64_t base_;
  std::uint64_t line_;
  std::vector<std::uint32_t> successor_;  ///< Permutation cycle over lines.
  std::uint32_t current_ = 0;
};

/// Weighted mixture of streams: models a program interleaving hot-loop
/// accesses with cold-structure chases.
class MixStream final : public AddressStream {
 public:
  MixStream(std::vector<std::unique_ptr<AddressStream>> parts,
            std::vector<double> weights, sim::Rng rng);
  std::uint64_t next() override;

 private:
  std::vector<std::unique_ptr<AddressStream>> parts_;
  std::vector<double> cumulative_;
  sim::Rng rng_;
};

}  // namespace fvsst::mem
