#include "mem/profile_extractor.h"

#include <stdexcept>

namespace fvsst::mem {

ExtractedProfile extract_profile(AddressStream& stream,
                                 MemoryHierarchy& hierarchy,
                                 std::uint64_t measured_references,
                                 std::uint64_t warmup_references) {
  if (measured_references == 0) {
    throw std::invalid_argument("extract_profile: zero references");
  }
  for (std::uint64_t i = 0; i < warmup_references; ++i) {
    hierarchy.access(stream.next());
  }
  hierarchy.reset_stats();
  for (std::uint64_t i = 0; i < measured_references; ++i) {
    hierarchy.access(stream.next());
  }
  ExtractedProfile out;
  const auto total = static_cast<double>(hierarchy.total_accesses());
  out.references = hierarchy.total_accesses();
  out.l1_fraction = static_cast<double>(hierarchy.serviced_by_l1()) / total;
  out.l2_fraction = static_cast<double>(hierarchy.serviced_by_l2()) / total;
  out.l3_fraction = static_cast<double>(hierarchy.serviced_by_l3()) / total;
  out.mem_fraction =
      static_cast<double>(hierarchy.serviced_by_memory()) / total;
  return out;
}

workload::Phase to_phase(const std::string& name, double alpha,
                         const ExtractedProfile& profile,
                         double accesses_per_instruction,
                         double instructions) {
  if (accesses_per_instruction <= 0.0) {
    throw std::invalid_argument("to_phase: accesses/instruction must be > 0");
  }
  workload::Phase p;
  p.name = name;
  p.alpha = alpha;
  p.instructions = instructions;
  const double apki = accesses_per_instruction * 1000.0;
  p.apki_l2 = profile.l2_fraction * apki;
  p.apki_l3 = profile.l3_fraction * apki;
  p.apki_mem = profile.mem_fraction * apki;
  return p;
}

}  // namespace fvsst::mem
