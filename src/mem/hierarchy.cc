#include "mem/hierarchy.h"

namespace fvsst::mem {

MemoryHierarchy::MemoryHierarchy(CacheConfig l1, CacheConfig l2,
                                 CacheConfig l3)
    : l1_(l1), l2_(l2), l3_(l3) {}

ServiceLevel MemoryHierarchy::access(std::uint64_t address) {
  if (l1_.access(address)) {
    ++by_l1_;
    return ServiceLevel::kL1;
  }
  if (l2_.access(address)) {
    ++by_l2_;
    return ServiceLevel::kL2;
  }
  if (l3_.access(address)) {
    ++by_l3_;
    return ServiceLevel::kL3;
  }
  ++by_mem_;
  return ServiceLevel::kMemory;
}

void MemoryHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
  l3_.reset_stats();
  by_l1_ = by_l2_ = by_l3_ = by_mem_ = 0;
}

void MemoryHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  l3_.flush();
}

MemoryHierarchy MemoryHierarchy::p630() {
  // Paper Sec. 7.1 (data side): 64 KB L1 data cache, 1.44 MB unified L2
  // shared by two cores, 32 MB L3.  Line sizes per the Power4 design:
  // 128 B L1/L2, 512 B L3.
  const CacheConfig l1{64ull * 1024, 128, 2};
  const CacheConfig l2{1440ull * 1024, 128, 8};
  const CacheConfig l3{32ull * 1024 * 1024, 512, 8};
  return MemoryHierarchy(l1, l2, l3);
}

}  // namespace fvsst::mem
