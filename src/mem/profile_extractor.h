// profile_extractor.h - Derive workload phases from address streams.
//
// Bridges the cache substrate to the scheduling stack: drive an address
// stream through a MemoryHierarchy, measure which level services each
// reference, and express the result as the apki_l2/l3/mem parameters of a
// workload::Phase.  This derives from first principles the numbers the
// hand-authored profiles assert — and lets users model new applications by
// describing their reference behaviour rather than their counter rates.
#pragma once

#include <cstdint>
#include <string>

#include "mem/address_stream.h"
#include "mem/hierarchy.h"
#include "workload/phase.h"

namespace fvsst::mem {

/// Per-level service distribution of a reference stream.
struct ExtractedProfile {
  double l1_fraction = 0.0;   ///< Share of references serviced by the L1.
  double l2_fraction = 0.0;
  double l3_fraction = 0.0;
  double mem_fraction = 0.0;
  std::uint64_t references = 0;
};

/// Runs `warmup + measured` references through the hierarchy; statistics
/// are reset after warm-up so cold-start misses don't skew the profile.
ExtractedProfile extract_profile(AddressStream& stream,
                                 MemoryHierarchy& hierarchy,
                                 std::uint64_t measured_references,
                                 std::uint64_t warmup_references = 0);

/// Converts a profile into a scheduling phase.  `accesses_per_instruction`
/// is the workload's data-reference density (e.g. ~0.3 loads+stores per
/// instruction for typical integer code).
workload::Phase to_phase(const std::string& name, double alpha,
                         const ExtractedProfile& profile,
                         double accesses_per_instruction,
                         double instructions);

}  // namespace fvsst::mem
