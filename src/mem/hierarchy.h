// hierarchy.h - The P630's three-level cache hierarchy.
#pragma once

#include "mem/cache.h"

namespace fvsst::mem {

/// Which level serviced an access (kL1 = hit in the first level).
enum class ServiceLevel { kL1, kL2, kL3, kMemory };

/// An inclusive L1 -> L2 -> L3 -> memory lookup chain.
class MemoryHierarchy {
 public:
  MemoryHierarchy(CacheConfig l1, CacheConfig l2, CacheConfig l3);

  /// Looks up `address`, filling every missed level (inclusive hierarchy).
  /// Returns the level that serviced the access.
  ServiceLevel access(std::uint64_t address);

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  const Cache& l3() const { return l3_; }

  /// Per-level serviced-access counters.
  std::uint64_t serviced_by_l1() const { return by_l1_; }
  std::uint64_t serviced_by_l2() const { return by_l2_; }
  std::uint64_t serviced_by_l3() const { return by_l3_; }
  std::uint64_t serviced_by_memory() const { return by_mem_; }
  std::uint64_t total_accesses() const {
    return by_l1_ + by_l2_ + by_l3_ + by_mem_;
  }

  void reset_stats();
  void flush();

  /// The paper's platform (data side): 64 KB 2-way L1 (128 B lines),
  /// 1.44 MB -> modelled as 1.5 MB 8-way shared L2, 32 MB 8-way L3 with
  /// 512 B lines.
  static MemoryHierarchy p630();

 private:
  Cache l1_;
  Cache l2_;
  Cache l3_;
  std::uint64_t by_l1_ = 0;
  std::uint64_t by_l2_ = 0;
  std::uint64_t by_l3_ = 0;
  std::uint64_t by_mem_ = 0;
};

}  // namespace fvsst::mem
