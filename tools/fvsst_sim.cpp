// fvsst_sim - Command-line scenario driver for the fvsst simulator.
//
// Compose a machine, workloads and a power-budget timeline from flags, run
// the fvsst daemon over it, and get a per-CPU report — no C++ required.
//
// Examples:
//   # mcf on CPU 3 of a P630, supply failure at t=5s
//   fvsst_sim --workload app:mcf@0.3 --budget 560 --budget-at 5:294
//
//   # 4-node cluster, synthetic workloads, distributed scheduler
//   fvsst_sim --nodes 4 --cluster --workload synth:20@0.0 ...
//     (multiple --workload flags compose a cluster-wide assignment)

//
//   # workload from a trace file, halted-idle machine, CSV dump
//   fvsst_sim --workload trace:examples/workloads/dbtier.trace@0.0 ...
//     with --idle-signal halted --csv /tmp/out
//
// Flags:
//   --nodes N            homogeneous P630 nodes (default 1)
//   --workload S@n.c     assign workload S to node n, cpu c; S is one of
//                        synth:INTENSITY[:INSTRUCTIONS]  (looping)
//                        app:gzip|gap|mcf|health|crafty|parser|art|equake
//                        trace:FILE
//   --budget W           initial CPU power budget in watts (default: peak)
//   --budget-at T:W      budget change at time T seconds (repeatable)
//   --duration S         simulated seconds (default 10)
//   --epsilon E          acceptable predicted loss (default 0.04)
//   --variant V          two-pass | single-pass | continuous
//   --idle-signal V      os | halted | none     (default os)
//   --t MS               sampling period t in ms (default 10)
//   --multiplier N       T = N * t (default 10)
//   --cluster            use the distributed ClusterDaemon
//   --threads N          advance node cores on N threads per tick; output
//                        is byte-identical to --threads 1 (--cluster only)
//   --topology T         flat (default): one coordinator over all nodes;
//                        tree: the sharded three-tier coordinator tree
//                        (leaf shard -> aggregate -> root) for large
//                        clusters (--cluster only, homogeneous nodes)
//   --shards N           leaf shard count for --topology tree (default:
//                        ~sqrt(nodes)); the journal is bit-identical
//                        across shard counts
//   --aggregates N       aggregate-tier coordinator count (default:
//                        ~sqrt(shards))
//   --journal-topology   opt into per-shard/per-tier journal detail
//                        (depends on the shard count, so off by default)
//   --margin-controller  enable the measured-power margin feedback loop
//   --seed S             RNG seed (default 42)
//   --csv DIR            dump frequency/power traces as CSV
//   --journal FILE       write the decision journal; the extension picks
//                        the format (.jsonl: JSON lines, .fjb: compact
//                        binary), any other extension needs --journal-format
//   --journal-format F   jsonl | binary — override the extension choice
//   --chrome-trace FILE  write a Chrome trace-event JSON (Perfetto-loadable)
//   --journal-cap N      ring-buffer the journal at N events (0: unbounded)
//   --advance-mode M     event (default) skips stable phases analytically;
//                        tick advances every core at every sampling instant.
//                        Outputs are byte-identical either way.
//   --explain            record pass-1/pass-2 rationale in the journal
//   --fault-plan FILE    inject faults from a fault-plan file (see
//                        sim::FaultPlan::parse for the line format)
//   --standby            run a standby coordinator that elects itself when
//                        the leader goes silent (--cluster only)
//   --transport M        datagram (default) | reliable: ack/retransmit
//                        sessions with duplicate suppression (--cluster)
//   --failsafe K         nodes drop to their budget/N frequency after K
//                        global periods without a coordinator (--cluster)
//   --rules FILE         enable the online monitor with alert rules from
//                        FILE ("default": the built-in rule pack); alerts
//                        are journalled and summarised in the report
//   --metrics-out FILE   write a Prometheus text-format metrics snapshot
//                        at the end of the run
//   --metrics-every S    also rewrite --metrics-out every S simulated
//                        seconds (a scrape-style refresh)
//   --help               this text
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "baselines/governor_daemon.h"
#include "baselines/optimal.h"
#include "baselines/policies.h"
#include "cluster/cluster.h"
#include "cluster/job_manager.h"
#include "core/cluster_daemon.h"
#include "core/daemon.h"
#include "core/tree_daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "power/margin_controller.h"
#include "power/sensor.h"
#include "simkit/csv.h"
#include "simkit/event_log.h"
#include "simkit/log.h"
#include "simkit/monitor.h"
#include "simkit/prometheus.h"
#include "simkit/table.h"
#include "simkit/units.h"
#include "workload/app_profiles.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

using namespace fvsst;
using units::MHz;
using units::ms;

namespace {

struct Assignment {
  std::size_t node = 0;
  std::size_t cpu = 0;
  workload::WorkloadSpec spec;
};

struct BudgetChange {
  double at_s = 0.0;
  double watts = 0.0;
};

struct CliOptions {
  std::size_t nodes = 1;
  std::size_t slow_nodes = 0;  ///< Last K nodes derated to 600 MHz.
  std::optional<baselines::GovernorPolicy> governor;  ///< Replaces fvsst.
  /// Comparator policy (baselines::make_policy name) run through the real
  /// control loop in place of the two-pass scheduler.  Empty or "fvsst":
  /// the paper's scheduler.
  std::string policy;
  double smoothing = 0.0;
  std::vector<Assignment> assignments;
  /// Batch jobs: (submit time, spec); placed by the job manager.
  std::vector<std::pair<double, workload::WorkloadSpec>> batch_jobs;
  cluster::PlacementPolicy placement =
      cluster::PlacementPolicy::kLeastLoaded;
  double budget_w = -1.0;  // negative: peak
  std::vector<BudgetChange> budget_changes;
  double duration_s = 10.0;
  core::FrequencyScheduler::Options scheduler;
  core::IdleSignal idle_signal = core::IdleSignal::kOsSignal;
  double t_ms = 10.0;
  int multiplier = 10;
  bool use_cluster_daemon = false;
  int step_threads = 1;  ///< Parallel node stepping (--cluster only).
  /// "flat": one coordinator over all nodes (ClusterDaemon).  "tree": the
  /// three-tier sharded coordinator tree (TreeDaemon).  Needs --cluster.
  std::string topology = "flat";
  std::size_t shards = 0;      ///< Leaf shard count (0: ~sqrt(nodes)).
  std::size_t aggregates = 0;  ///< Aggregate fan-in (0: ~sqrt(shards)).
  bool journal_topology = false;  ///< Per-shard/per-tier journal detail.
  bool margin_controller = false;
  std::uint64_t seed = 42;
  std::string csv_dir;
  bool json = false;  ///< Machine-readable summary on stdout.
  std::string journal_path;       ///< Decision journal (.jsonl or .fjb).
  std::string journal_format;     ///< "jsonl" | "binary" | "" (by extension).
  std::string chrome_trace_path;  ///< Chrome trace-event JSON.
  std::size_t journal_cap = 0;    ///< Ring-buffer capacity (0: unbounded).
  core::AdvanceMode advance_mode = core::AdvanceMode::kEvent;
  bool explain = false;           ///< Record scheduler rationale.
  std::string fault_plan_path;    ///< Fault-injection plan file.
  bool standby = false;           ///< Run a standby coordinator (--cluster).
  double failsafe_factor = 0.0;   ///< Node fail-safe after K global periods.
  cluster::TransportMode transport = cluster::TransportMode::kDatagram;
  bool transport_set = false;     ///< --transport given (needs --cluster).
  std::string rules_path;         ///< Alert rules file, or "default".
  std::string metrics_out;        ///< Prometheus snapshot file.
  double metrics_every_s = 0.0;   ///< Periodic snapshot rewrite (0: final only).
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "fvsst_sim: %s\nrun with --help for usage\n",
               message.c_str());
  std::exit(2);
}

void print_help() {
  std::printf(
      "usage: fvsst_sim [--nodes N] [--slow-nodes K] [--workload SPEC@n.c]\n"
      "                 [--budget W] [--budget-at T:W ...] [--duration S]\n"
      "                 [--epsilon E] [--smoothing S] [--variant V]\n"
      "                 [--idle-signal os|halted|none] [--t MS]\n"
      "                 [--multiplier N] [--cluster] [--threads N]\n"
      "                 [--topology flat|tree] [--shards N]\n"
      "                 [--aggregates N] [--journal-topology]\n"
      "                 [--governor G] [--policy P]\n"
      "                 [--margin-controller] [--seed S] [--csv DIR]\n"
      "                 [--journal FILE] [--journal-format jsonl|binary]\n"
      "                 [--chrome-trace FILE] [--advance-mode tick|event]\n"
      "                 [--journal-cap N] [--explain] [--fault-plan FILE]\n"
      "                 [--standby] [--failsafe K] [--rules FILE|default]\n"
      "                 [--transport datagram|reliable]\n"
      "                 [--metrics-out FILE] [--metrics-every S]\n"
      "SPEC: synth:INTENSITY[:INSTRUCTIONS] | app:NAME | trace:FILE\n"
      "G: performance | powersave | ondemand | conservative\n"
      "P: fvsst | no-dvfs | uniform | power-down | consolidate | dbs |\n"
      "   dbs-capped | two-freq-split | lp-optimal\n"
      "(see docs/fvsst_sim.md for the full manual)\n");
}

double parse_double(const std::string& s, const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &used);
  } catch (const std::exception&) {
    usage_error(std::string("bad ") + what + ": '" + s + "'");
  }
  if (used != s.size()) {
    usage_error(std::string("trailing junk in ") + what + ": '" + s + "'");
  }
  return v;
}

Assignment parse_workload(const std::string& arg) {
  const std::size_t at = arg.rfind('@');
  if (at == std::string::npos) {
    usage_error("--workload needs SPEC@node.cpu: '" + arg + "'");
  }
  Assignment out;
  const std::string where = arg.substr(at + 1);
  const std::size_t dot = where.find('.');
  if (dot == std::string::npos) {
    usage_error("--workload placement must be node.cpu: '" + where + "'");
  }
  out.node = static_cast<std::size_t>(
      parse_double(where.substr(0, dot), "node index"));
  out.cpu = static_cast<std::size_t>(
      parse_double(where.substr(dot + 1), "cpu index"));

  const std::string spec = arg.substr(0, at);
  if (spec.rfind("synth:", 0) == 0) {
    const std::string rest = spec.substr(6);
    const std::size_t colon = rest.find(':');
    const double intensity =
        parse_double(colon == std::string::npos ? rest : rest.substr(0, colon),
                     "synth intensity");
    const double instructions =
        colon == std::string::npos
            ? 5e8
            : parse_double(rest.substr(colon + 1), "synth instructions");
    out.spec = workload::make_uniform_synthetic(intensity, instructions,
                                                /*loop=*/true);
  } else if (spec.rfind("app:", 0) == 0) {
    const std::string name = spec.substr(4);
    bool found = false;
    for (auto& app : workload::extended_applications()) {
      if (app.name == name) {
        out.spec = std::move(app);
        found = true;
        break;
      }
    }
    if (!found) usage_error("unknown app '" + name + "'");
  } else if (spec.rfind("trace:", 0) == 0) {
    try {
      out.spec = workload::load_workload_trace(spec.substr(6));
    } catch (const std::exception& e) {
      usage_error(e.what());
    }
  } else {
    usage_error("unknown workload spec '" + spec + "'");
  }
  return out;
}

BudgetChange parse_budget_at(const std::string& arg) {
  const std::size_t colon = arg.find(':');
  if (colon == std::string::npos) {
    usage_error("--budget-at needs T:W: '" + arg + "'");
  }
  return {parse_double(arg.substr(0, colon), "budget time"),
          parse_double(arg.substr(colon + 1), "budget watts")};
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opts;
  auto next_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      print_help();
      std::exit(0);
    } else if (flag == "--nodes") {
      opts.nodes = static_cast<std::size_t>(
          parse_double(next_value(i, "--nodes"), "node count"));
      if (opts.nodes == 0) usage_error("--nodes must be >= 1");
    } else if (flag == "--workload") {
      opts.assignments.push_back(parse_workload(next_value(i, "--workload")));
    } else if (flag == "--batch") {
      // SPEC@T: submit SPEC (same syntax as --workload, minus placement)
      // to the job manager at time T.  Batch jobs never loop.
      const std::string arg = next_value(i, "--batch");
      const std::size_t at = arg.rfind('@');
      if (at == std::string::npos) {
        usage_error("--batch needs SPEC@time: '" + arg + "'");
      }
      const double when = parse_double(arg.substr(at + 1), "batch time");
      Assignment parsed = parse_workload(arg.substr(0, at) + "@0.0");
      parsed.spec.loop = false;
      opts.batch_jobs.emplace_back(when, std::move(parsed.spec));
    } else if (flag == "--placement") {
      const std::string v = next_value(i, "--placement");
      if (v == "round-robin") {
        opts.placement = cluster::PlacementPolicy::kRoundRobin;
      } else if (v == "least-loaded") {
        opts.placement = cluster::PlacementPolicy::kLeastLoaded;
      } else if (v == "pack") {
        opts.placement = cluster::PlacementPolicy::kPackFirstFit;
      } else {
        usage_error("unknown placement '" + v + "'");
      }
    } else if (flag == "--budget") {
      opts.budget_w = parse_double(next_value(i, "--budget"), "budget");
    } else if (flag == "--budget-at") {
      opts.budget_changes.push_back(
          parse_budget_at(next_value(i, "--budget-at")));
    } else if (flag == "--duration") {
      opts.duration_s = parse_double(next_value(i, "--duration"), "duration");
    } else if (flag == "--epsilon") {
      opts.scheduler.epsilon =
          parse_double(next_value(i, "--epsilon"), "epsilon");
    } else if (flag == "--variant") {
      const std::string v = next_value(i, "--variant");
      if (v == "two-pass") {
        opts.scheduler.variant = core::SchedulerVariant::kTwoPass;
      } else if (v == "single-pass") {
        opts.scheduler.variant = core::SchedulerVariant::kSinglePass;
      } else if (v == "continuous") {
        opts.scheduler.variant = core::SchedulerVariant::kContinuous;
      } else {
        usage_error("unknown variant '" + v + "'");
      }
    } else if (flag == "--idle-signal") {
      const std::string v = next_value(i, "--idle-signal");
      if (v == "os") opts.idle_signal = core::IdleSignal::kOsSignal;
      else if (v == "halted") opts.idle_signal = core::IdleSignal::kHaltedCounter;
      else if (v == "none") opts.idle_signal = core::IdleSignal::kNone;
      else usage_error("unknown idle signal '" + v + "'");
    } else if (flag == "--t") {
      opts.t_ms = parse_double(next_value(i, "--t"), "t");
    } else if (flag == "--multiplier") {
      opts.multiplier = static_cast<int>(
          parse_double(next_value(i, "--multiplier"), "multiplier"));
    } else if (flag == "--slow-nodes") {
      opts.slow_nodes = static_cast<std::size_t>(
          parse_double(next_value(i, "--slow-nodes"), "slow node count"));
    } else if (flag == "--smoothing") {
      opts.smoothing =
          parse_double(next_value(i, "--smoothing"), "smoothing");
      if (opts.smoothing < 0.0 || opts.smoothing >= 1.0) {
        usage_error("--smoothing must be in [0, 1)");
      }
    } else if (flag == "--governor") {
      const std::string v = next_value(i, "--governor");
      if (v == "performance") {
        opts.governor = baselines::GovernorPolicy::kPerformance;
      } else if (v == "powersave") {
        opts.governor = baselines::GovernorPolicy::kPowersave;
      } else if (v == "ondemand") {
        opts.governor = baselines::GovernorPolicy::kOndemand;
      } else if (v == "conservative") {
        opts.governor = baselines::GovernorPolicy::kConservative;
      } else {
        usage_error("unknown governor '" + v + "'");
      }
    } else if (flag == "--policy") {
      opts.policy = next_value(i, "--policy");
    } else if (flag == "--cluster") {
      opts.use_cluster_daemon = true;
    } else if (flag == "--threads") {
      opts.step_threads = static_cast<int>(
          parse_double(next_value(i, "--threads"), "thread count"));
      if (opts.step_threads < 1) usage_error("--threads must be >= 1");
    } else if (flag == "--topology") {
      opts.topology = next_value(i, "--topology");
      if (opts.topology != "flat" && opts.topology != "tree") {
        usage_error("unknown topology '" + opts.topology +
                    "' (flat|tree)");
      }
    } else if (flag == "--shards") {
      opts.shards = static_cast<std::size_t>(
          parse_double(next_value(i, "--shards"), "shard count"));
      if (opts.shards == 0) usage_error("--shards must be >= 1");
    } else if (flag == "--aggregates") {
      opts.aggregates = static_cast<std::size_t>(
          parse_double(next_value(i, "--aggregates"), "aggregate count"));
      if (opts.aggregates == 0) usage_error("--aggregates must be >= 1");
    } else if (flag == "--journal-topology") {
      opts.journal_topology = true;
    } else if (flag == "--margin-controller") {
      opts.margin_controller = true;
    } else if (flag == "--seed") {
      opts.seed = static_cast<std::uint64_t>(
          parse_double(next_value(i, "--seed"), "seed"));
    } else if (flag == "--json") {
      opts.json = true;
    } else if (flag == "--csv") {
      opts.csv_dir = next_value(i, "--csv");
    } else if (flag == "--journal") {
      opts.journal_path = next_value(i, "--journal");
    } else if (flag == "--journal-format") {
      opts.journal_format = next_value(i, "--journal-format");
      if (opts.journal_format != "jsonl" && opts.journal_format != "binary") {
        usage_error("--journal-format must be jsonl or binary, not '" +
                    opts.journal_format + "'");
      }
    } else if (flag == "--advance-mode") {
      const std::string v = next_value(i, "--advance-mode");
      if (v == "tick") opts.advance_mode = core::AdvanceMode::kTick;
      else if (v == "event") opts.advance_mode = core::AdvanceMode::kEvent;
      else usage_error("unknown advance mode '" + v + "'");
    } else if (flag == "--chrome-trace") {
      opts.chrome_trace_path = next_value(i, "--chrome-trace");
    } else if (flag == "--journal-cap") {
      opts.journal_cap = static_cast<std::size_t>(
          parse_double(next_value(i, "--journal-cap"), "journal cap"));
    } else if (flag == "--explain") {
      opts.explain = true;
    } else if (flag == "--fault-plan") {
      opts.fault_plan_path = next_value(i, "--fault-plan");
    } else if (flag == "--transport") {
      const std::string v = next_value(i, "--transport");
      if (v == "datagram") opts.transport = cluster::TransportMode::kDatagram;
      else if (v == "reliable") opts.transport = cluster::TransportMode::kReliable;
      else usage_error("unknown transport '" + v + "' (datagram|reliable)");
      opts.transport_set = true;
    } else if (flag == "--standby") {
      opts.standby = true;
    } else if (flag == "--failsafe") {
      opts.failsafe_factor =
          parse_double(next_value(i, "--failsafe"), "failsafe factor");
      if (opts.failsafe_factor <= 0.0) {
        usage_error("--failsafe must be > 0 (global periods of silence)");
      }
    } else if (flag == "--rules") {
      opts.rules_path = next_value(i, "--rules");
    } else if (flag == "--metrics-out") {
      opts.metrics_out = next_value(i, "--metrics-out");
    } else if (flag == "--metrics-every") {
      opts.metrics_every_s =
          parse_double(next_value(i, "--metrics-every"), "metrics period");
      if (opts.metrics_every_s <= 0.0) {
        usage_error("--metrics-every must be > 0 seconds");
      }
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  return opts;
}

/// Format for --journal: an explicit --journal-format wins, otherwise the
/// file extension decides (.jsonl / .fjb).  Anything else is rejected so a
/// typo never silently produces the wrong encoding.
sim::JournalFormat resolve_journal_format(const CliOptions& opts) {
  if (opts.journal_format == "jsonl") return sim::JournalFormat::kJsonl;
  if (opts.journal_format == "binary") return sim::JournalFormat::kBinary;
  const std::string ext =
      std::filesystem::path(opts.journal_path).extension().string();
  if (ext == ".jsonl") return sim::JournalFormat::kJsonl;
  if (ext == ".fjb") return sim::JournalFormat::kBinary;
  usage_error("--journal '" + opts.journal_path + "': cannot infer format" +
              (ext.empty() ? " (no extension)"
                           : " from extension '" + ext + "'") +
              "; use .jsonl or .fjb, or pass --journal-format jsonl|binary");
}

}  // namespace

int main(int argc, char** argv) {
  sim::init_log_level_from_env();
  const CliOptions opts = parse_args(argc, argv);

  sim::Simulation sim;
  sim::Rng rng(opts.seed);
  mach::MachineConfig machine = mach::p630();
  if (opts.idle_signal == core::IdleSignal::kHaltedCounter) {
    machine.idles_by_halting = true;
  }
  if (opts.slow_nodes > opts.nodes) {
    usage_error("--slow-nodes exceeds --nodes");
  }
  if ((opts.standby || opts.failsafe_factor > 0.0) &&
      !opts.use_cluster_daemon) {
    usage_error("--standby/--failsafe require --cluster");
  }
  if (opts.transport_set && !opts.use_cluster_daemon) {
    usage_error("--transport requires --cluster");
  }
  if (opts.step_threads > 1 && !opts.use_cluster_daemon) {
    usage_error("--threads requires --cluster");
  }
  const bool tree_topology = opts.topology == "tree";
  if (tree_topology && !opts.use_cluster_daemon) {
    usage_error("--topology tree requires --cluster");
  }
  if ((opts.shards > 0 || opts.aggregates > 0 || opts.journal_topology) &&
      !tree_topology) {
    usage_error("--shards/--aggregates/--journal-topology require "
                "--topology tree");
  }
  if (tree_topology && opts.slow_nodes > 0) {
    // The tree's compressed histogram is indexed by table point; mixed
    // tables have no shared bucket space.
    usage_error("--topology tree requires a homogeneous cluster "
                "(no --slow-nodes)");
  }
  if (tree_topology && opts.governor) {
    usage_error("--topology tree and --governor are mutually exclusive");
  }
  if (tree_topology && !opts.policy.empty() && opts.policy != "fvsst") {
    usage_error("--topology tree runs the fvsst scheduler only "
                "(leaf pass 1 + root cap profile); --policy is flat-only");
  }
  if (tree_topology && opts.smoothing != 0.0) {
    usage_error("--smoothing is not supported with --topology tree");
  }
  std::vector<mach::MachineConfig> configs(opts.nodes, machine);
  for (std::size_t i = opts.nodes - opts.slow_nodes; i < opts.nodes; ++i) {
    configs[i] = mach::derated(machine, 600e6);
  }
  cluster::Cluster cluster =
      cluster::Cluster::heterogeneous(sim, configs, rng);

  for (const auto& a : opts.assignments) {
    if (a.node >= cluster.node_count() ||
        a.cpu >= cluster.node(a.node).cpu_count()) {
      usage_error("workload placement out of range");
    }
    cluster.core({a.node, a.cpu}).add_workload(a.spec);
  }

  const double peak =
      static_cast<double>(cluster.cpu_count()) * 140.0;
  power::PowerBudget budget(opts.budget_w > 0 ? opts.budget_w : peak);
  for (const auto& change : opts.budget_changes) {
    sim.schedule_at(change.at_s,
                    [&budget, w = change.watts] { budget.set_limit_w(w); });
  }

  // Journal: one log shared by whichever daemon runs; files written after
  // the run.  --explain works even without an output file (it enriches
  // ScheduleResult), but is most useful combined with --journal.
  const bool want_journal =
      !opts.journal_path.empty() || !opts.chrome_trace_path.empty();
  const sim::JournalFormat journal_format =
      opts.journal_path.empty() ? sim::JournalFormat::kJsonl
                                : resolve_journal_format(opts);
  sim::EventLog journal(opts.journal_cap);

  sim::FaultPlan fault_plan;
  if (!opts.fault_plan_path.empty()) {
    std::ifstream plan_in(opts.fault_plan_path);
    if (!plan_in) {
      usage_error("cannot open fault plan '" + opts.fault_plan_path + "'");
    }
    try {
      fault_plan = sim::FaultPlan::parse(plan_in);
    } catch (const std::runtime_error& err) {
      usage_error(opts.fault_plan_path + ": " + err.what());
    }
  }
  const bool have_faults = !fault_plan.empty();

  if (opts.metrics_every_s > 0.0 && opts.metrics_out.empty()) {
    usage_error("--metrics-every needs --metrics-out");
  }

  // The online monitor (declared before the daemons so it outlives them:
  // they feed it from their destructors' perspective until the run ends).
  std::unique_ptr<sim::monitor::Monitor> monitor;
  if (!opts.rules_path.empty()) {
    sim::monitor::RuleSet rules;
    try {
      if (opts.rules_path == "default") {
        rules = sim::monitor::RuleSet::parse_string(
            sim::monitor::default_rule_pack());
      } else {
        std::ifstream rules_in(opts.rules_path);
        if (!rules_in) {
          usage_error("cannot open rules '" + opts.rules_path + "'");
        }
        rules = sim::monitor::RuleSet::parse(rules_in);
      }
    } catch (const std::runtime_error& err) {
      usage_error(opts.rules_path + ": " + err.what());
    }
    sim::monitor::Monitor::Options mopts;
    if (want_journal) mopts.journal = &journal;
    monitor =
        std::make_unique<sim::monitor::Monitor>(rules, std::move(mopts));
  }

  // Comparator policy: wrap a baselines::Policy in a PolicyStageAdapter and
  // hand the daemons a factory — coordinators rebuild their engine on crash
  // restart, so they need the recipe, not a single instance.  "fvsst" means
  // the default scheduler stage (no factory).
  core::PolicyStageFactory policy_factory;
  if (!opts.policy.empty() && opts.policy != "fvsst") {
    if (opts.governor) {
      usage_error("--policy and --governor are mutually exclusive");
    }
    if (!baselines::make_policy(opts.policy, opts.scheduler)) {
      usage_error("unknown policy '" + opts.policy + "'");
    }
    policy_factory = [name = opts.policy](
                         const mach::FrequencyTable&,
                         const mach::MemoryLatencies&,
                         const core::FrequencyScheduler::Options& sched)
        -> std::unique_ptr<core::PolicyStage> {
      return std::make_unique<baselines::PolicyStageAdapter>(
          baselines::make_policy(name, sched));
    };
  }

  core::DaemonConfig dcfg;
  dcfg.t_sample_s = opts.t_ms * ms;
  dcfg.schedule_every_n_samples = opts.multiplier;
  dcfg.scheduler = opts.scheduler;
  dcfg.scheduler.explain = opts.explain;
  dcfg.idle_signal = opts.idle_signal;
  dcfg.estimate_smoothing = opts.smoothing;
  dcfg.advance_mode = opts.advance_mode;
  if (want_journal) dcfg.journal = &journal;
  if (have_faults) dcfg.fault_plan = &fault_plan;
  dcfg.monitor = monitor.get();
  dcfg.policy_factory = policy_factory;

  std::unique_ptr<core::FvsstDaemon> daemon;
  std::unique_ptr<core::ClusterDaemon> cluster_daemon;
  std::unique_ptr<core::TreeDaemon> tree_daemon;
  std::unique_ptr<baselines::GovernorDaemon> governor;
  if (opts.governor) {
    baselines::GovernorDaemon::Config gcfg;
    gcfg.policy = *opts.governor;
    gcfg.period_s = opts.t_ms * ms;
    if (want_journal) gcfg.journal = &journal;
    governor = std::make_unique<baselines::GovernorDaemon>(
        sim, cluster, machine.freq_table, gcfg);
  } else if (opts.use_cluster_daemon && tree_topology) {
    core::TreeDaemonConfig tcfg;
    tcfg.t_sample_s = dcfg.t_sample_s;
    tcfg.schedule_every_n_samples = dcfg.schedule_every_n_samples;
    tcfg.shards = opts.shards;
    tcfg.aggregates = opts.aggregates;
    tcfg.advance_mode = opts.advance_mode;
    tcfg.step_threads = opts.step_threads;
    tcfg.idle_signal = opts.idle_signal;
    tcfg.scheduler = dcfg.scheduler;
    tcfg.transport = opts.transport;
    tcfg.standby_root = opts.standby;
    tcfg.failsafe_factor = opts.failsafe_factor;
    if (want_journal) tcfg.journal = &journal;
    if (have_faults) tcfg.fault_plan = &fault_plan;
    tcfg.monitor = monitor.get();
    tcfg.journal_topology = opts.journal_topology;
    tree_daemon = std::make_unique<core::TreeDaemon>(
        sim, cluster, machine.freq_table, budget, tcfg);
  } else if (opts.use_cluster_daemon) {
    core::ClusterDaemonConfig ccfg;
    ccfg.t_sample_s = dcfg.t_sample_s;
    ccfg.schedule_every_n_samples = dcfg.schedule_every_n_samples;
    ccfg.scheduler = dcfg.scheduler;
    ccfg.idle_signal = opts.idle_signal;
    ccfg.advance_mode = opts.advance_mode;
    if (want_journal) ccfg.journal = &journal;
    if (have_faults) ccfg.fault_plan = &fault_plan;
    ccfg.failover.standby = opts.standby;
    ccfg.failover.node_failsafe_factor = opts.failsafe_factor;
    ccfg.transport = opts.transport;
    ccfg.step_threads = opts.step_threads;
    ccfg.monitor = monitor.get();
    ccfg.policy_factory = policy_factory;
    cluster_daemon = std::make_unique<core::ClusterDaemon>(
        sim, cluster, machine.freq_table, budget, ccfg);
  } else {
    daemon = std::make_unique<core::FvsstDaemon>(
        sim, cluster, machine.freq_table, budget, dcfg);
  }

  std::unique_ptr<cluster::JobManager> job_manager;
  if (!opts.batch_jobs.empty()) {
    job_manager =
        std::make_unique<cluster::JobManager>(sim, cluster, opts.placement);
    for (auto& [when, spec] : opts.batch_jobs) {
      job_manager->submit_at(when, spec);
    }
  }

  std::unique_ptr<power::MarginController> margin;
  power::PowerSensor* margin_sensor = nullptr;  // set once the sensor exists
  if (opts.margin_controller) {
    // Under fault injection the controller reads the (faultable) sensor —
    // noisy or stuck readings then feed back into the margin, as they
    // would in a real deployment.  Fault-free runs keep reading the model
    // directly so their outputs stay bit-for-bit unchanged.
    if (have_faults) {
      margin = std::make_unique<power::MarginController>(
          sim, budget,
          [&margin_sensor] { return margin_sensor->last_sample_w(); });
    } else {
      margin = std::make_unique<power::MarginController>(
          sim, budget, [&] { return cluster.cpu_power_w(); });
    }
  }

  power::PowerSensor sensor(sim, [&] { return cluster.cpu_power_w(); },
                            5 * ms);
  margin_sensor = &sensor;
  if (have_faults) {
    sensor.set_fault_plan(&fault_plan, want_journal ? &journal : nullptr);
  }

  // Prometheus exposition: snapshot semantics, so each write replaces the
  // file — a scraper (or scripts/check.sh) always sees one consistent
  // snapshot.  Works with or without --rules; without, it exports just the
  // active daemon's registry.
  sim::MetricRegistry* metrics_registry =
      daemon ? &daemon->telemetry()
             : cluster_daemon ? &cluster_daemon->telemetry()
                              : tree_daemon ? &tree_daemon->telemetry()
                                            : governor
                                                  ? &governor->telemetry()
                                                  : nullptr;
  bool metrics_write_failed = false;
  const auto write_metrics = [&]() {
    std::ofstream out(opts.metrics_out, std::ios::out | std::ios::trunc);
    if (out) sim::write_prometheus(out, metrics_registry, monitor.get(),
                                   sim.now());
    out.flush();
    if (!out) metrics_write_failed = true;
  };
  if (!opts.metrics_out.empty() && opts.metrics_every_s > 0.0) {
    sim.schedule_every(opts.metrics_every_s, write_metrics);
  }

  // Streaming journal: an unbounded journal headed for a plain JSONL or
  // binary file is flushed to disk as the run produces events, so memory
  // stays bounded at scale.  A chrome trace needs the whole log at the end
  // and a --journal-cap ring drops events after the fact, so either keeps
  // the buffered end-of-run path (as does a path that fails to open — the
  // buffered write reports that error).
  const bool journal_is_binary =
      journal_format == sim::JournalFormat::kBinary;
  std::ofstream journal_stream_out;
  std::unique_ptr<sim::JournalWriter> journal_stream;
  if (!opts.journal_path.empty() && opts.journal_cap == 0 &&
      opts.chrome_trace_path.empty()) {
    journal_stream_out.open(opts.journal_path,
                            journal_is_binary
                                ? std::ios::out | std::ios::binary
                                : std::ios::out);
    if (journal_stream_out) {
      if (journal_is_binary) {
        journal_stream =
            std::make_unique<sim::BinaryJournalWriter>(journal_stream_out);
      } else {
        journal_stream =
            std::make_unique<sim::JsonlStreamWriter>(journal_stream_out);
      }
      journal.stream_to(journal_stream.get());
    }
  }

  int exit_code = 0;
  try {
    sim.run_for(opts.duration_s);
  } catch (const sim::JournalWriteError& err) {
    // A mid-run flush hit a dead sink (disk full, closed pipe).  The run
    // is incomplete, so report and bail rather than print a bogus summary.
    std::fprintf(stderr, "fvsst_sim: journal '%s': %s\n",
                 opts.journal_path.c_str(), err.what());
    journal.stream_to(nullptr);
    return 1;
  }

  // ---- Journal exports --------------------------------------------------
  const bool streamed_journal = journal_stream != nullptr;
  if (journal_stream) {
    bool stream_failed = false;
    try {
      journal.flush_stream();
      journal_stream->flush();
    } catch (const sim::JournalWriteError& err) {
      std::fprintf(stderr, "fvsst_sim: journal '%s': %s\n",
                   opts.journal_path.c_str(), err.what());
      stream_failed = true;
    }
    journal.stream_to(nullptr);
    journal_stream.reset();
    journal_stream_out.flush();
    if (stream_failed || !journal_stream_out) {
      if (!stream_failed) {
        std::fprintf(stderr, "fvsst_sim: failed to write journal '%s'\n",
                     opts.journal_path.c_str());
      }
      exit_code = 1;
    } else {
      std::fprintf(stderr, "[journal] wrote %zu events to %s%s\n",
                   journal.streamed(), opts.journal_path.c_str(), "");
    }
  }
  const auto write_journal_file = [&](const std::string& path, auto writer,
                                      const char* what, bool binary) {
    std::ofstream out(path, binary ? std::ios::out | std::ios::binary
                                   : std::ios::out);
    try {
      if (out) writer(out, journal);
    } catch (const sim::JournalWriteError& err) {
      std::fprintf(stderr, "fvsst_sim: %s '%s': %s\n", what, path.c_str(),
                   err.what());
      exit_code = 1;
      return;
    }
    out.flush();
    if (!out) {
      std::fprintf(stderr, "fvsst_sim: failed to write %s '%s'\n", what,
                   path.c_str());
      exit_code = 1;
      return;
    }
    std::fprintf(stderr, "[journal] wrote %zu events to %s%s\n",
                 journal.size(), path.c_str(),
                 journal.dropped()
                     ? (" (" + std::to_string(journal.dropped()) +
                        " dropped by --journal-cap)").c_str()
                     : "");
  };
  if (!opts.journal_path.empty() && !streamed_journal) {
    write_journal_file(opts.journal_path,
                       [&](std::ostream& o, const sim::EventLog& l) {
                         if (journal_is_binary) sim::write_binary(o, l);
                         else sim::write_jsonl(o, l);
                       },
                       "journal", journal_is_binary);
  }
  if (!opts.chrome_trace_path.empty()) {
    write_journal_file(opts.chrome_trace_path,
                       [](std::ostream& o, const sim::EventLog& l) {
                         sim::write_chrome_trace(o, l);
                       },
                       "chrome trace", /*binary=*/false);
  }
  if (!opts.metrics_out.empty()) {
    write_metrics();
    if (metrics_write_failed) {
      std::fprintf(stderr, "fvsst_sim: failed to write metrics '%s'\n",
                   opts.metrics_out.c_str());
      exit_code = 1;
    } else {
      std::fprintf(stderr, "[metrics] wrote %s\n", opts.metrics_out.c_str());
    }
  }

  // ---- Report -----------------------------------------------------------
  if (opts.json) {
    std::printf("{\n");
    if (monitor) {
      // Extra top-level key, only with --rules, so existing consumers of
      // the plain summary see byte-identical output.
      std::printf("  \"alerts\": {\"raised\": %zu, \"cleared\": %zu, "
                  "\"firing\": [",
                  monitor->alerts_raised(), monitor->alerts_cleared());
      bool first_alert = true;
      for (std::size_t i = 0; i < monitor->rules().size(); ++i) {
        if (!monitor->alerts()[i].firing) continue;
        std::printf("%s\"%s\"", first_alert ? "" : ", ",
                    json_escape(monitor->rules()[i].name).c_str());
        first_alert = false;
      }
      std::printf("]},\n");
    }
    std::printf("  \"nodes\": %zu,\n  \"cpus\": %zu,\n"
                "  \"simulated_s\": %.6f,\n  \"budget_w\": %.3f,\n"
                "  \"effective_budget_w\": %.3f,\n  \"cpu_power_w\": %.3f,\n"
                "  \"compliant\": %s,\n  \"mean_power_w\": %.3f,\n"
                "  \"energy_j\": %.3f,\n  \"cpus_detail\": [\n",
                cluster.node_count(), cluster.cpu_count(), sim.now(),
                budget.limit_w(), budget.effective_limit_w(),
                cluster.cpu_power_w(),
                cluster.cpu_power_w() <= budget.effective_limit_w() + 1e-9
                    ? "true"
                    : "false",
                sensor.mean_power_w(), sensor.energy_j());
    bool first = true;
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      for (std::size_t c = 0; c < cluster.node(n).cpu_count(); ++c) {
        auto& core_ref = cluster.core({n, c});
        std::printf(
            "%s    {\"node\": %zu, \"cpu\": %zu, \"freq_hz\": %.0f, "
            "\"idle\": %s, \"instructions\": %.6e, \"name\": \"%s\"}",
            first ? "" : ",\n", n, c, core_ref.frequency_hz(),
            core_ref.idle() ? "true" : "false",
            core_ref.instructions_retired(),
            json_escape(core_ref.name()).c_str());
        first = false;
      }
    }
    std::printf("\n  ]\n}\n");
    return exit_code;
  }
  std::printf("fvsst_sim: %zu node(s), %zu CPU(s), %.1f s simulated\n",
              cluster.node_count(), cluster.cpu_count(), sim.now());
  std::printf("budget: %.1f W effective (raw %.1f W, margin %.1f%%)\n",
              budget.effective_limit_w(), budget.limit_w(),
              budget.margin_fraction() * 100.0);
  std::printf("CPU power now: %.1f W (%s); mean %.1f W; energy %.1f J\n",
              cluster.cpu_power_w(),
              cluster.cpu_power_w() <= budget.effective_limit_w() + 1e-9
                  ? "compliant"
                  : "OVER BUDGET",
              sensor.mean_power_w(), sensor.energy_j());
  if (daemon) {
    if (policy_factory) std::printf("policy: %s\n", opts.policy.c_str());
    std::printf("schedules run: %zu\n", daemon->schedules_run());
  } else if (cluster_daemon) {
    if (policy_factory) std::printf("policy: %s\n", opts.policy.c_str());
    std::printf("global rounds: %zu\n", cluster_daemon->rounds());
  } else if (tree_daemon) {
    std::printf("topology: tree, %zu shard(s), %zu aggregate(s)\n",
                tree_daemon->shard_count(), tree_daemon->aggregate_count());
    std::printf("tree rounds: %zu; summaries %zu (%zu bytes up); "
                "last lag %.1f us; epoch %llu\n",
                tree_daemon->rounds(), tree_daemon->summaries_sent(),
                tree_daemon->summary_bytes_sent(),
                tree_daemon->last_lag_s() * 1e6,
                static_cast<unsigned long long>(tree_daemon->epoch()));
  } else if (governor) {
    std::printf("governor: %s, %zu evaluations\n",
                baselines::governor_name(*opts.governor).c_str(),
                governor->evaluations());
  }
  if (have_faults) {
    std::printf("faults: %zu spec(s), seed %llu; sensor samples faulted %zu",
                fault_plan.size(),
                static_cast<unsigned long long>(fault_plan.seed()),
                sensor.faulted_samples());
    if (daemon) {
      std::printf("; degraded CPUs now %zu, retrying %zu",
                  daemon->loop().degraded_cpu_count(),
                  daemon->loop().retrying_cpu_count());
    } else if (cluster_daemon) {
      std::printf("; messages lost %zu, stale nodes now %zu",
                  cluster_daemon->messages_lost(),
                  cluster_daemon->stale_node_count());
    } else if (tree_daemon) {
      std::printf("; fail-safe shards now %zu",
                  tree_daemon->failsafe_shard_count());
    }
    std::printf("\n");
  }
  if (monitor) {
    std::printf(
        "monitor: %zu rule(s), %zu evaluation(s); "
        "alerts raised %zu, cleared %zu, firing %zu\n",
        monitor->rules().size(), monitor->evaluations(),
        monitor->alerts_raised(), monitor->alerts_cleared(),
        monitor->firing_count());
    for (std::size_t i = 0; i < monitor->rules().size(); ++i) {
      const auto& state = monitor->alerts()[i];
      if (!state.firing) continue;
      std::printf("  ALERT %s [%s]: value %.6g since t=%.3f s (%s)\n",
                  monitor->rules()[i].name.c_str(),
                  std::string(sim::monitor::severity_name(
                                  monitor->rules()[i].severity))
                      .c_str(),
                  state.value, state.raised_t,
                  monitor->rules()[i].expression().c_str());
    }
  }

  sim::TextTable out("Per-CPU state at end of run");
  out.set_header({"cpu", "freq MHz", "idle", "instr retired", "mean IPC"});
  std::size_t flat = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    for (std::size_t c = 0; c < cluster.node(n).cpu_count(); ++c, ++flat) {
      auto& core_ref = cluster.core({n, c});
      const auto counters = core_ref.read_counters();
      out.add_row({"node" + std::to_string(n) + ".cpu" + std::to_string(c),
                   sim::TextTable::num(core_ref.frequency_hz() / MHz, 0),
                   core_ref.idle() ? "yes" : "no",
                   sim::TextTable::num(core_ref.instructions_retired() / 1e9,
                                       2) + "e9",
                   sim::TextTable::num(counters.ipc(), 3)});
    }
  }
  out.print();

  if (job_manager) {
    sim::TextTable batch("Batch jobs");
    batch.set_header({"job", "placed on", "turnaround"});
    for (std::size_t j = 0; j < job_manager->submitted(); ++j) {
      const auto& record = job_manager->job(j);
      batch.add_row(
          {record.name,
           "node" + std::to_string(record.placed_on.node) + ".cpu" +
               std::to_string(record.placed_on.cpu),
           record.finished_at >= 0
               ? sim::TextTable::num(record.finished_at - record.submitted_at,
                                     2) + " s"
               : "(running)"});
    }
    batch.print();
  }

  if (!opts.csv_dir.empty() && daemon) {
    std::error_code ec;
    std::filesystem::create_directories(opts.csv_dir, ec);
    std::size_t csv_failures = 0;
    for (std::size_t i = 0; i < daemon->cpu_count(); ++i) {
      const std::string path =
          opts.csv_dir + "/cpu" + std::to_string(i) + "_freq.csv";
      if (sim::write_series_csv(path, {&daemon->granted_freq_trace(i),
                                       &daemon->desired_freq_trace(i)},
                                dcfg.t_sample_s)) {
        std::printf("[csv] wrote %s\n", path.c_str());
      } else {
        ++csv_failures;
      }
    }
    const std::string ppath = opts.csv_dir + "/cpu_power.csv";
    if (sim::write_series_csv(ppath, {&sensor.trace()}, 5 * ms)) {
      std::printf("[csv] wrote %s\n", ppath.c_str());
    } else {
      ++csv_failures;
    }
    if (csv_failures > 0) {
      std::fprintf(stderr,
                   "fvsst_sim: warning: %zu CSV file(s) could not be written "
                   "under '%s'\n",
                   csv_failures, opts.csv_dir.c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}
