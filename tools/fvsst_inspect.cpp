// fvsst_inspect - Reads a decision journal (fvsst_sim --journal) and prints
// a run summary, checks scheduling invariants, diffs two runs, or converts
// between encodings.
//
// Usage:
//   fvsst_inspect JOURNAL             per-run summary
//   fvsst_inspect JOURNAL --check     verify invariants; exit 1 on violation
//   fvsst_inspect JOURNAL --diff B    compare decisions; exit 1 on divergence
//   fvsst_inspect JOURNAL --to-jsonl OUT
//                                     re-emit as JSON lines ('-': stdout)
//   fvsst_inspect JOURNAL --chrome-trace OUT
//                                     export as Chrome trace-event JSON
//
// Journals may be JSON lines or the compact "FJB1" binary record
// (fvsst_sim --journal foo.fjb); the encoding is sniffed from the first
// bytes, so every mode accepts either.  --to-jsonl on a binary journal
// reproduces the exact JSONL bytes fvsst_sim's buffered JSONL path would
// have written for the same run — the lossless converter.  --chrome-trace
// renders any journal, including a binary one recorded without fvsst_sim's
// live --chrome-trace flag, into a file Perfetto / chrome://tracing loads
// directly.
//
// The checks (--check):
//   1. total power <= budget whenever the scheduler claims feasibility;
//   2. each granted frequency is an operating point of its CPU's table and
//      carries that point's minimum stable voltage (pass 3);
//   3. the scheduling period T restarts after a budget trigger (SMP daemon
//      journals only — declared by run_meta t_restarts).
// All checking logic lives in sim::JournalChecker / sim::diff_journals
// (src/simkit/event_log.h); this binary is the command-line face.  Summary,
// --check and --to-jsonl run as a single streaming pass (sim::for_each_jsonl
// / sim::for_each_binary), so a multi-gigabyte journal is inspected in
// bounded memory; only --diff loads journals whole.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "simkit/event_log.h"
#include "simkit/table.h"

using namespace fvsst;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "fvsst_inspect: %s\n"
               "usage: fvsst_inspect JOURNAL [--check] [--diff OTHER] "
               "[--to-jsonl OUT] [--chrome-trace OUT]\n",
               message.c_str());
  std::exit(2);
}

/// One streaming pass in whichever encoding the sniff reported.  The two
/// readers share the delivery and torn-tail contracts, so callers only
/// differ in which decoder runs.
std::size_t for_each_event(std::istream& in, sim::JournalFormat format,
                           const std::function<void(sim::Event&&)>& fn,
                           sim::JsonlReadReport* report) {
  return format == sim::JournalFormat::kBinary
             ? sim::for_each_binary(in, fn, report)
             : sim::for_each_jsonl(in, fn, report);
}

sim::EventLog load(const std::string& path) {
  // std::ios::binary keeps the FJB1 byte stream untranslated; it is a
  // no-op for JSONL text.
  std::ifstream in(path, std::ios::binary);
  if (!in) usage_error("cannot open journal '" + path + "'");
  try {
    // Tolerant load: a torn final record (the writer died mid-record) is a
    // fact about the run worth inspecting, not a reason to refuse it.
    const sim::JournalFormat format = sim::detect_journal_format(in);
    sim::JsonlReadReport report;
    sim::EventLog log = format == sim::JournalFormat::kBinary
                            ? sim::read_binary(in, &report)
                            : sim::read_jsonl(in, &report);
    if (report.torn_tail) {
      std::fprintf(stderr,
                   "fvsst_inspect: %s: torn final record dropped (%s); "
                   "recovered %zu complete event(s)\n",
                   path.c_str(), report.error.c_str(), log.size());
    }
    return log;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fvsst_inspect: %s: %s\n", path.c_str(), e.what());
    std::exit(2);
  }
}

/// --to-jsonl: stream the journal out as JSON lines.  For a binary input
/// this emits, byte for byte, the JSONL that fvsst_sim's buffered JSONL
/// path would have written; a JSONL input round-trips unchanged.
int run_to_jsonl(const std::string& journal_path,
                 const std::string& out_path) {
  std::ifstream in(journal_path, std::ios::binary);
  if (!in) usage_error("cannot open journal '" + journal_path + "'");
  const sim::JournalFormat format = sim::detect_journal_format(in);

  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (out_path != "-") {
    file_out.open(out_path, std::ios::binary);
    if (!file_out) usage_error("cannot open output '" + out_path + "'");
    out = &file_out;
  }

  std::string buffer;
  sim::JsonlReadReport report;
  std::size_t delivered = 0;
  try {
    delivered = for_each_event(in, format,
                               [&](sim::Event&& e) {
                                 sim::append_event_jsonl(buffer, e);
                                 if (buffer.size() >= 64 * 1024) {
                                   out->write(buffer.data(),
                                              static_cast<std::streamsize>(
                                                  buffer.size()));
                                   buffer.clear();
                                 }
                               },
                               &report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fvsst_inspect: %s: %s\n", journal_path.c_str(),
                 e.what());
    return 2;
  }
  out->write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out->flush();
  if (!*out) {
    std::fprintf(stderr, "fvsst_inspect: failed to write '%s'\n",
                 out_path.c_str());
    return 2;
  }
  if (report.torn_tail) {
    std::fprintf(stderr,
                 "fvsst_inspect: %s: torn final record dropped (%s); "
                 "converted %zu complete event(s)\n",
                 journal_path.c_str(), report.error.c_str(), delivered);
  }
  // Progress goes to stderr so '-' leaves pure JSONL on stdout.
  std::fprintf(stderr, "[convert] wrote %zu event(s) as JSONL to %s\n",
               delivered, out_path.c_str());
  return 0;
}

/// --chrome-trace: convert the journal into Chrome trace-event JSON.  The
/// trace writer needs cross-event context (stage slices nest under their
/// cycle, counter tracks close at the run's end), so this mode loads the
/// journal whole — the tolerant load, like every other mode, so a torn
/// tail still converts.
int run_chrome_trace(const std::string& journal_path,
                     const std::string& out_path) {
  const sim::EventLog log = load(journal_path);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) usage_error("cannot open output '" + out_path + "'");
  sim::write_chrome_trace(out, log);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "fvsst_inspect: failed to write '%s'\n",
                 out_path.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "[convert] wrote chrome trace for %zu event(s) to %s\n",
               log.size(), out_path.c_str());
  return 0;
}

// Summary aggregates, filled by one streaming pass over the journal.  The
// state here is bounded by the variety of the journal (event types, CPUs,
// distinct frequencies), not its length, so arbitrarily long journals
// summarise in constant memory.
struct SummaryStats {
  std::size_t count = 0;
  double t_lo = 0.0;
  double t_hi = 0.0;
  bool have_meta = false;
  std::string meta_daemon;
  bool meta_has_daemon = false;
  double meta_cpus = 0.0;
  double meta_t_sample = 0.0;
  double meta_multiplier = 0.0;
  double meta_t_restarts = 0.0;
  std::map<std::string, std::size_t> by_type;
  std::map<std::string, std::size_t> by_trigger;
  std::map<int, std::pair<std::size_t, std::map<double, std::size_t>>> by_cpu;
  std::size_t infeasible = 0;
  std::vector<double> budget_moves;
  std::map<std::string, std::size_t> faults_by_kind;
  std::map<std::string, std::size_t> degraded_by_reason;
  std::map<std::string, std::size_t> lost_by_cause;
  std::vector<std::pair<double, std::string>> epoch_moves;  // (epoch, reason)
  std::size_t settings_rejected = 0;
  std::map<std::string, std::size_t> snapshots_by_op;
  // Transport session-layer breakdowns (reliable mode / channel faults).
  std::string meta_transport;
  std::map<std::string, std::size_t> retransmit_by_direction;
  double retransmit_max_attempt = 0.0;
  std::map<std::string, std::size_t> duplicate_by_direction;
  std::map<std::string, std::size_t> expired_by_cause;
  std::map<std::string, std::size_t> corrupt_by_direction;
  // Tree-topology breakdowns (kAggregation events).  Root decisions carry
  // a "round" field; per-tier detail (--journal-topology runs) carries
  // "tier" 0 (leaf shard) or 1 (aggregate) instead.
  std::size_t agg_rounds = 0;
  double agg_lag_max = 0.0;
  double agg_lag_sum = 0.0;
  double agg_promoted = 0.0;
  double agg_last_cap_hz = 0.0;
  std::size_t agg_infeasible = 0;
  // shard/agg id -> (summaries, wire bytes, max mailbox depth)
  std::map<int, std::tuple<std::size_t, std::size_t, std::size_t>> by_shard;
  std::map<int, std::tuple<std::size_t, std::size_t, std::size_t>> by_agg;

  void observe(const sim::Event& e) {
    if (count == 0) {
      t_lo = t_hi = e.t;
    } else {
      t_lo = std::min(t_lo, e.t);
      t_hi = std::max(t_hi, e.t);
    }
    ++count;
    ++by_type[std::string(sim::event_type_name(e.type))];
    switch (e.type) {
      case sim::EventType::kRunMeta:
        if (!have_meta) {
          have_meta = true;
          if (const std::string* daemon = e.find_str("daemon")) {
            meta_daemon = *daemon;
            meta_has_daemon = true;
          }
          meta_cpus = e.num_or("cpus");
          meta_t_sample = e.num_or("t_sample_s");
          meta_multiplier = e.num_or("multiplier");
          meta_t_restarts = e.num_or("t_restarts");
          if (const std::string* transport = e.find_str("transport")) {
            meta_transport = *transport;
          }
        }
        break;
      case sim::EventType::kCycleStart:
        if (const std::string* trigger = e.find_str("trigger")) {
          ++by_trigger[*trigger];
        }
        break;
      case sim::EventType::kDecision: {
        auto& [decisions, freqs] = by_cpu[e.cpu];
        ++decisions;
        ++freqs[e.num_or("granted_hz")];
        break;
      }
      case sim::EventType::kInfeasibleBudget:
        ++infeasible;
        break;
      case sim::EventType::kBudgetChange:
        budget_moves.push_back(e.num_or("budget_w"));
        break;
      case sim::EventType::kFault: {
        const std::string* kind = e.find_str("kind");
        ++faults_by_kind[kind ? *kind : "?"];
        break;
      }
      case sim::EventType::kDegradedMode: {
        const std::string* state = e.find_str("state");
        if (state && *state == "enter") {
          const std::string* reason = e.find_str("reason");
          ++degraded_by_reason[reason ? *reason : "?"];
        }
        break;
      }
      case sim::EventType::kMessageLost: {
        const std::string* cause = e.find_str("cause");
        ++lost_by_cause[cause ? *cause : "?"];
        break;
      }
      case sim::EventType::kEpochChange: {
        const std::string* reason = e.find_str("reason");
        epoch_moves.emplace_back(e.num_or("epoch"), reason ? *reason : "?");
        break;
      }
      case sim::EventType::kSettingsRejected:
        ++settings_rejected;
        break;
      case sim::EventType::kSnapshot: {
        const std::string* op = e.find_str("op");
        ++snapshots_by_op[op ? *op : "?"];
        break;
      }
      case sim::EventType::kMessageRetransmit: {
        const std::string* direction = e.find_str("direction");
        ++retransmit_by_direction[direction ? *direction : "?"];
        retransmit_max_attempt =
            std::max(retransmit_max_attempt, e.num_or("attempt"));
        break;
      }
      case sim::EventType::kMessageDuplicate: {
        const std::string* direction = e.find_str("direction");
        ++duplicate_by_direction[direction ? *direction : "?"];
        break;
      }
      case sim::EventType::kMessageExpired: {
        const std::string* cause = e.find_str("cause");
        ++expired_by_cause[cause ? *cause : "?"];
        break;
      }
      case sim::EventType::kMessageCorrupt: {
        const std::string* direction = e.find_str("direction");
        ++corrupt_by_direction[direction ? *direction : "?"];
        break;
      }
      case sim::EventType::kAggregation: {
        if (e.has_num("round")) {
          ++agg_rounds;
          const double lag = e.num_or("lag_s");
          agg_lag_max = std::max(agg_lag_max, lag);
          agg_lag_sum += lag;
          agg_promoted += e.num_or("promoted");
          agg_last_cap_hz = e.num_or("cap_hz");
          if (e.num_or("feasible", 1.0) == 0.0) ++agg_infeasible;
        } else if (e.num_or("tier") == 0.0) {
          auto& [n, bytes, mail] = by_shard[static_cast<int>(e.num_or("shard"))];
          ++n;
          bytes += static_cast<std::size_t>(e.num_or("bytes"));
          mail = std::max(mail, static_cast<std::size_t>(e.num_or("mailbox")));
        } else {
          auto& [n, bytes, mail] = by_agg[static_cast<int>(e.num_or("agg"))];
          ++n;
          bytes += static_cast<std::size_t>(e.num_or("bytes"));
          mail = std::max(mail, static_cast<std::size_t>(e.num_or("mailbox")));
        }
        break;
      }
      default:
        break;
    }
  }
};

void print_summary(const std::string& path, const SummaryStats& s) {
  std::printf("journal: %s (%zu events)\n", path.c_str(), s.count);
  if (s.count == 0) return;

  const auto& by_type = s.by_type;
  const auto& by_trigger = s.by_trigger;
  const auto& by_cpu = s.by_cpu;
  const auto& budget_moves = s.budget_moves;
  const auto& faults_by_kind = s.faults_by_kind;
  const auto& degraded_by_reason = s.degraded_by_reason;
  const auto& lost_by_cause = s.lost_by_cause;
  const auto& epoch_moves = s.epoch_moves;
  const auto& snapshots_by_op = s.snapshots_by_op;
  const std::size_t infeasible = s.infeasible;
  const std::size_t settings_rejected = s.settings_rejected;

  if (s.have_meta) {
    std::printf(
        "run: daemon=%s, %d CPU(s), t=%.0f ms, T=%.0f ms%s%s%s\n",
        s.meta_has_daemon ? s.meta_daemon.c_str() : "?",
        static_cast<int>(s.meta_cpus), s.meta_t_sample * 1e3,
        s.meta_t_sample * s.meta_multiplier * 1e3,
        s.meta_t_restarts != 0.0 ? " (T restarts on budget trigger)" : "",
        s.meta_transport.empty() ? "" : ", transport=",
        s.meta_transport.c_str());
  }
  std::printf("time span: %.3f s .. %.3f s\n", s.t_lo, s.t_hi);

  sim::TextTable types("Events by type");
  types.set_header({"type", "count"});
  for (const auto& [type, count] : by_type) {
    types.add_row({type, sim::TextTable::num(count, 0)});
  }
  types.print();

  if (!by_trigger.empty()) {
    std::printf("cycles by trigger:");
    for (const auto& [trigger, count] : by_trigger) {
      std::printf(" %s=%zu", trigger.c_str(), count);
    }
    std::printf("\n");
  }
  if (!budget_moves.empty()) {
    std::printf("budget changes: %zu (", budget_moves.size());
    for (std::size_t i = 0; i < budget_moves.size(); ++i) {
      std::printf("%s%.0f W", i ? ", " : "", budget_moves[i]);
    }
    std::printf(")\n");
  }
  if (infeasible > 0) {
    std::printf("infeasible-budget cycles: %zu\n", infeasible);
  }
  if (!faults_by_kind.empty()) {
    std::printf("fault events by kind:");
    for (const auto& [kind, count] : faults_by_kind) {
      std::printf(" %s=%zu", kind.c_str(), count);
    }
    std::printf("\n");
  }
  if (!degraded_by_reason.empty()) {
    std::printf("degraded-mode entries by reason:");
    for (const auto& [reason, count] : degraded_by_reason) {
      std::printf(" %s=%zu", reason.c_str(), count);
    }
    std::printf("\n");
  }
  if (!lost_by_cause.empty()) {
    std::printf("messages lost by cause:");
    for (const auto& [cause, count] : lost_by_cause) {
      std::printf(" %s=%zu", cause.c_str(), count);
    }
    std::printf("\n");
  }
  if (!epoch_moves.empty()) {
    std::printf("coordinator epochs:");
    for (const auto& [epoch, reason] : epoch_moves) {
      std::printf(" %.0f(%s)", epoch, reason.c_str());
    }
    std::printf("\n");
  }
  if (settings_rejected > 0) {
    std::printf("settings fenced off (stale epoch): %zu\n", settings_rejected);
  }
  if (!snapshots_by_op.empty()) {
    std::printf("coordinator snapshots:");
    for (const auto& [op, count] : snapshots_by_op) {
      std::printf(" %s=%zu", op.c_str(), count);
    }
    std::printf("\n");
  }
  if (!s.retransmit_by_direction.empty()) {
    std::printf("retransmissions:");
    for (const auto& [direction, count] : s.retransmit_by_direction) {
      std::printf(" %s=%zu", direction.c_str(), count);
    }
    std::printf(" (max attempt %d)\n",
                static_cast<int>(s.retransmit_max_attempt));
  }
  if (!s.duplicate_by_direction.empty()) {
    std::printf("duplicates suppressed:");
    for (const auto& [direction, count] : s.duplicate_by_direction) {
      std::printf(" %s=%zu", direction.c_str(), count);
    }
    std::printf("\n");
  }
  if (!s.expired_by_cause.empty()) {
    std::printf("messages expired by cause:");
    for (const auto& [cause, count] : s.expired_by_cause) {
      std::printf(" %s=%zu", cause.c_str(), count);
    }
    std::printf("\n");
  }
  if (!s.corrupt_by_direction.empty()) {
    std::printf("corrupt frames dropped:");
    for (const auto& [direction, count] : s.corrupt_by_direction) {
      std::printf(" %s=%zu", direction.c_str(), count);
    }
    std::printf("\n");
  }

  if (s.agg_rounds > 0) {
    std::printf(
        "tree rounds: %zu; lag mean %.0f us, max %.0f us; promotions %.0f; "
        "last cap %.0f MHz%s\n",
        s.agg_rounds, s.agg_lag_sum / static_cast<double>(s.agg_rounds) * 1e6,
        s.agg_lag_max * 1e6, s.agg_promoted, s.agg_last_cap_hz / 1e6,
        s.agg_infeasible
            ? (" (" + std::to_string(s.agg_infeasible) + " infeasible)")
                  .c_str()
            : "");
  }
  if (!s.by_shard.empty() || !s.by_agg.empty()) {
    sim::TextTable tiers("Tree tiers (--journal-topology runs)");
    tiers.set_header(
        {"tier", "id", "summaries", "wire bytes", "max mailbox"});
    for (const auto& [id, stats] : s.by_shard) {
      const auto& [n, bytes, mail] = stats;
      tiers.add_row({"leaf", "shard" + std::to_string(id),
                     sim::TextTable::num(n, 0), sim::TextTable::num(bytes, 0),
                     sim::TextTable::num(mail, 0)});
    }
    for (const auto& [id, stats] : s.by_agg) {
      const auto& [n, bytes, mail] = stats;
      tiers.add_row({"aggregate", "agg" + std::to_string(id),
                     sim::TextTable::num(n, 0), sim::TextTable::num(bytes, 0),
                     sim::TextTable::num(mail, 0)});
    }
    tiers.print();
  }

  if (!by_cpu.empty()) {
    sim::TextTable decisions("Decisions per CPU");
    decisions.set_header({"cpu", "decisions", "distinct freqs", "top freq MHz",
                          "share"});
    for (const auto& [cpu, stats] : by_cpu) {
      const auto& [count, freqs] = stats;
      double top_hz = 0.0;
      std::size_t top_count = 0;
      for (const auto& [hz, n] : freqs) {
        if (n > top_count) {
          top_count = n;
          top_hz = hz;
        }
      }
      decisions.add_row(
          {"cpu" + std::to_string(cpu), sim::TextTable::num(count, 0),
           sim::TextTable::num(freqs.size(), 0),
           sim::TextTable::num(top_hz / 1e6, 0),
           sim::TextTable::pct(static_cast<double>(top_count) /
                                   static_cast<double>(count),
                               1)});
    }
    decisions.print();
  }
}

int run_check(const sim::JournalCheckReport& report) {
  for (const std::string& s : report.skipped) {
    std::printf("skipped: %s\n", s.c_str());
  }
  for (const std::string& v : report.violations) {
    std::printf("VIOLATION: %s\n", v.c_str());
  }
  std::printf("%s: %zu check(s) run, %zu violation(s)\n",
              report.ok() ? "OK" : "FAILED", report.checks_run,
              report.violations.size());
  return report.ok() ? 0 : 1;
}

int run_diff(const std::string& path_a, const sim::EventLog& a,
             const std::string& path_b, const sim::EventLog& b) {
  const sim::JournalDiff diff = sim::diff_journals(a, b);
  sim::TextTable counts("Event counts: A=" + path_a + "  B=" + path_b);
  counts.set_header({"type", "A", "B"});
  for (const auto& tc : diff.type_counts) {
    counts.add_row({tc.type, sim::TextTable::num(tc.a, 0),
                    sim::TextTable::num(tc.b, 0)});
  }
  counts.print();
  std::printf("decisions: %zu compared, %zu differing, %zu unmatched\n",
              diff.decisions_compared, diff.decisions_differing,
              diff.decisions_unmatched);
  if (diff.first_divergence_t >= 0.0) {
    std::printf("first divergence: t=%.3f s cpu%d\n", diff.first_divergence_t,
                diff.first_divergence_cpu);
  }
  std::printf("%s\n", diff.identical_decisions() ? "runs agree"
                                                 : "runs DIVERGE");
  return diff.identical_decisions() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string diff_path;
  std::string to_jsonl_path;
  std::string chrome_trace_path;
  bool to_jsonl = false;
  bool chrome_trace = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      std::printf(
          "usage: fvsst_inspect JOURNAL [--check] [--diff OTHER] "
          "[--to-jsonl OUT] [--chrome-trace OUT]\n"
          "Reads a decision journal written by fvsst_sim --journal; both\n"
          "the JSON-lines and the binary (.fjb) encodings are detected\n"
          "automatically.\n"
          "  (no flags)     print a run summary\n"
          "  --check        verify scheduling invariants; exit 1 on "
          "violation\n"
          "  --diff B       compare decisions against journal B; exit 1 when "
          "they diverge\n"
          "  --to-jsonl OUT re-emit the journal as JSON lines ('-' for "
          "stdout);\n"
          "                 a binary journal converts to the exact bytes the\n"
          "                 JSONL writer would have produced\n"
          "  --chrome-trace OUT\n"
          "                 export as Chrome trace-event JSON (open in\n"
          "                 Perfetto or chrome://tracing); works on binary\n"
          "                 journals recorded without a live trace\n");
      return 0;
    } else if (flag == "--check") {
      check = true;
    } else if (flag == "--diff") {
      if (i + 1 >= argc) usage_error("--diff needs a journal path");
      diff_path = argv[++i];
    } else if (flag == "--to-jsonl") {
      if (i + 1 >= argc) {
        usage_error("--to-jsonl needs an output path (or - for stdout)");
      }
      to_jsonl = true;
      to_jsonl_path = argv[++i];
    } else if (flag == "--chrome-trace") {
      if (i + 1 >= argc) usage_error("--chrome-trace needs an output path");
      chrome_trace = true;
      chrome_trace_path = argv[++i];
    } else if (!flag.empty() && flag[0] == '-') {
      usage_error("unknown flag '" + flag + "'");
    } else if (journal_path.empty()) {
      journal_path = flag;
    } else {
      usage_error("more than one journal given; use --diff for comparisons");
    }
  }
  if (journal_path.empty()) usage_error("no journal given");
  if ((to_jsonl || chrome_trace) &&
      (check || !diff_path.empty() || (to_jsonl && chrome_trace))) {
    usage_error(
        "--to-jsonl / --chrome-trace are exclusive of each other and of "
        "--check / --diff");
  }

  if (to_jsonl) return run_to_jsonl(journal_path, to_jsonl_path);
  if (chrome_trace) return run_chrome_trace(journal_path, chrome_trace_path);

  if (!diff_path.empty()) {
    // Diffing genuinely needs both decision streams resident (events are
    // matched by (t, cpu) across the runs), so it keeps the in-memory load.
    const sim::EventLog log = load(journal_path);
    const sim::EventLog other = load(diff_path);
    return run_diff(journal_path, log, diff_path, other);
  }

  // Summary and --check share one streaming pass: memory stays bounded by
  // the journal's variety, never its length.
  std::ifstream in(journal_path, std::ios::binary);
  if (!in) usage_error("cannot open journal '" + journal_path + "'");
  const sim::JournalFormat format = sim::detect_journal_format(in);
  SummaryStats stats;
  sim::JournalChecker checker;
  sim::JsonlReadReport report;
  std::size_t delivered = 0;
  try {
    delivered = for_each_event(in, format,
                               [&](sim::Event&& e) {
                                 stats.observe(e);
                                 if (check) checker.observe(e);
                               },
                               &report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fvsst_inspect: %s: %s\n", journal_path.c_str(),
                 e.what());
    return 2;
  }
  if (report.torn_tail) {
    std::fprintf(stderr,
                 "fvsst_inspect: %s: torn final record dropped (%s); "
                 "recovered %zu complete event(s)\n",
                 journal_path.c_str(), report.error.c_str(), delivered);
  }
  print_summary(journal_path, stats);
  if (check) {
    std::printf("\n");
    return run_check(checker.finish());
  }
  return 0;
}
