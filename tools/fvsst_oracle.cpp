// fvsst_oracle - Offline optimality oracle: replays a recorded decision
// journal and reports how far the run's policy sat from the LP optimum.
//
// Usage:
//   fvsst_oracle JOURNAL [--epsilon E] [--per-cycle] [--json]
//
// The journal must come from the SMP daemon with --explain (fvsst_sim
// --journal FILE --explain): explain mode stamps every decision with the
// workload estimate (est_valid / est_alpha_inv / est_mem_s) behind it, and
// the oracle replays each cycle against that same model — the hindsight
// question is "given what the policy knew, what could any frequency
// assignment have achieved under this budget?", answered by the
// performance-optimal LP of baselines/optimal.h.  Per cycle it scores the
// recorded grants against the LP bound and reports the loss gap; a negative
// gap is possible only for policies that power processors off (they leave
// the LP's always-on feasible set — see GapReport).
//
// Encodings: JSON lines or FJB1 binary, sniffed from the first bytes, same
// as fvsst_inspect.  The pass is streaming, so multi-gigabyte journals are
// scored in bounded memory.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baselines/optimal.h"
#include "mach/frequency_table.h"
#include "simkit/event_log.h"
#include "simkit/table.h"

using namespace fvsst;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "fvsst_oracle: %s\n"
               "usage: fvsst_oracle JOURNAL [--epsilon E] [--per-cycle] "
               "[--json]\n",
               message.c_str());
  std::exit(2);
}

struct CliOptions {
  std::string journal_path;
  double epsilon = 0.04;   ///< Must match the recorded run's --epsilon.
  bool per_cycle = false;  ///< Print one table row per scheduling cycle.
  bool json = false;       ///< Machine-readable summary on stdout.
};

CliOptions parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      std::printf(
          "usage: fvsst_oracle JOURNAL [--epsilon E] [--per-cycle] "
          "[--json]\n"
          "Scores a recorded --explain journal against the LP optimality\n"
          "bound (see DESIGN.md, 'Optimization-based baselines').\n");
      std::exit(0);
    } else if (flag == "--epsilon") {
      if (i + 1 >= argc) usage_error("--epsilon needs a value");
      opts.epsilon = std::atof(argv[++i]);
      if (opts.epsilon <= 0.0 || opts.epsilon >= 1.0) {
        usage_error("--epsilon must be in (0, 1)");
      }
    } else if (flag == "--per-cycle") {
      opts.per_cycle = true;
    } else if (flag == "--json") {
      opts.json = true;
    } else if (!flag.empty() && flag[0] == '-') {
      usage_error("unknown flag '" + flag + "'");
    } else if (opts.journal_path.empty()) {
      opts.journal_path = flag;
    } else {
      usage_error("more than one journal given");
    }
  }
  if (opts.journal_path.empty()) usage_error("no journal given");
  return opts;
}

/// One CPU's recorded decision within the cycle being accumulated.
struct CpuDecision {
  bool seen = false;
  double granted_hz = 0.0;
  double watts = 0.0;
  bool idle = false;
  bool has_estimate = false;  ///< est_* fields present (explain mode).
  core::WorkloadEstimate estimate;
};

/// Streaming replay state: per-CPU tables, the cycle under accumulation,
/// and the aggregate gap statistics.
struct Replay {
  double epsilon = 0.04;
  std::map<int, std::vector<mach::OperatingPoint>> table_points;
  mach::FrequencyTable table;  ///< Built lazily from CPU 0's points.
  bool table_built = false;
  std::string daemon;          ///< run_meta "daemon" value.

  std::vector<CpuDecision> cycle;  ///< Indexed by flattened CPU.

  struct CycleScore {
    double t = 0.0;
    double budget_w = 0.0;
    baselines::GapReport gap;
  };
  std::vector<CycleScore> scores;   ///< Kept only under --per-cycle.
  bool keep_per_cycle = false;

  std::size_t cycles_scored = 0;
  std::size_t cycles_unexplained = 0;  ///< Decisions without est_* fields.
  std::size_t cycles_lp_infeasible = 0;
  double sum_policy_loss = 0.0;
  double sum_lp_loss = 0.0;
  double sum_gap = 0.0;
  double max_gap = 0.0;
  double min_gap = 0.0;
  bool any_gap = false;

  void on_event(const sim::Event& e);
  void finish_cycle(const sim::Event& actuation);
};

void Replay::on_event(const sim::Event& e) {
  switch (e.type) {
    case sim::EventType::kRunMeta:
      if (const std::string* d = e.find_str("daemon")) daemon = *d;
      break;
    case sim::EventType::kTablePoint:
      table_points[e.cpu].push_back({e.num_or("hz"), e.num_or("volts"),
                                     e.num_or("watts")});
      break;
    case sim::EventType::kDecision: {
      if (e.cpu < 0) break;
      const std::size_t cpu = static_cast<std::size_t>(e.cpu);
      if (cycle.size() <= cpu) cycle.resize(cpu + 1);
      CpuDecision& d = cycle[cpu];
      d.seen = true;
      d.granted_hz = e.num_or("granted_hz");
      d.watts = e.num_or("watts");
      d.idle = e.num_or("idle") != 0.0;
      d.has_estimate = e.has_num("est_valid");
      if (d.has_estimate) {
        d.estimate.valid = e.num_or("est_valid") != 0.0;
        d.estimate.alpha_inv = e.num_or("est_alpha_inv");
        d.estimate.mem_time_per_instr = e.num_or("est_mem_s");
      }
      break;
    }
    case sim::EventType::kActuation:
      // Deferred cluster node applies carry str "stage"; the cycle-level
      // actuation record (no stage) terminates the cycle.
      if (e.find_str("stage") == nullptr) finish_cycle(e);
      break;
    default:
      break;
  }
}

void Replay::finish_cycle(const sim::Event& actuation) {
  std::vector<CpuDecision> decisions;
  decisions.swap(cycle);
  if (decisions.empty()) return;  // Actuation without decisions: nothing.
  bool explained = true;
  for (const CpuDecision& d : decisions) {
    if (d.seen && !d.has_estimate) explained = false;
  }
  if (!explained) {
    ++cycles_unexplained;
    return;
  }
  if (!table_built) {
    auto it = table_points.find(0);
    if (it == table_points.end() || it->second.empty()) {
      std::fprintf(stderr,
                   "fvsst_oracle: journal has no table_point events for "
                   "cpu 0 — cannot reconstruct the operating-point table\n");
      std::exit(1);
    }
    table = mach::FrequencyTable(it->second);
    table_built = true;
  }
  std::vector<baselines::ProcSample> procs(decisions.size());
  std::vector<baselines::Assignment> assignments(decisions.size());
  for (std::size_t p = 0; p < decisions.size(); ++p) {
    procs[p].estimate = decisions[p].estimate;
    procs[p].idle = decisions[p].idle;
    assignments[p].hz = decisions[p].granted_hz;
    assignments[p].powered_on = decisions[p].watts > 0.0;
  }
  const double budget_w = actuation.num_or("budget_w");
  const baselines::GapReport gap = baselines::optimality_gap(
      procs, assignments, table, budget_w, epsilon);
  ++cycles_scored;
  if (!gap.lp_feasible) ++cycles_lp_infeasible;
  if (gap.reference_performance > 0.0) {
    sum_policy_loss += gap.policy_loss;
    sum_lp_loss += gap.lp_loss;
    sum_gap += gap.gap;
    if (!any_gap || gap.gap > max_gap) max_gap = gap.gap;
    if (!any_gap || gap.gap < min_gap) min_gap = gap.gap;
    any_gap = true;
  }
  if (keep_per_cycle) scores.push_back({actuation.t, budget_w, gap});
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_args(argc, argv);

  // std::ios::binary keeps the FJB1 byte stream untranslated; it is a
  // no-op for JSONL text.
  std::ifstream in(opts.journal_path, std::ios::binary);
  if (!in) usage_error("cannot open journal '" + opts.journal_path + "'");

  Replay replay;
  replay.epsilon = opts.epsilon;
  replay.keep_per_cycle = opts.per_cycle;
  const sim::JournalFormat format = sim::detect_journal_format(in);
  sim::JsonlReadReport report;
  const auto deliver = [&replay](sim::Event&& e) { replay.on_event(e); };
  const std::size_t events =
      format == sim::JournalFormat::kBinary
          ? sim::for_each_binary(in, deliver, &report)
          : sim::for_each_jsonl(in, deliver, &report);

  if (!replay.daemon.empty() && replay.daemon != "fvsst") {
    std::fprintf(stderr,
                 "fvsst_oracle: journal was recorded by the '%s' daemon; "
                 "only SMP (fvsst) journals are supported\n",
                 replay.daemon.c_str());
    return 1;
  }
  if (replay.cycles_scored == 0) {
    if (replay.cycles_unexplained > 0) {
      std::fprintf(stderr,
                   "fvsst_oracle: all %zu cycles lack workload estimates — "
                   "record the journal with fvsst_sim --explain\n",
                   replay.cycles_unexplained);
    } else {
      std::fprintf(stderr,
                   "fvsst_oracle: no scheduling cycles found in %zu "
                   "events\n",
                   events);
    }
    return 1;
  }

  const double n = static_cast<double>(replay.cycles_scored);
  if (opts.json) {
    std::printf(
        "{\n"
        "  \"cycles\": %zu,\n"
        "  \"cycles_unexplained\": %zu,\n"
        "  \"cycles_lp_infeasible\": %zu,\n"
        "  \"epsilon\": %.6f,\n"
        "  \"mean_policy_loss\": %.6f,\n"
        "  \"mean_lp_loss\": %.6f,\n"
        "  \"mean_gap\": %.6f,\n"
        "  \"max_gap\": %.6f,\n"
        "  \"min_gap\": %.6f\n"
        "}\n",
        replay.cycles_scored, replay.cycles_unexplained,
        replay.cycles_lp_infeasible, opts.epsilon,
        replay.sum_policy_loss / n, replay.sum_lp_loss / n,
        replay.sum_gap / n, replay.max_gap, replay.min_gap);
    return 0;
  }

  std::printf("fvsst_oracle: %zu cycle(s) scored", replay.cycles_scored);
  if (replay.cycles_unexplained > 0) {
    std::printf(" (%zu skipped: recorded without --explain)",
                replay.cycles_unexplained);
  }
  std::printf(", epsilon %.3g\n", opts.epsilon);
  std::printf(
      "mean loss: policy %s, LP optimum %s; gap mean %s, max %s, min %s\n",
      sim::TextTable::pct(replay.sum_policy_loss / n, 2).c_str(),
      sim::TextTable::pct(replay.sum_lp_loss / n, 2).c_str(),
      sim::TextTable::pct(replay.sum_gap / n, 2).c_str(),
      sim::TextTable::pct(replay.max_gap, 2).c_str(),
      sim::TextTable::pct(replay.min_gap, 2).c_str());
  if (replay.cycles_lp_infeasible > 0) {
    std::printf("%zu cycle(s) infeasible even fractionally "
                "(n * w_min > budget): heuristic and LP agree\n",
                replay.cycles_lp_infeasible);
  }

  if (opts.per_cycle) {
    sim::TextTable table("Per-cycle optimality gap");
    table.set_header({"t (s)", "budget W", "policy loss", "LP loss", "gap",
                      "LP feasible"});
    for (const auto& s : replay.scores) {
      table.add_row({sim::TextTable::num(s.t, 3),
                     sim::TextTable::num(s.budget_w, 1),
                     sim::TextTable::pct(s.gap.policy_loss, 2),
                     sim::TextTable::pct(s.gap.lp_loss, 2),
                     sim::TextTable::pct(s.gap.gap, 2),
                     s.gap.lp_feasible ? "yes" : "no"});
    }
    table.print();
  }
  return 0;
}
