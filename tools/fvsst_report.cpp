// fvsst_report - Renders a decision journal (fvsst_sim --journal) as one
// self-contained HTML page: run summary, alert timeline, per-stage latency
// quantiles, frequency residency, and power-vs-budget — everything inline
// (CSS + SVG), no external assets, so the file mails/archives as-is.
//
// Usage:
//   fvsst_report JOURNAL [--metrics FILE] [--out OUT.html]
//
// Journals may be JSON lines or the compact "FJB1" binary encoding; the
// format is sniffed from the first bytes (sim::detect_journal_format), and
// the tolerant readers accept a torn final record.  --metrics embeds a
// Prometheus text snapshot (fvsst_sim --metrics-out) verbatim in its own
// section.  The page carries stable section ids (#summary, #alerts,
// #latency, #residency, #power, #metrics) so scripts and tests can anchor
// on them.
//
// The journal is consumed in one streaming pass; report state is bounded
// by the run's variety (rules, frequencies, event types) except the power
// trace, which is decimated to a fixed point budget as it accumulates, so
// multi-gigabyte journals render in bounded memory.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "simkit/event_log.h"
#include "simkit/stats.h"

using namespace fvsst;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "fvsst_report: %s\n"
               "usage: fvsst_report JOURNAL [--metrics FILE] "
               "[--out OUT.html]\n",
               message.c_str());
  std::exit(2);
}

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// Compact general format for magnitudes whose scale varies (values,
/// thresholds): %g without the scientific-notation surprises for the
/// ranges this simulator produces.
std::string fmtg(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Journal aggregation

/// One firing interval of a rule.  `open` means the journal ended while the
/// alert was still firing (no alert_cleared arrived).
struct AlertSpan {
  double t0 = 0.0;
  double t1 = 0.0;
  bool open = true;
  double value = 0.0;  ///< Aggregate value at raise time.
};

/// Everything the report shows about one rule that raised at least once.
struct RuleLane {
  std::string severity;
  std::string expr;
  double threshold = 0.0;
  double window_s = 0.0;
  std::vector<AlertSpan> spans;
};

struct ReportData {
  std::size_t count = 0;
  double t_lo = 0.0;
  double t_hi = 0.0;
  bool have_meta = false;
  std::string daemon = "?";
  int cpus = 0;
  double t_sample_s = 0.0;
  double multiplier = 0.0;
  std::map<std::string, std::size_t> by_type;
  std::size_t infeasible = 0;

  // Alerts, keyed by rule name in order of first raise.
  std::vector<std::string> lane_order;
  std::map<std::string, RuleLane> lanes;
  std::size_t alerts_raised = 0;
  std::size_t alerts_cleared = 0;

  // Per-stage latency (wall-clock seconds measured by the daemon).
  sim::SampleSet estimate_s, policy_s, actuate_s, cycle_s;

  // Frequency residency: decision counts per granted frequency; decisions
  // land at uniform sampling instants, so counts track time share.
  sim::CategoryHistogram residency;

  // Power trace: (t, total_power_w, budget_w), decimated on the fly.
  std::vector<std::array<double, 3>> power;
  std::size_t power_stride = 1;
  std::size_t power_seen = 0;
  std::vector<std::pair<double, double>> budget_moves;  // (t, new budget)

  void observe(const sim::Event& e) {
    if (count == 0) {
      t_lo = t_hi = e.t;
    } else {
      t_lo = std::min(t_lo, e.t);
      t_hi = std::max(t_hi, e.t);
    }
    ++count;
    ++by_type[std::string(sim::event_type_name(e.type))];
    switch (e.type) {
      case sim::EventType::kRunMeta:
        if (!have_meta) {
          have_meta = true;
          if (const std::string* d = e.find_str("daemon")) daemon = *d;
          cpus = static_cast<int>(e.num_or("cpus"));
          t_sample_s = e.num_or("t_sample_s");
          multiplier = e.num_or("multiplier");
        }
        break;
      case sim::EventType::kDecision:
        residency.add(e.num_or("granted_hz"));
        break;
      case sim::EventType::kInfeasibleBudget:
        ++infeasible;
        break;
      case sim::EventType::kBudgetChange:
        budget_moves.emplace_back(e.t, e.num_or("budget_w"));
        break;
      case sim::EventType::kActuation: {
        // Cluster journals also emit deferred per-node applies (str
        // "stage" = node_apply); only top-level actuations carry the
        // cycle's stage costs and the aggregate power/budget pair.
        if (e.find_str("stage")) break;
        const double est = e.num_or("estimate_s", -1.0);
        const double pol = e.num_or("policy_s", -1.0);
        const double act = e.num_or("actuate_s", -1.0);
        if (est >= 0.0) estimate_s.add(est);
        if (pol >= 0.0) policy_s.add(pol);
        if (act >= 0.0) actuate_s.add(act);
        if (est >= 0.0 && pol >= 0.0 && act >= 0.0) {
          cycle_s.add(est + pol + act);
        }
        if (e.has_num("total_power_w")) {
          add_power_point(e.t, e.num_or("total_power_w"),
                          e.num_or("budget_w"));
        }
        break;
      }
      case sim::EventType::kAlertRaised: {
        const std::string* rule = e.find_str("rule");
        const std::string name = rule ? *rule : "?";
        auto [it, inserted] = lanes.try_emplace(name);
        if (inserted) {
          lane_order.push_back(name);
          if (const std::string* sev = e.find_str("severity")) {
            it->second.severity = *sev;
          }
          if (const std::string* expr = e.find_str("expr")) {
            it->second.expr = *expr;
          }
          it->second.threshold = e.num_or("threshold");
          it->second.window_s = e.num_or("window_s");
        }
        AlertSpan span;
        span.t0 = span.t1 = e.t;
        span.value = e.num_or("value");
        it->second.spans.push_back(span);
        ++alerts_raised;
        break;
      }
      case sim::EventType::kAlertCleared: {
        const std::string* rule = e.find_str("rule");
        auto it = lanes.find(rule ? *rule : "?");
        if (it != lanes.end() && !it->second.spans.empty() &&
            it->second.spans.back().open) {
          it->second.spans.back().t1 = e.t;
          it->second.spans.back().open = false;
        }
        ++alerts_cleared;
        break;
      }
      default:
        break;
    }
  }

  /// Closes still-open alert spans at the end of the journal's time span.
  void finish() {
    for (auto& [name, lane] : lanes) {
      (void)name;
      for (AlertSpan& span : lane.spans) {
        if (span.open) span.t1 = t_hi;
      }
    }
  }

 private:
  static constexpr std::size_t kMaxPowerPoints = 2048;

  /// Keeps every `power_stride`-th sample; when the kept set would exceed
  /// the point budget, drops every other kept point and doubles the
  /// stride, so memory stays O(kMaxPowerPoints) over any journal length.
  void add_power_point(double t, double power_w, double budget_w) {
    if (power_seen++ % power_stride == 0) {
      power.push_back({t, power_w, budget_w});
      if (power.size() > kMaxPowerPoints) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < power.size(); i += 2) {
          power[keep++] = power[i];
        }
        power.resize(keep);
        power_stride *= 2;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// SVG rendering

struct Axis {
  double lo = 0.0, hi = 1.0;       // data range
  double px_lo = 0.0, px_hi = 1.0; // pixel range
  double map(double v) const {
    const double span = hi - lo;
    const double f = span > 0.0 ? (v - lo) / span : 0.0;
    return px_lo + f * (px_hi - px_lo);
  }
};

const char* severity_color(const std::string& severity) {
  if (severity == "critical") return "#c62828";
  if (severity == "warning") return "#ef6c00";
  return "#1565c0";  // info and anything unrecognised
}

/// Alert timeline: one horizontal lane per rule, firing intervals as
/// filled rects coloured by severity; open intervals (never cleared) get a
/// hatched right edge via reduced opacity.
void render_alert_svg(std::ostream& out, const ReportData& d) {
  const double label_w = 170.0, plot_w = 640.0, lane_h = 26.0;
  const double top = 8.0, bottom = 24.0;
  const double h = top + lane_h * static_cast<double>(d.lane_order.size()) +
                   bottom;
  const double w = label_w + plot_w + 16.0;
  Axis x{d.t_lo, std::max(d.t_hi, d.t_lo + 1e-9), label_w, label_w + plot_w};

  out << "<svg viewBox=\"0 0 " << fmt(w, 0) << " " << fmt(h, 0)
      << "\" width=\"" << fmt(w, 0) << "\" role=\"img\">\n";
  for (std::size_t i = 0; i < d.lane_order.size(); ++i) {
    const RuleLane& lane = d.lanes.at(d.lane_order[i]);
    const double y = top + lane_h * static_cast<double>(i);
    out << "<rect x=\"" << fmt(label_w, 0) << "\" y=\"" << fmt(y, 1)
        << "\" width=\"" << fmt(plot_w, 0) << "\" height=\"" << fmt(lane_h - 4, 1)
        << "\" fill=\"" << (i % 2 ? "#f4f4f4" : "#fafafa") << "\"/>\n";
    out << "<text x=\"" << fmt(label_w - 8, 0) << "\" y=\""
        << fmt(y + lane_h / 2 + 3, 1)
        << "\" text-anchor=\"end\" class=\"lane\">"
        << html_escape(d.lane_order[i]) << "</text>\n";
    for (const AlertSpan& span : lane.spans) {
      const double x0 = x.map(span.t0);
      const double x1 = std::max(x.map(span.t1), x0 + 2.0);  // visible sliver
      out << "<rect x=\"" << fmt(x0, 1) << "\" y=\"" << fmt(y + 2, 1)
          << "\" width=\"" << fmt(x1 - x0, 1) << "\" height=\""
          << fmt(lane_h - 8, 1) << "\" fill=\""
          << severity_color(lane.severity) << "\""
          << (span.open ? " fill-opacity=\"0.55\"" : "") << ">"
          << "<title>" << html_escape(d.lane_order[i]) << " "
          << fmt(span.t0) << "s .. " << fmt(span.t1) << "s"
          << (span.open ? " (still firing)" : "") << "</title></rect>\n";
    }
  }
  // Time axis with five ticks.
  const double axis_y = h - bottom + 4.0;
  out << "<line x1=\"" << fmt(label_w, 0) << "\" y1=\"" << fmt(axis_y, 1)
      << "\" x2=\"" << fmt(label_w + plot_w, 0) << "\" y2=\"" << fmt(axis_y, 1)
      << "\" stroke=\"#888\"/>\n";
  for (int k = 0; k <= 4; ++k) {
    const double t = d.t_lo + (d.t_hi - d.t_lo) * k / 4.0;
    const double px = x.map(t);
    out << "<line x1=\"" << fmt(px, 1) << "\" y1=\"" << fmt(axis_y, 1)
        << "\" x2=\"" << fmt(px, 1) << "\" y2=\"" << fmt(axis_y + 4, 1)
        << "\" stroke=\"#888\"/>\n"
        << "<text x=\"" << fmt(px, 1) << "\" y=\"" << fmt(axis_y + 15, 1)
        << "\" text-anchor=\"middle\" class=\"tick\">" << fmt(t, 2)
        << "s</text>\n";
  }
  out << "</svg>\n";
}

/// Power vs budget: power as a polyline, budget as a stepped line (the
/// budget is piecewise constant between change events).
void render_power_svg(std::ostream& out, const ReportData& d) {
  const double left = 56.0, plot_w = 640.0, plot_h = 200.0;
  const double top = 8.0, bottom = 28.0;
  const double w = left + plot_w + 16.0, h = top + plot_h + bottom;

  double y_hi = 1.0;
  for (const auto& p : d.power) y_hi = std::max({y_hi, p[1], p[2]});
  y_hi *= 1.08;
  Axis x{d.t_lo, std::max(d.t_hi, d.t_lo + 1e-9), left, left + plot_w};
  Axis y{0.0, y_hi, top + plot_h, top};  // SVG y grows downward

  out << "<svg viewBox=\"0 0 " << fmt(w, 0) << " " << fmt(h, 0)
      << "\" width=\"" << fmt(w, 0) << "\" role=\"img\">\n"
      << "<rect x=\"" << fmt(left, 0) << "\" y=\"" << fmt(top, 0)
      << "\" width=\"" << fmt(plot_w, 0) << "\" height=\"" << fmt(plot_h, 0)
      << "\" fill=\"#fafafa\" stroke=\"#ddd\"/>\n";

  // Budget: step line.  The sampled budget at each actuation already steps
  // at change instants; render with horizontal-then-vertical segments.
  std::ostringstream budget_path, power_path;
  for (std::size_t i = 0; i < d.power.size(); ++i) {
    const double px = x.map(d.power[i][0]);
    const double py_power = y.map(d.power[i][1]);
    const double py_budget = y.map(d.power[i][2]);
    power_path << (i ? " L" : "M") << fmt(px, 1) << " " << fmt(py_power, 1);
    if (i == 0) {
      budget_path << "M" << fmt(px, 1) << " " << fmt(py_budget, 1);
    } else {
      budget_path << " H" << fmt(px, 1) << " V" << fmt(py_budget, 1);
    }
  }
  out << "<path d=\"" << budget_path.str()
      << "\" fill=\"none\" stroke=\"#c62828\" stroke-width=\"1.5\" "
         "stroke-dasharray=\"6 3\"/>\n";
  out << "<path d=\"" << power_path.str()
      << "\" fill=\"none\" stroke=\"#1565c0\" stroke-width=\"1.5\"/>\n";

  // Axes: five ticks each.
  for (int k = 0; k <= 4; ++k) {
    const double t = d.t_lo + (d.t_hi - d.t_lo) * k / 4.0;
    const double px = x.map(t);
    out << "<text x=\"" << fmt(px, 1) << "\" y=\"" << fmt(top + plot_h + 16, 1)
        << "\" text-anchor=\"middle\" class=\"tick\">" << fmt(t, 2)
        << "s</text>\n";
    const double v = y_hi * k / 4.0;
    out << "<text x=\"" << fmt(left - 6, 1) << "\" y=\""
        << fmt(y.map(v) + 3, 1) << "\" text-anchor=\"end\" class=\"tick\">"
        << fmt(v, 0) << "W</text>\n";
  }
  out << "<text x=\"" << fmt(left + 8, 1) << "\" y=\"" << fmt(top + 14, 1)
      << "\" class=\"tick\"><tspan fill=\"#1565c0\">&#9632;</tspan> power"
         "  <tspan fill=\"#c62828\">&#9632;</tspan> budget</text>\n";
  out << "</svg>\n";
}

// ---------------------------------------------------------------------------
// HTML sections

void render_summary(std::ostream& out, const std::string& journal_path,
                    const ReportData& d) {
  out << "<section id=\"summary\"><h2>Run summary</h2>\n<table>\n";
  const auto row = [&](const std::string& k, const std::string& v) {
    out << "<tr><th>" << html_escape(k) << "</th><td>" << v << "</td></tr>\n";
  };
  row("journal", html_escape(journal_path));
  row("events", std::to_string(d.count));
  row("time span", fmt(d.t_lo) + " s .. " + fmt(d.t_hi) + " s");
  if (d.have_meta) {
    row("daemon", html_escape(d.daemon));
    row("CPUs", std::to_string(d.cpus));
    row("sampling period",
        fmt(d.t_sample_s * 1e3, 0) + " ms (T = " +
            fmt(d.t_sample_s * d.multiplier * 1e3, 0) + " ms)");
  }
  row("alerts", std::to_string(d.alerts_raised) + " raised, " +
                    std::to_string(d.alerts_cleared) + " cleared");
  if (d.infeasible > 0) {
    row("infeasible-budget cycles", std::to_string(d.infeasible));
  }
  if (!d.budget_moves.empty()) {
    std::string moves;
    for (const auto& [t, budget] : d.budget_moves) {
      if (!moves.empty()) moves += ", ";
      moves += fmt(budget, 0) + " W @ " + fmt(t, 2) + " s";
    }
    row("budget changes", html_escape(moves));
  }
  out << "</table>\n<details><summary>Events by type</summary><table>\n"
      << "<tr><th>type</th><th>count</th></tr>\n";
  for (const auto& [type, count] : d.by_type) {
    out << "<tr><td>" << html_escape(type) << "</td><td class=\"num\">"
        << count << "</td></tr>\n";
  }
  out << "</table></details>\n</section>\n";
}

void render_alerts(std::ostream& out, const ReportData& d) {
  out << "<section id=\"alerts\"><h2>Alerts</h2>\n";
  if (d.lane_order.empty()) {
    out << "<p class=\"empty\">No alerts fired during this run.</p>\n"
        << "</section>\n";
    return;
  }
  render_alert_svg(out, d);
  out << "<table>\n<tr><th>rule</th><th>severity</th><th>raised</th>"
         "<th>cleared</th><th>duration</th><th>value at raise</th>"
         "<th>rule expression</th></tr>\n";
  for (const std::string& name : d.lane_order) {
    const RuleLane& lane = d.lanes.at(name);
    for (const AlertSpan& span : lane.spans) {
      out << "<tr><td>" << html_escape(name) << "</td><td><span class=\"sev\" "
          << "style=\"background:" << severity_color(lane.severity) << "\">"
          << html_escape(lane.severity) << "</span></td><td class=\"num\">"
          << fmt(span.t0) << " s</td><td class=\"num\">"
          << (span.open ? std::string("&mdash; (still firing)")
                        : fmt(span.t1) + " s")
          << "</td><td class=\"num\">" << fmt(span.t1 - span.t0)
          << " s</td><td class=\"num\">" << fmtg(span.value)
          << "</td><td><code>" << html_escape(lane.expr)
          << "</code></td></tr>\n";
    }
  }
  out << "</table>\n</section>\n";
}

void render_latency(std::ostream& out, const ReportData& d) {
  out << "<section id=\"latency\"><h2>Per-stage latency</h2>\n";
  if (d.cycle_s.count() == 0 && d.estimate_s.count() == 0) {
    out << "<p class=\"empty\">No actuation events carried stage costs.</p>\n"
        << "</section>\n";
    return;
  }
  out << "<p>Measured wall-clock cost of each scheduling stage, exact order "
         "statistics over every cycle.</p>\n"
      << "<table>\n<tr><th>stage</th><th>cycles</th><th>mean</th><th>p50</th>"
         "<th>p90</th><th>p99</th><th>max</th></tr>\n";
  const auto stage_row = [&](const char* name, const sim::SampleSet& s) {
    if (s.count() == 0) return;
    const auto us = [](double seconds) { return fmt(seconds * 1e6, 2); };
    out << "<tr><td>" << name << "</td><td class=\"num\">" << s.count()
        << "</td><td class=\"num\">" << us(s.mean())
        << "</td><td class=\"num\">" << us(s.percentile(0.50))
        << "</td><td class=\"num\">" << us(s.percentile(0.90))
        << "</td><td class=\"num\">" << us(s.percentile(0.99))
        << "</td><td class=\"num\">" << us(s.max()) << "</td></tr>\n";
  };
  stage_row("estimate", d.estimate_s);
  stage_row("policy", d.policy_s);
  stage_row("actuate", d.actuate_s);
  stage_row("full cycle", d.cycle_s);
  out << "</table>\n<p class=\"tick\">All values in microseconds.</p>\n"
      << "</section>\n";
}

void render_residency(std::ostream& out, const ReportData& d) {
  out << "<section id=\"residency\"><h2>Frequency residency</h2>\n";
  const auto entries = d.residency.sorted();
  if (entries.empty()) {
    out << "<p class=\"empty\">No decision events in this journal.</p>\n"
        << "</section>\n";
    return;
  }
  out << "<p>Share of scheduling decisions granting each frequency "
         "(decisions land at uniform sampling instants, so shares track "
         "time).</p>\n<table>\n"
      << "<tr><th>frequency</th><th>decisions</th><th>share</th>"
         "<th></th></tr>\n";
  for (const auto& entry : entries) {
    const double share = d.residency.fraction(entry.key);
    out << "<tr><td>" << fmt(entry.key / 1e6, 0)
        << " MHz</td><td class=\"num\">" << fmt(entry.weight, 0)
        << "</td><td class=\"num\">" << fmt(share * 100.0, 1)
        << "%</td><td class=\"barcell\"><div class=\"bar\" style=\"width:"
        << fmt(share * 100.0, 1) << "%\"></div></td></tr>\n";
  }
  out << "</table>\n</section>\n";
}

void render_power(std::ostream& out, const ReportData& d) {
  out << "<section id=\"power\"><h2>Power vs budget</h2>\n";
  if (d.power.empty()) {
    out << "<p class=\"empty\">No actuation events carried power "
           "readings.</p>\n</section>\n";
    return;
  }
  if (d.power_stride > 1) {
    out << "<p class=\"tick\">Trace decimated: every "
        << d.power_stride << "th sample shown (" << d.power.size() << " of "
        << d.power_seen << " points).</p>\n";
  }
  render_power_svg(out, d);
  out << "</section>\n";
}

void render_metrics(std::ostream& out, const std::string& metrics_path,
                    const std::string& metrics_text) {
  out << "<section id=\"metrics\"><h2>Metrics snapshot</h2>\n";
  if (metrics_path.empty()) {
    out << "<p class=\"empty\">No metrics file supplied (run fvsst_sim with "
           "--metrics-out and pass --metrics here).</p>\n";
  } else {
    out << "<p>Prometheus text snapshot from <code>"
        << html_escape(metrics_path) << "</code>:</p>\n<pre>"
        << html_escape(metrics_text) << "</pre>\n";
  }
  out << "</section>\n";
}

void render_page(std::ostream& out, const std::string& journal_path,
                 const ReportData& d, const std::string& metrics_path,
                 const std::string& metrics_text) {
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n"
         "<title>fvsst run report</title>\n"
         "<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:24px auto;"
         "max-width:920px;color:#222}\n"
         "h1{font-size:22px}h2{font-size:17px;border-bottom:1px solid #ddd;"
         "padding-bottom:4px;margin-top:28px}\n"
         "table{border-collapse:collapse;margin:8px 0}\n"
         "th,td{border:1px solid #ddd;padding:3px 9px;text-align:left;"
         "font-size:13px}\n"
         "th{background:#f5f5f5}\n"
         "td.num{text-align:right;font-variant-numeric:tabular-nums}\n"
         "td.barcell{min-width:220px;border-left:none}\n"
         ".bar{background:#1565c0;height:11px;border-radius:2px}\n"
         ".sev{color:#fff;border-radius:3px;padding:1px 6px;font-size:12px}\n"
         ".empty{color:#777;font-style:italic}\n"
         ".tick{font-size:11px;fill:#666;color:#666}\n"
         ".lane{font-size:12px;fill:#333}\n"
         "code,pre{font:12px/1.45 ui-monospace,monospace;background:#f6f6f6}\n"
         "pre{padding:10px;overflow-x:auto;border:1px solid #e0e0e0}\n"
         "nav a{margin-right:14px}\n"
         "</style>\n</head>\n<body>\n"
         "<h1>fvsst run report</h1>\n"
         "<nav><a href=\"#summary\">summary</a><a href=\"#alerts\">alerts</a>"
         "<a href=\"#latency\">latency</a><a href=\"#residency\">residency"
         "</a><a href=\"#power\">power</a><a href=\"#metrics\">metrics</a>"
         "</nav>\n";
  render_summary(out, journal_path, d);
  render_alerts(out, d);
  render_latency(out, d);
  render_residency(out, d);
  render_power(out, d);
  render_metrics(out, metrics_path, metrics_text);
  out << "</body>\n</html>\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string metrics_path;
  std::string out_path = "report.html";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      std::printf(
          "usage: fvsst_report JOURNAL [--metrics FILE] [--out OUT.html]\n"
          "Renders a decision journal (fvsst_sim --journal; JSONL or .fjb,\n"
          "sniffed automatically) as one self-contained HTML page: run\n"
          "summary, alert timeline, per-stage latency quantiles, frequency\n"
          "residency and power-vs-budget, all inline SVG/CSS.\n"
          "  --metrics FILE  embed a Prometheus text snapshot\n"
          "                  (fvsst_sim --metrics-out) in the report\n"
          "  --out OUT.html  output path (default report.html)\n");
      return 0;
    } else if (flag == "--metrics") {
      if (i + 1 >= argc) usage_error("--metrics needs a file path");
      metrics_path = argv[++i];
    } else if (flag == "--out" || flag == "-o") {
      if (i + 1 >= argc) usage_error("--out needs a file path");
      out_path = argv[++i];
    } else if (!flag.empty() && flag[0] == '-') {
      usage_error("unknown flag '" + flag + "'");
    } else if (journal_path.empty()) {
      journal_path = flag;
    } else {
      usage_error("more than one journal given");
    }
  }
  if (journal_path.empty()) usage_error("no journal given");

  std::ifstream in(journal_path, std::ios::binary);
  if (!in) usage_error("cannot open journal '" + journal_path + "'");
  const sim::JournalFormat format = sim::detect_journal_format(in);

  ReportData data;
  sim::JsonlReadReport report;
  std::size_t delivered = 0;
  try {
    const auto observe = [&](sim::Event&& e) { data.observe(e); };
    delivered = format == sim::JournalFormat::kBinary
                    ? sim::for_each_binary(in, observe, &report)
                    : sim::for_each_jsonl(in, observe, &report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fvsst_report: %s: %s\n", journal_path.c_str(),
                 e.what());
    return 2;
  }
  if (report.torn_tail) {
    std::fprintf(stderr,
                 "fvsst_report: %s: torn final record dropped (%s); "
                 "recovered %zu complete event(s)\n",
                 journal_path.c_str(), report.error.c_str(), delivered);
  }
  data.finish();

  std::string metrics_text;
  if (!metrics_path.empty()) {
    std::ifstream metrics_in(metrics_path, std::ios::binary);
    if (!metrics_in) {
      usage_error("cannot open metrics file '" + metrics_path + "'");
    }
    std::ostringstream buf;
    buf << metrics_in.rdbuf();
    metrics_text = buf.str();
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) usage_error("cannot open output '" + out_path + "'");
  render_page(out, journal_path, data, metrics_path, metrics_text);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "fvsst_report: failed to write '%s'\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[report] wrote %s (%zu event(s), %zu alert(s))\n",
               out_path.c_str(), delivered, data.alerts_raised);
  return 0;
}
