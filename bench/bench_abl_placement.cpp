// bench_abl_placement - Ablation A13: job placement x frequency scheduling.
//
// The paper's Sec. 4.2 observes that work assignment determines the
// diversity fvsst can exploit, and its Sec. 5 stresses that fvsst "only
// attempts to minimize total power" under whatever placement the cluster
// software chose.  This bench crosses three placement policies with
// fvsst on/off on a batch of mixed jobs and reports power and turnaround.
#include "bench/common.h"

#include "cluster/job_manager.h"

using namespace fvsst;

namespace {

struct Outcome {
  double mean_power_w = 0.0;
  double p95_turnaround_s = 0.0;
  double makespan_s = 0.0;
};

Outcome run(cluster::PlacementPolicy placement, bool with_fvsst) {
  sim::Simulation sim;
  sim::Rng rng(12);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cl = cluster::Cluster::homogeneous(sim, machine, 2, rng);
  power::PowerBudget budget(8 * 140.0);
  std::unique_ptr<core::FvsstDaemon> daemon;
  if (with_fvsst) {
    daemon = std::make_unique<core::FvsstDaemon>(
        sim, cl, machine.freq_table, budget, bench::paper_daemon_config());
  }
  power::PowerSensor sensor(sim, [&] { return cl.cpu_power_w(); }, 0.01);

  cluster::JobManager jm(sim, cl, placement);
  // A half-loaded batch: 6 mixed jobs for 8 CPUs, arriving over 2 s —
  // spreading placements busy 6 CPUs, packing busies 3.
  constexpr int kJobs = 6;
  sim::Rng mix(4);
  for (int i = 0; i < kJobs; ++i) {
    const double intensity = mix.uniform(10.0, 100.0);
    jm.submit_at(mix.uniform(0.0, 2.0),
                 workload::make_uniform_synthetic(intensity, 8e8, false));
  }
  sim.run_for(60.0);

  Outcome out;
  if (jm.completed() == kJobs) {
    out.p95_turnaround_s = jm.turnaround_times().percentile(0.95);
    double last = 0.0;
    for (std::size_t j = 0; j < jm.submitted(); ++j) {
      last = std::max(last, jm.job(j).finished_at);
    }
    out.makespan_s = last;
    // Mean power over the busy window only, so the idle tail doesn't
    // wash the comparison out.
    sim::TimeWeightedStat acc;
    for (const auto& s : sensor.trace().samples()) {
      if (s.t > last) break;
      acc.record(s.t, s.value);
    }
    out.mean_power_w = acc.mean_until(last);
  }
  return out;
}

const char* placement_name(cluster::PlacementPolicy p) {
  switch (p) {
    case cluster::PlacementPolicy::kRoundRobin: return "round-robin";
    case cluster::PlacementPolicy::kLeastLoaded: return "least-loaded";
    case cluster::PlacementPolicy::kPackFirstFit: return "pack-first-fit";
  }
  return "?";
}

}  // namespace

int main() {
  bench::banner("Ablation A13",
                "Placement policy x fvsst (12 mixed jobs, 8 CPUs)");

  sim::TextTable out("Unconstrained budget; power saved comes from fvsst");
  out.set_header({"placement", "fvsst", "mean W", "p95 turnaround",
                  "makespan"});
  for (auto placement : {cluster::PlacementPolicy::kRoundRobin,
                         cluster::PlacementPolicy::kLeastLoaded,
                         cluster::PlacementPolicy::kPackFirstFit}) {
    for (bool fvsst_on : {false, true}) {
      const Outcome r = run(placement, fvsst_on);
      out.add_row({placement_name(placement), fvsst_on ? "on" : "off",
                   sim::TextTable::num(r.mean_power_w, 1),
                   sim::TextTable::num(r.p95_turnaround_s, 2) + " s",
                   sim::TextTable::num(r.makespan_s, 2) + " s"});
    }
  }
  out.print();
  std::printf(
      "Expected: without fvsst, power is ~8x140 W regardless of placement\n"
      "(hot idle burns like work).  With fvsst, spreading placements still\n"
      "saves power on memory-bound jobs, while consolidating placements\n"
      "save the most (idle CPUs parked at 9 W) at a turnaround cost from\n"
      "time-sharing — the placement/power interplay the paper leaves to\n"
      "the cluster software.\n");
  return 0;
}
