// bench_abl_estimators - Ablation A7: accuracy of the three workload
// estimators (paper footnote 1) as the true memory latencies drift away
// from the nominal constants the predictor assumes.
//
//   - single-point (the paper's prototype): trusts nominal latencies;
//   - two-frequency (from [2]): solves latencies out entirely;
//   - bounds: brackets the truth with best/worst-case latencies.
#include "bench/common.h"

#include "core/estimators.h"
#include "workload/phase.h"

using namespace fvsst;
using units::GHz;
using units::MHz;

namespace {

const mach::MemoryLatencies kLat = mach::p630().latencies;

core::CounterObservation observe(const workload::Phase& p, double g) {
  core::CounterObservation obs;
  obs.measured_hz = g;
  obs.delta.instructions = 1e8;
  obs.delta.cycles = 1e8 / workload::true_ipc(p, kLat, g);
  obs.delta.l2_accesses = 1e8 * p.apki_l2 / 1000.0;
  obs.delta.l3_accesses = 1e8 * p.apki_l3 / 1000.0;
  obs.delta.mem_accesses = 1e8 * p.apki_mem / 1000.0;
  return obs;
}

}  // namespace

int main() {
  bench::banner("Ablation A7",
                "Estimator accuracy vs true-latency drift (footnote 1)");

  const core::IpcPredictor single(kLat);
  const core::BoundsEstimator bounds(kLat, 0.85, 1.40);

  sim::TextTable out(
      "Worst |predicted - true| IPC over 250-1000 MHz, 30%-intensity phase");
  out.set_header({"true latency / nominal", "single-point", "two-frequency",
                  "bounds bracket truth?"});
  for (double scale : {0.85, 1.0, 1.1, 1.2, 1.3, 1.4}) {
    workload::Phase p = workload::synthetic_phase("p", 30.0, 1e9);
    p.latency_scale = scale;

    const auto est_single = single.estimate(observe(p, 1 * GHz));
    const auto est_two = core::TwoPointEstimator::estimate(
        observe(p, 1 * GHz), observe(p, 600 * MHz));
    const auto est_bounds = bounds.estimate(observe(p, 1 * GHz));

    double worst_single = 0.0, worst_two = 0.0;
    bool bracketed = true;
    for (double mhz = 250; mhz <= 1000; mhz += 50) {
      const double truth = workload::true_ipc(p, kLat, mhz * MHz);
      worst_single = std::max(
          worst_single,
          std::abs(single.predict_ipc(est_single, mhz * MHz) - truth));
      worst_two = std::max(
          worst_two,
          std::abs(single.predict_ipc(est_two, mhz * MHz) - truth));
      const double a = single.predict_ipc(est_bounds.best, mhz * MHz);
      const double b = single.predict_ipc(est_bounds.worst, mhz * MHz);
      if (truth < std::min(a, b) - 1e-9 || truth > std::max(a, b) + 1e-9) {
        bracketed = false;
      }
    }
    out.add_row({sim::TextTable::num(scale, 2),
                 sim::TextTable::num(worst_single, 4),
                 sim::TextTable::num(worst_two, 4),
                 bracketed ? "yes" : "NO"});
  }
  out.print();
  std::printf(
      "Expected: the single-point estimator's error grows with latency\n"
      "drift (the paper's acknowledged weakness); the two-frequency solve\n"
      "is exact regardless (no latency constants enter it); the [0.85,1.40]\n"
      "bounds bracket the truth across the drift range.\n");
  return 0;
}
