// bench_micro_substrate - google-benchmark microbenchmarks of the
// simulation substrate: event queue, RNG, cache model, the core's
// execution loop, the metric registry's string vs interned-handle paths,
// and journal serialization.  These bound how much simulated time per wall
// second the experiment harness can deliver.
//
// The registry and journal benches also report "allocs/iter" (counted via
// this TU's operator new) so the zero-allocation claim of the handle path
// is measured, not asserted.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "cpu/core.h"
#include "mach/machine_config.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "simkit/event_log.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"
#include "simkit/telemetry.h"
#include "workload/synthetic.h"

// Heap-allocation counter.  Replacing operator new/delete in this TU
// intercepts every allocation in the process, so benches can report the
// allocations their hot path performs per iteration.
namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace fvsst;

/// Wraps a benchmark loop body with the allocation counter and reports
/// allocs/iter alongside the timing.
template <typename Fn>
void with_alloc_counter(benchmark::State& state, Fn&& body) {
  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    body();
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(after - before) /
      static_cast<double>(state.iterations()));
}

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Rng rng(7);
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(rng.uniform(0.0, 100.0), [] {});
    }
    sim.run_until(200.0);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Range(1 << 10, 1 << 16);

void BM_PeriodicEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t fired = 0;
    sim.schedule_every(0.001, [&] { ++fired; });
    sim.run_until(100.0);  // 100k firings
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_PeriodicEventThroughput);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache({64ull * 1024, 128, 2});  // P630 L1D
  sim::Rng rng(3);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = rng.next_u64() % (512ull * 1024);
    benchmark::DoNotOptimize(cache.access(addr));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyAccess(benchmark::State& state) {
  mem::MemoryHierarchy h = mem::MemoryHierarchy::p630();
  sim::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.access(rng.next_u64() % (64ull << 20)));
  }
}
BENCHMARK(BM_HierarchyAccess);

void BM_CoreSimulatedSecond(benchmark::State& state) {
  // How fast one core simulates one second of a phased workload.
  for (auto _ : state) {
    sim::Simulation sim;
    cpu::Core::Config cfg;
    cfg.latencies = mach::p630().latencies;
    cfg.max_hz = 1e9;
    cpu::Core core(sim, cfg, sim::Rng(4));
    workload::SyntheticParams params;
    params.phase1 = {100.0, 5e7};
    params.phase2 = {20.0, 2e7};
    core.add_workload(workload::make_synthetic(params));
    sim.schedule_every(0.01, [&] { core.read_counters(); });  // sampler-like
    sim.run_until(1.0);
    benchmark::DoNotOptimize(core.read_counters().instructions);
  }
}
BENCHMARK(BM_CoreSimulatedSecond);

// ---- Metric registry: string keys vs interned handles ---------------------

void BM_RegistrySeriesByString(benchmark::State& state) {
  sim::MetricRegistry reg;
  // A realistic registry: the per-CPU series of a 16-CPU daemon.
  for (int c = 0; c < 16; ++c) {
    const std::string prefix = "cpu" + std::to_string(c) + "/";
    for (const char* name :
         {"granted_hz", "desired_hz", "predicted_ipc", "measured_ipc",
          "ipc_deviation"}) {
      reg.series(prefix + name);
    }
  }
  double t = 0.0;
  with_alloc_counter(state, [&] {
    // What the pre-handle hot loop did every sample: rebuild the key,
    // hash it, then append.
    reg.series("cpu7/granted_hz").add(t, 1e9);
    t += 0.01;
  });
}
BENCHMARK(BM_RegistrySeriesByString);

void BM_RegistrySeriesByHandle(benchmark::State& state) {
  sim::MetricRegistry reg;
  for (int c = 0; c < 16; ++c) {
    const std::string prefix = "cpu" + std::to_string(c) + "/";
    for (const char* name :
         {"granted_hz", "desired_hz", "predicted_ipc", "measured_ipc",
          "ipc_deviation"}) {
      reg.series(prefix + name);
    }
  }
  const sim::MetricId id = reg.intern_series("cpu7/granted_hz");
  sim::TimeSeries& series = reg.series(id);
  double t = 0.0;
  with_alloc_counter(state, [&] {
    series.add(t, 1e9);
    t += 0.01;
  });
}
BENCHMARK(BM_RegistrySeriesByHandle);

void BM_RegistryCounterByString(benchmark::State& state) {
  sim::MetricRegistry reg;
  for (int i = 0; i < 32; ++i) reg.counter("loop/c" + std::to_string(i));
  with_alloc_counter(state,
                     [&] { benchmark::DoNotOptimize(++reg.counter(
                           "loop/cycles")); });
}
BENCHMARK(BM_RegistryCounterByString);

void BM_RegistryCounterByHandle(benchmark::State& state) {
  sim::MetricRegistry reg;
  for (int i = 0; i < 32; ++i) reg.counter("loop/c" + std::to_string(i));
  const sim::CounterId id = reg.intern_counter("loop/cycles");
  with_alloc_counter(state,
                     [&] { benchmark::DoNotOptimize(++reg.counter(id)); });
}
BENCHMARK(BM_RegistryCounterByHandle);

// ---- Journal: event append and JSONL serialization ------------------------

sim::Event sample_decision(double t) {
  sim::Event e;
  e.t = t;
  e.type = sim::EventType::kDecision;
  e.cpu = 3;
  e.set("granted_hz", 1.1e9)
      .set("desired_hz", 1.3e9)
      .set("predicted_ipc", 0.91)
      .set("volts", 1.26);
  return e;
}

void BM_JournalPush(benchmark::State& state) {
  sim::EventLog log;
  double t = 0.0;
  with_alloc_counter(state, [&] {
    log.push(sample_decision(t));
    t += 0.01;
    if (log.size() > 65536) log.clear();
  });
}
BENCHMARK(BM_JournalPush);

void BM_JournalSerializeEvent(benchmark::State& state) {
  const sim::Event e = sample_decision(1.23);
  std::string buf;
  with_alloc_counter(state, [&] {
    buf.clear();
    sim::append_event_jsonl(buf, e);
    benchmark::DoNotOptimize(buf.data());
  });
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_JournalSerializeEvent);

void BM_JournalStreamWrite(benchmark::State& state) {
  // Steady-state streaming: push into a log drained by a stream writer, so
  // the in-memory tail stays at one event regardless of run length.
  std::ostringstream sink;
  sim::JsonlStreamWriter writer(sink);
  sim::EventLog log;
  log.stream_to(&writer);
  double t = 0.0;
  with_alloc_counter(state, [&] {
    log.push(sample_decision(t));
    t += 0.01;
    if (sink.tellp() > (1 << 22)) {
      sink.str({});
      sink.clear();
    }
  });
}
BENCHMARK(BM_JournalStreamWrite);

}  // namespace

BENCHMARK_MAIN();
