// bench_micro_substrate - google-benchmark microbenchmarks of the
// simulation substrate: event queue, RNG, cache model, and the core's
// execution loop.  These bound how much simulated time per wall second the
// experiment harness can deliver.
#include <benchmark/benchmark.h>

#include "cpu/core.h"
#include "mach/machine_config.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace fvsst;

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Rng rng(7);
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(rng.uniform(0.0, 100.0), [] {});
    }
    sim.run_until(200.0);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Range(1 << 10, 1 << 16);

void BM_PeriodicEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t fired = 0;
    sim.schedule_every(0.001, [&] { ++fired; });
    sim.run_until(100.0);  // 100k firings
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_PeriodicEventThroughput);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache({64ull * 1024, 128, 2});  // P630 L1D
  sim::Rng rng(3);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = rng.next_u64() % (512ull * 1024);
    benchmark::DoNotOptimize(cache.access(addr));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyAccess(benchmark::State& state) {
  mem::MemoryHierarchy h = mem::MemoryHierarchy::p630();
  sim::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.access(rng.next_u64() % (64ull << 20)));
  }
}
BENCHMARK(BM_HierarchyAccess);

void BM_CoreSimulatedSecond(benchmark::State& state) {
  // How fast one core simulates one second of a phased workload.
  for (auto _ : state) {
    sim::Simulation sim;
    cpu::Core::Config cfg;
    cfg.latencies = mach::p630().latencies;
    cfg.max_hz = 1e9;
    cpu::Core core(sim, cfg, sim::Rng(4));
    workload::SyntheticParams params;
    params.phase1 = {100.0, 5e7};
    params.phase2 = {20.0, 2e7};
    core.add_workload(workload::make_synthetic(params));
    sim.schedule_every(0.01, [&] { core.read_counters(); });  // sampler-like
    sim.run_until(1.0);
    benchmark::DoNotOptimize(core.read_counters().instructions);
  }
}
BENCHMARK(BM_CoreSimulatedSecond);

}  // namespace

BENCHMARK_MAIN();
