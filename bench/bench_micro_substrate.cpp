// bench_micro_substrate - google-benchmark microbenchmarks of the
// simulation substrate: event queue, RNG, cache model, the core's
// execution loop, the metric registry's string vs interned-handle paths,
// and journal serialization.  These bound how much simulated time per wall
// second the experiment harness can deliver.
//
// The registry and journal benches also report "allocs/iter" (counted via
// this TU's operator new) so the zero-allocation claim of the handle path
// is measured, not asserted.
//
// `--smoke` skips google-benchmark entirely and runs the sim-throughput
// regression gates instead: skip-ahead advance-call reduction, event-driven
// daemon event-count reduction, binary-vs-JSONL serialize throughput, and
// the monitor aggregators' per-observation cost.  The first two are
// deterministic counters; the serialize ratio is a same-process ratio so
// machine load cancels out, and the monitor gate takes the best of three
// passes for the same reason.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <sstream>
#include <string>

#include "cluster/cluster.h"
#include "core/cluster_daemon.h"
#include "core/daemon.h"
#include "cpu/core.h"
#include "mach/machine_config.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/event_queue.h"
#include "simkit/monitor.h"
#include "simkit/rng.h"
#include "simkit/telemetry.h"
#include "workload/synthetic.h"

// Heap-allocation counter.  Replacing operator new/delete in this TU
// intercepts every allocation in the process, so benches can report the
// allocations their hot path performs per iteration.
//
// GCC flags malloc-backed operator new paired with std::free as a
// mismatched allocation pair at inlined call sites; the pairing is the
// whole point of the interposer, so silence that one diagnostic here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace fvsst;

/// Wraps a benchmark loop body with the allocation counter and reports
/// allocs/iter alongside the timing.
template <typename Fn>
void with_alloc_counter(benchmark::State& state, Fn&& body) {
  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    body();
  }
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  state.counters["allocs/iter"] = benchmark::Counter(
      static_cast<double>(after - before) /
      static_cast<double>(state.iterations()));
}

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Rng rng(7);
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(rng.uniform(0.0, 100.0), [] {});
    }
    sim.run_until(200.0);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Range(1 << 10, 1 << 16);

void BM_PeriodicEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t fired = 0;
    sim.schedule_every(0.001, [&] { ++fired; });
    sim.run_until(100.0);  // 100k firings
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_PeriodicEventThroughput);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache({64ull * 1024, 128, 2});  // P630 L1D
  sim::Rng rng(3);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = rng.next_u64() % (512ull * 1024);
    benchmark::DoNotOptimize(cache.access(addr));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyAccess(benchmark::State& state) {
  mem::MemoryHierarchy h = mem::MemoryHierarchy::p630();
  sim::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.access(rng.next_u64() % (64ull << 20)));
  }
}
BENCHMARK(BM_HierarchyAccess);

void BM_CoreSimulatedSecond(benchmark::State& state) {
  // How fast one core simulates one second of a phased workload.
  for (auto _ : state) {
    sim::Simulation sim;
    cpu::Core::Config cfg;
    cfg.latencies = mach::p630().latencies;
    cfg.max_hz = 1e9;
    cpu::Core core(sim, cfg, sim::Rng(4));
    workload::SyntheticParams params;
    params.phase1 = {100.0, 5e7};
    params.phase2 = {20.0, 2e7};
    core.add_workload(workload::make_synthetic(params));
    sim.schedule_every(0.01, [&] { core.read_counters(); });  // sampler-like
    sim.run_until(1.0);
    benchmark::DoNotOptimize(core.read_counters().instructions);
  }
}
BENCHMARK(BM_CoreSimulatedSecond);

/// Grid-free core for the skip-ahead path: noise-free (the phase ETA is
/// exact) and a single job (quantum expiry out of the way), so
/// next_interesting_time() names the phase boundaries and nothing else.
std::unique_ptr<cpu::Core> make_skip_core(sim::Simulation& sim) {
  cpu::Core::Config cfg;
  cfg.latencies = mach::p630().latencies;
  cfg.max_hz = 1e9;
  cfg.execution_noise_sigma = 0.0;
  cfg.counter_noise_sigma = 0.0;
  cfg.quantum_s = 1e9;
  auto core = std::make_unique<cpu::Core>(sim, cfg, sim::Rng(4));
  workload::SyntheticParams params;
  params.phase1 = {100.0, 3e8};
  params.phase2 = {20.0, 1e8};
  core->add_workload(workload::make_synthetic(params));
  return core;
}

/// Advances `core` to `end` by jumping between interesting times (each
/// boundary crossed by 1 ns so the next query names the phase after it).
void skip_ahead_to(cpu::Core& core, double end) {
  for (;;) {
    const double next = core.next_interesting_time() + 1e-9;
    if (!(next < end)) break;
    core.advance_to(next);
  }
  core.advance_to(end);
}

void BM_CoreSimulatedSecondSkipAhead(benchmark::State& state) {
  // BM_CoreSimulatedSecond's question again, but jumping between
  // next_interesting_time() boundaries instead of ticking every 10 ms.
  for (auto _ : state) {
    sim::Simulation sim;
    auto core = make_skip_core(sim);
    skip_ahead_to(*core, 1.0);
    benchmark::DoNotOptimize(core->read_counters().instructions);
  }
}
BENCHMARK(BM_CoreSimulatedSecondSkipAhead);

// ---- Metric registry: string keys vs interned handles ---------------------

void BM_RegistrySeriesByString(benchmark::State& state) {
  sim::MetricRegistry reg;
  // A realistic registry: the per-CPU series of a 16-CPU daemon.
  for (int c = 0; c < 16; ++c) {
    const std::string prefix = "cpu" + std::to_string(c) + "/";
    for (const char* name :
         {"granted_hz", "desired_hz", "predicted_ipc", "measured_ipc",
          "ipc_deviation"}) {
      reg.series(prefix + name);
    }
  }
  double t = 0.0;
  with_alloc_counter(state, [&] {
    // What the pre-handle hot loop did every sample: rebuild the key,
    // hash it, then append.
    reg.series("cpu7/granted_hz").add(t, 1e9);
    t += 0.01;
  });
}
BENCHMARK(BM_RegistrySeriesByString);

void BM_RegistrySeriesByHandle(benchmark::State& state) {
  sim::MetricRegistry reg;
  for (int c = 0; c < 16; ++c) {
    const std::string prefix = "cpu" + std::to_string(c) + "/";
    for (const char* name :
         {"granted_hz", "desired_hz", "predicted_ipc", "measured_ipc",
          "ipc_deviation"}) {
      reg.series(prefix + name);
    }
  }
  const sim::MetricId id = reg.intern_series("cpu7/granted_hz");
  sim::TimeSeries& series = reg.series(id);
  double t = 0.0;
  with_alloc_counter(state, [&] {
    series.add(t, 1e9);
    t += 0.01;
  });
}
BENCHMARK(BM_RegistrySeriesByHandle);

void BM_RegistryCounterByString(benchmark::State& state) {
  sim::MetricRegistry reg;
  for (int i = 0; i < 32; ++i) reg.counter("loop/c" + std::to_string(i));
  with_alloc_counter(state,
                     [&] { benchmark::DoNotOptimize(++reg.counter(
                           "loop/cycles")); });
}
BENCHMARK(BM_RegistryCounterByString);

void BM_RegistryCounterByHandle(benchmark::State& state) {
  sim::MetricRegistry reg;
  for (int i = 0; i < 32; ++i) reg.counter("loop/c" + std::to_string(i));
  const sim::CounterId id = reg.intern_counter("loop/cycles");
  with_alloc_counter(state,
                     [&] { benchmark::DoNotOptimize(++reg.counter(id)); });
}
BENCHMARK(BM_RegistryCounterByHandle);

// ---- Journal: event append and JSONL serialization ------------------------

sim::Event sample_decision(double t) {
  sim::Event e;
  e.t = t;
  e.type = sim::EventType::kDecision;
  e.cpu = 3;
  e.set("granted_hz", 1.1e9)
      .set("desired_hz", 1.3e9)
      .set("predicted_ipc", 0.91)
      .set("volts", 1.26);
  return e;
}

void BM_JournalPush(benchmark::State& state) {
  sim::EventLog log;
  double t = 0.0;
  with_alloc_counter(state, [&] {
    log.push(sample_decision(t));
    t += 0.01;
    if (log.size() > 65536) log.clear();
  });
}
BENCHMARK(BM_JournalPush);

void BM_JournalSerializeEvent(benchmark::State& state) {
  const sim::Event e = sample_decision(1.23);
  std::string buf;
  with_alloc_counter(state, [&] {
    buf.clear();
    sim::append_event_jsonl(buf, e);
    benchmark::DoNotOptimize(buf.data());
  });
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_JournalSerializeEvent);

void BM_JournalSerializeEventBinary(benchmark::State& state) {
  // The same decision event through the FJB1 encoder: doubles as raw bits
  // instead of shortest-round-trip decimal, which is where the JSONL path
  // spends most of its time.
  const sim::Event e = sample_decision(1.23);
  std::string buf;
  with_alloc_counter(state, [&] {
    buf.clear();
    sim::append_event_binary(buf, e);
    benchmark::DoNotOptimize(buf.data());
  });
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_JournalSerializeEventBinary);

void BM_JournalStreamWrite(benchmark::State& state) {
  // Steady-state streaming: push into a log drained by a stream writer, so
  // the in-memory tail stays at one event regardless of run length.
  std::ostringstream sink;
  sim::JsonlStreamWriter writer(sink);
  sim::EventLog log;
  log.stream_to(&writer);
  double t = 0.0;
  with_alloc_counter(state, [&] {
    log.push(sample_decision(t));
    t += 0.01;
    if (sink.tellp() > (1 << 22)) {
      sink.str({});
      sink.clear();
    }
  });
}
BENCHMARK(BM_JournalStreamWrite);

void BM_JournalStreamWriteBinary(benchmark::State& state) {
  std::ostringstream sink;
  sim::BinaryJournalWriter writer(sink);
  sim::EventLog log;
  log.stream_to(&writer);
  double t = 0.0;
  with_alloc_counter(state, [&] {
    log.push(sample_decision(t));
    t += 0.01;
    if (sink.tellp() > (1 << 22)) {
      sink.str({});
      sink.clear();
    }
  });
}
BENCHMARK(BM_JournalStreamWriteBinary);

// ---- Monitor: aggregator hot path -----------------------------------------

void BM_MonitorWindowObserve(benchmark::State& state) {
  sim::monitor::SlidingWindow window(0.6, 16);
  double t = 0.0;
  with_alloc_counter(state, [&] {
    window.observe(t, 1.5);
    t += 1e-4;
  });
}
BENCHMARK(BM_MonitorWindowObserve);

void BM_MonitorSketchObserve(benchmark::State& state) {
  sim::monitor::P2Quantile sketch(0.9);
  double x = 0.0;
  with_alloc_counter(state, [&] {
    sketch.observe(x);
    x += 0.7;
    if (x > 1000.0) x = 0.0;
  });
  benchmark::DoNotOptimize(sketch.value());
}
BENCHMARK(BM_MonitorSketchObserve);

void BM_MonitorObserveAndEvaluate(benchmark::State& state) {
  // The full per-sample monitor cost a daemon pays: one observation into
  // the default rule pack's windows plus one evaluation of every rule.
  const sim::monitor::RuleSet rules =
      sim::monitor::RuleSet::parse_string(sim::monitor::default_rule_pack());
  sim::monitor::Monitor mon(rules);
  const sim::monitor::InputId over = mon.input("over_budget_w");
  double t = 0.0;
  with_alloc_counter(state, [&] {
    mon.observe(over, t, 0.0);
    mon.evaluate(t);
    t += 0.01;
  });
}
BENCHMARK(BM_MonitorObserveAndEvaluate);

// ---- --smoke: sim-throughput regression gates -----------------------------

/// One SMP daemon second in the given advance mode; returns the simulation's
/// executed-event count (deterministic — no wall clock involved).
std::size_t daemon_events_executed(core::AdvanceMode mode) {
  sim::Simulation sim;
  sim::Rng rng(17);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  workload::SyntheticParams params;
  params.phase1 = {100.0, 3e8};
  params.phase2 = {20.0, 1e8};
  cluster.core({0, 1}).add_workload(workload::make_synthetic(params));
  cluster.core({0, 2}).add_workload(
      workload::make_uniform_synthetic(60.0, 1e12));
  power::PowerBudget budget(560.0);
  core::DaemonConfig config;
  config.advance_mode = mode;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, config);
  sim.run_for(2.0);
  if (daemon.schedules_run() == 0) {
    std::fprintf(stderr, "smoke: daemon ran no scheduling cycles\n");
    std::exit(1);
  }
  return sim.events_executed();
}

/// Nanoseconds per event for `serialize` over `iters` calls, best of three
/// passes so a scheduler hiccup cannot fail the gate on its own.
template <typename Fn>
double serialize_ns_per_event(Fn&& serialize, std::size_t iters) {
  double best = 1e300;
  std::string buf;
  for (int pass = 0; pass < 3; ++pass) {
    buf.clear();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      serialize(buf);
      if (buf.size() > (1u << 22)) buf.clear();
    }
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(buf.data());
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                t1 - t0)
                                .count()) /
        static_cast<double>(iters);
    if (ns < best) best = ns;
  }
  return best;
}

/// The sim-throughput floors from scripts/check.sh.  Exits nonzero when a
/// regression eats the skip-ahead or binary-journal speedups this tier
/// exists to protect.
int run_smoke() {
  int failures = 0;

  // Gate 1: skip-ahead stepping must collapse per-tick advances.  Both
  // cores simulate the same 4 phased seconds; the ticked one is advanced
  // every 10 ms, the other jumps between next_interesting_time() marks.
  {
    sim::Simulation sim;
    auto tick = make_skip_core(sim);
    auto jump = make_skip_core(sim);
    const double t = 0.010;
    for (int k = 1; k <= 400; ++k) {
      tick->advance_to(static_cast<double>(k) * t);
    }
    skip_ahead_to(*jump, 400.0 * t);
    const auto tick_calls = tick->advance_calls();
    const auto jump_calls = jump->advance_calls();
    std::printf("smoke: advance calls per 4 sim-seconds: tick=%llu "
                "skip-ahead=%llu (%.1fx)\n",
                static_cast<unsigned long long>(tick_calls),
                static_cast<unsigned long long>(jump_calls),
                static_cast<double>(tick_calls) /
                    static_cast<double>(jump_calls ? jump_calls : 1));
    if (tick_calls < 3 * jump_calls) {
      std::fprintf(stderr,
                   "smoke FAIL: skip-ahead saved < 3x advance calls\n");
      ++failures;
    }
  }

  // Gate 2: the event-driven daemon must execute far fewer simulation
  // events than the tick-driven one for the same (byte-identical) run.
  {
    const std::size_t tick_events =
        daemon_events_executed(core::AdvanceMode::kTick);
    const std::size_t event_events =
        daemon_events_executed(core::AdvanceMode::kEvent);
    std::printf("smoke: daemon events per 2 sim-seconds: tick=%zu "
                "event-driven=%zu (%.1fx)\n",
                tick_events, event_events,
                static_cast<double>(tick_events) /
                    static_cast<double>(event_events ? event_events : 1));
    if (tick_events < 3 * event_events) {
      std::fprintf(stderr,
                   "smoke FAIL: event-driven daemon executed > 1/3 of the "
                   "tick-driven event count\n");
      ++failures;
    }
  }

  // Gate 3: the binary record must serialize >= 4x faster than JSONL.
  // A same-process timing ratio, so machine load cancels out.
  {
    const sim::Event e = sample_decision(1.23);
    const std::size_t iters = 300000;
    const double jsonl_ns = serialize_ns_per_event(
        [&](std::string& buf) { sim::append_event_jsonl(buf, e); }, iters);
    const double binary_ns = serialize_ns_per_event(
        [&](std::string& buf) { sim::append_event_binary(buf, e); }, iters);
    const double ratio = jsonl_ns / binary_ns;
    std::printf("smoke: serialize ns/event: jsonl=%.0f binary=%.0f "
                "(%.1fx)\n",
                jsonl_ns, binary_ns, ratio);
    if (ratio < 4.0) {
      std::fprintf(stderr,
                   "smoke FAIL: binary serialize < 4x JSONL throughput\n");
      ++failures;
    }
  }

  // Gate 4: the monitor's per-observation cost.  The aggregators sit on
  // the daemon's commit path at every sample, so their hot loop must stay
  // under 25 ns per observation and allocation-free in steady state.
  // Wall-clock timed, hence best of three passes.
  {
    sim::monitor::SlidingWindow window(0.6, 16);
    sim::monitor::P2Quantile sketch(0.9);
    const std::size_t iters = 300000;
    double t = 0.0, x = 0.0;
    // Warm-up settles the window ring and the sketch markers before any
    // allocation accounting starts.
    for (std::size_t i = 0; i < 1000; ++i) {
      window.observe(t, x);
      sketch.observe(x);
      t += 1e-4;
      x += 0.7;
    }
    double best = 1e300;
    std::size_t allocs = 0;
    for (int pass = 0; pass < 3; ++pass) {
      const std::size_t allocs_before =
          g_allocs.load(std::memory_order_relaxed);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        window.observe(t, x);
        sketch.observe(x);
        t += 1e-4;
        x += 0.7;
        if (x > 1000.0) x = 0.0;
      }
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(window.max(t));
      benchmark::DoNotOptimize(sketch.value());
      allocs += g_allocs.load(std::memory_order_relaxed) - allocs_before;
      const double ns =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(iters);
      if (ns < best) best = ns;
    }
    std::printf("smoke: monitor observe ns/obs (window + sketch): %.1f, "
                "allocs over 3x%zu obs: %zu\n",
                best, iters, allocs);
    if (best >= 25.0) {
      std::fprintf(stderr,
                   "smoke FAIL: monitor observation cost >= 25 ns\n");
      ++failures;
    }
    if (allocs != 0) {
      std::fprintf(stderr,
                   "smoke FAIL: monitor hot path allocated %zu time(s)\n",
                   allocs);
      ++failures;
    }
  }

  // Gate 5: a regression pin on the flat cluster daemon's steady-state
  // allocation rate.  Pooled summaries, the shared grant snapshot and the
  // into-buffer interval read keep the grant path itself off the heap;
  // what remains per round is event re-arms and channel-message envelopes
  // (std::function + payload), measured at ~72/round on this scenario.
  // The budget below pins that level — reintroducing per-round scratch
  // vectors (per-node grant copies, fresh summary buffers) blows it.
  {
    sim::Simulation sim;
    sim::Rng rng(11);
    const mach::MachineConfig machine = mach::p630();
    cluster::Cluster cluster =
        cluster::Cluster::homogeneous(sim, machine, 4, rng);
    cluster.core({0, 0}).add_workload(
        workload::make_uniform_synthetic(90.0, 1e12));
    cluster.core({2, 1}).add_workload(
        workload::make_uniform_synthetic(60.0, 1e12));
    power::PowerBudget budget(
        static_cast<double>(cluster.cpu_count()) * 140.0 * 0.4);
    core::ClusterDaemonConfig cfg;
    core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
    sim.run_for(3.0);  // warm-up: pools filled, telemetry vectors grown
    const std::size_t rounds_before = daemon.rounds();
    const std::size_t allocs_before = g_allocs.load(std::memory_order_relaxed);
    sim.run_for(10.0);
    const std::size_t rounds = daemon.rounds() - rounds_before;
    const std::size_t allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    const double per_round =
        static_cast<double>(allocs) / static_cast<double>(rounds ? rounds : 1);
    std::printf("smoke: cluster grant path: %zu allocs over %zu rounds "
                "(%.2f/round)\n",
                allocs, rounds, per_round);
    if (rounds == 0 || per_round > 90.0) {
      std::fprintf(stderr,
                   "smoke FAIL: cluster grant path allocates %.2f/round "
                   "(budget 90) — per-round scratch is back\n",
                   per_round);
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf("smoke: all sim-throughput floors hold\n");
  } else {
    std::printf("smoke: %d floor(s) violated\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
