// bench_abl_variants - Ablation A5: the paper's two-pass procedure vs the
// single-pass implementation it mentions as possible, vs the continuous
// f_ideal extension it sketches for hardware with many frequency settings.
#include "bench/common.h"

#include <chrono>

#include "core/scheduler.h"
#include "simkit/rng.h"

using namespace fvsst;
using units::MHz;

namespace {

std::vector<core::ProcView> random_views(std::size_t n, sim::Rng& rng) {
  std::vector<core::ProcView> views(n);
  for (auto& v : views) {
    v.estimate.valid = true;
    v.estimate.alpha_inv = 1.0 / rng.uniform(0.9, 2.0);
    v.estimate.mem_time_per_instr = rng.uniform(0.0, 15.0) / 1e9;
    v.idle = rng.bernoulli(0.15);
  }
  return views;
}

}  // namespace

int main() {
  bench::banner("Ablation A5",
                "Scheduler variants: two-pass vs single-pass vs continuous");

  const auto lat = mach::p630().latencies;
  const auto table = mach::p630_frequency_table();
  sim::Rng rng(77);

  // 1. Decision agreement & quality across 1000 random systems.
  std::size_t agree_single = 0, agree_cont = 0, total = 0;
  double power_two = 0.0, power_cont = 0.0;
  double perf_ratio_greedy = 0.0;
  std::size_t ratio_wins = 0, paper_wins = 0, constrained = 0;
  const core::IpcPredictor pred(lat);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 16));
    const auto views = random_views(n, rng);
    const double budget = rng.uniform(9.0 * n, 140.0 * n);
    core::FrequencyScheduler::Options o2, o1, oc, ow;
    o1.variant = core::SchedulerVariant::kSinglePass;
    oc.variant = core::SchedulerVariant::kContinuous;
    ow.variant = core::SchedulerVariant::kWattsPerLoss;
    const auto r2 = core::FrequencyScheduler(table, lat, o2)
                        .schedule(views, budget);
    const auto r1 = core::FrequencyScheduler(table, lat, o1)
                        .schedule(views, budget);
    const auto rc = core::FrequencyScheduler(table, lat, oc)
                        .schedule(views, budget);
    const auto rw = core::FrequencyScheduler(table, lat, ow)
                        .schedule(views, budget);
    for (std::size_t p = 0; p < n; ++p) {
      ++total;
      if (r2.decisions[p].hz == r1.decisions[p].hz) ++agree_single;
      if (r2.decisions[p].hz == rc.decisions[p].hz) ++agree_cont;
    }
    power_two += r2.total_cpu_power_w;
    power_cont += rc.total_cpu_power_w;
    if (r2.downgrade_steps > 0 && r2.feasible) {
      double pa = 0.0, pb = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        pa += pred.predict_performance(views[p].estimate,
                                       r2.decisions[p].hz);
        pb += pred.predict_performance(views[p].estimate,
                                       rw.decisions[p].hz);
      }
      ++constrained;
      perf_ratio_greedy += pb / pa;
      if (pb > pa * 1.001) ++ratio_wins;
      if (pa > pb * 1.001) ++paper_wins;
    }
  }
  std::printf("Decision agreement with two-pass over 1000 random systems:\n");
  std::printf("  single-pass: %5.1f%% (expected: 100%% — same greedy order)\n",
              100.0 * static_cast<double>(agree_single) / total);
  std::printf("  continuous:  %5.1f%% (expected: high; snapping f_ideal up\n"
              "               can differ by one grid step)\n",
              100.0 * static_cast<double>(agree_cont) / total);
  std::printf("Mean total power: two-pass %.1f W, continuous %.1f W\n",
              power_two / 1000.0, power_cont / 1000.0);
  std::printf(
      "Watts-per-loss greedy vs the paper's min-loss greedy on the %zu\n"
      "budget-constrained systems: mean perf ratio %.3f; ratio-greedy\n"
      "strictly better on %zu, paper's greedy on %zu (both are knapsack\n"
      "heuristics — neither dominates).\n\n",
      constrained, perf_ratio_greedy / constrained, ratio_wins, paper_wins);

  // 2. Scheduling-computation cost vs processor count (the continuous
  // variant's selling point for large frequency sets / big clusters).
  sim::TextTable out("Mean schedule() wall time (microseconds)");
  out.set_header({"procs", "two-pass", "single-pass", "continuous"});
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    const auto views = random_views(n, rng);
    const double budget = 60.0 * static_cast<double>(n);
    std::vector<std::string> row{std::to_string(n)};
    for (auto variant : {core::SchedulerVariant::kTwoPass,
                         core::SchedulerVariant::kSinglePass,
                         core::SchedulerVariant::kContinuous}) {
      core::FrequencyScheduler::Options opts;
      opts.variant = variant;
      const core::FrequencyScheduler sched(table, lat, opts);
      const int reps = 200;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) sched.schedule(views, budget);
      const auto end = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(end - start).count() /
          reps;
      row.push_back(sim::TextTable::num(us, 1));
    }
    out.add_row(std::move(row));
  }
  out.print();
  std::printf(
      "Expected: single-pass matches two-pass decisions exactly but scales\n"
      "better on large clusters; the continuous variant avoids the\n"
      "per-frequency scan entirely, which matters for hardware with many\n"
      "or continuous settings (the paper's stated motivation).\n");
  return 0;
}
