// bench_abl_hierarchy - Ablation A14: hierarchical power limits.
//
// The paper's motivation cites "limitations on their internal
// power-delivery and cooling systems as well as installation limits on the
// total power" — i.e. per-enclosure limits *and* a site limit.  This bench
// compares scheduling against the full constraint hierarchy with the naive
// alternative of enforcing only the site limit, which can silently
// overload individual node feeds.
#include "bench/common.h"

#include "core/constrained_scheduler.h"
#include "simkit/rng.h"
#include "workload/phase.h"

using namespace fvsst;
using units::MHz;

int main() {
  bench::banner("Ablation A14",
                "Hierarchical limits: per-node feeds + site budget");

  const auto lat = mach::p630().latencies;
  const auto table = mach::p630_frequency_table();
  constexpr std::size_t kNodes = 4, kCpus = 4;

  // Diverse cluster: node 0 all CPU-bound (the hot node), others mixed.
  sim::Rng rng(21);
  std::vector<core::ProcView> procs(kNodes * kCpus);
  std::vector<workload::Phase> truth;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    const double m = (p < kCpus) ? 0.06 : rng.uniform(0.0, 10.0);
    const auto phase =
        workload::phase_from_stall_cpi("p", 1.6, m, lat, 1e9, 1e9);
    truth.push_back(phase);
    procs[p].estimate.valid = true;
    procs[p].estimate.alpha_inv = 1.0 / phase.alpha;
    procs[p].estimate.mem_time_per_instr =
        workload::mem_time_per_instruction(phase, lat);
  }

  const double node_limit = 400.0;   // each node's feed
  const double site_limit = 1400.0;  // the room's branch circuit

  const core::ConstrainedScheduler sched(table, lat, {});
  const core::FrequencyScheduler site_only(table, lat, {});

  const auto full = sched.schedule(
      procs, core::node_and_site_constraints(kNodes, kCpus, node_limit,
                                             site_limit));
  const auto naive = site_only.schedule(procs, site_limit);

  sim::TextTable out("Per-node power (W); node feed limit 400 W");
  out.set_header({"mode", "node0", "node1", "node2", "node3", "site",
                  "feed overload?"});
  auto row = [&](const char* name, const core::ScheduleResult& r) {
    std::vector<std::string> cells{name};
    bool overload = false;
    double site = 0.0;
    for (std::size_t n = 0; n < kNodes; ++n) {
      double w = 0.0;
      for (std::size_t c = 0; c < kCpus; ++c) {
        w += r.decisions[n * kCpus + c].watts;
      }
      site += w;
      if (w > node_limit + 1e-9) overload = true;
      cells.push_back(sim::TextTable::num(w, 0));
    }
    cells.push_back(sim::TextTable::num(site, 0));
    cells.push_back(overload ? "YES" : "no");
    out.add_row(std::move(cells));
  };
  row("node+site constraints", full.schedule);
  row("site limit only", naive);
  out.print();

  double perf_full = 0.0, perf_naive = 0.0;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    perf_full += workload::true_performance(truth[p], lat,
                                            full.schedule.decisions[p].hz);
    perf_naive +=
        workload::true_performance(truth[p], lat, naive.decisions[p].hz);
  }
  std::printf("aggregate performance: hierarchical %.3g, site-only %.3g "
              "(%.1f%% delta)\n",
              perf_full, perf_naive,
              (perf_full / perf_naive - 1.0) * 100.0);
  std::printf(
      "Expected: enforcing only the site limit leaves the all-CPU-bound\n"
      "node over its own 400 W feed (a tripped breaker in practice); the\n"
      "hierarchical scheduler pulls that node under its feed at a small\n"
      "aggregate performance cost, leaving the mixed nodes untouched.\n");
  return 0;
}
