// bench_table2_predictor - Regenerates paper Table 2: predictor error (IPC
// deviation) across synthetic-benchmark intensities.
//
// Setup per the paper: the synthetic benchmark runs on CPU 3 with CPUs 0-2
// in the hot idle loop; T = 100 ms, t = 10 ms; the prototype had no idle
// detection.  The final column (CPU3*) excludes the benchmark's
// initialisation and termination phases, which the predictor tracks poorly
// (cold misses at above-nominal latencies).
//
// Paper values: deviations of 0.008-0.010 on the idle CPUs, 0.011-0.025 on
// CPU3, shrinking to 0.010-0.017 when init/exit are excluded.
#include "bench/common.h"

using namespace fvsst;
using units::GHz;

namespace {

struct Row {
  double intensity;
  double dev[4];   // CPU0..CPU3
  double dev3_star;
};

Row run_intensity(double intensity) {
  sim::Simulation sim;
  sim::Rng rng(1234 + static_cast<std::uint64_t>(intensity));
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);

  // Long main phases so the run covers many T-intervals, as the paper's
  // minutes-long runs did (one transition misprediction then washes out
  // instead of dominating the mean).
  const double instructions =
      intensity >= 100.0 ? 5e9 : intensity >= 75.0 ? 2e9
                               : intensity >= 50.0 ? 1.2e9
                                                   : 8e8;
  workload::SyntheticParams params;
  params.phase1 = {intensity, instructions};
  params.phase2 = {intensity, instructions};
  params.with_init_exit = true;  // finite run with init/exit phases
  cluster.core({0, 3}).add_workload(workload::make_synthetic(params));

  power::PowerBudget budget(4 * 140.0);
  core::DaemonConfig cfg = bench::paper_daemon_config();
  cfg.scheduler.idle_detection = false;  // as in the paper's prototype
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);

  // Track when CPU 3 is inside init/exit phases.
  double init_ends = -1.0, exit_starts = -1.0;
  sim.schedule_every(0.005, [&] {
    const workload::Phase* phase = cluster.core({0, 3}).active_phase();
    if (!phase) return;
    if (init_ends < 0.0 && phase->name != "init") init_ends = sim.now();
    if (exit_starts < 0.0 && phase->name == "exit") exit_starts = sim.now();
  });

  while (cluster.core({0, 3}).job_finish_time(0) < 0.0 && sim.now() < 120.0) {
    sim.run_for(0.1);
  }
  const double finish = cluster.core({0, 3}).job_finish_time(0);
  if (exit_starts < 0.0) exit_starts = finish > 0 ? finish : sim.now();

  Row row{};
  row.intensity = intensity;
  for (std::size_t c = 0; c < 4; ++c) {
    row.dev[c] = daemon.deviation_stat(c).mean();
  }
  // CPU3*: deviations recorded strictly between init end and exit start.
  sim::RunningStat star;
  for (const auto& s : daemon.deviation_trace(3).samples()) {
    if (s.t > init_ends + 0.1 && s.t < exit_starts - 0.05) star.add(s.value);
  }
  row.dev3_star = star.mean();
  return row;
}

}  // namespace

int main() {
  bench::banner("Table 2", "Predictor error (mean |predicted - measured| IPC)");

  sim::TextTable out("IPC deviation; CPUs 0-2 hot idle, benchmark on CPU 3");
  out.set_header({"CPU intensity", "CPU0", "CPU1", "CPU2", "CPU3", "CPU3*"});
  for (double intensity : {100.0, 75.0, 50.0, 25.0}) {
    const Row row = run_intensity(intensity);
    out.add_row({sim::TextTable::num(intensity, 0),
                 sim::TextTable::num(row.dev[0], 3),
                 sim::TextTable::num(row.dev[1], 3),
                 sim::TextTable::num(row.dev[2], 3),
                 sim::TextTable::num(row.dev[3], 3),
                 sim::TextTable::num(row.dev3_star, 3)});
  }
  out.print();
  std::printf(
      "Paper values: idle CPUs 0.008-0.010; CPU3 0.011-0.025; CPU3*\n"
      "0.010-0.017.  Shape to reproduce: idle CPUs have tiny, stable error;\n"
      "CPU3's error is larger and drops once init/exit are excluded.\n");
  return 0;
}
