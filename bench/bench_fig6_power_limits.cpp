// bench_fig6_power_limits - Regenerates paper Figure 6: performance impact
// of power limits on the synthetic benchmark's two phases (CPU-intensive at
// 100%, memory-intensive at 20%), single-processor configuration.
//
// Paper shape: the memory-intensive phase shows no degradation across most
// of the limit range; the CPU-intensive phase degrades slightly less than
// one-to-one with frequency.
#include "bench/common.h"

using namespace fvsst;
using units::MHz;

int main() {
  bench::banner("Figure 6", "Performance impact of power limits");

  const mach::FrequencyTable table = mach::p630_frequency_table();
  const workload::WorkloadSpec cpu_spec =
      workload::make_uniform_synthetic(100.0, 3e9, false);
  const workload::WorkloadSpec mem_spec =
      workload::make_uniform_synthetic(20.0, 6e8, false);

  const double cpu_ref = bench::run_single_cpu(cpu_spec, 140.0).runtime_s;
  const double mem_ref = bench::run_single_cpu(mem_spec, 140.0).runtime_s;

  sim::TextTable out(
      "Normalised performance vs CPU power limit (single processor)");
  out.set_header({"limit W", "max MHz", "cpu-intensive 100%",
                  "mem-intensive 20%"});
  sim::TimeSeries cpu_curve("cpu100"), mem_curve("mem20");
  for (const auto& point : table.points()) {
    const double limit = point.watts;
    const double cpu_perf =
        cpu_ref / bench::run_single_cpu(cpu_spec, limit).runtime_s;
    const double mem_perf =
        mem_ref / bench::run_single_cpu(mem_spec, limit).runtime_s;
    out.add_row({sim::TextTable::num(limit, 0),
                 sim::TextTable::num(point.hz / MHz, 0),
                 sim::TextTable::num(cpu_perf, 3),
                 sim::TextTable::num(mem_perf, 3)});
    cpu_curve.add(limit, cpu_perf);
    mem_curve.add(limit, mem_perf);
  }
  out.print();
  std::printf(
      "Shape to reproduce (paper): the 20%%-intensity phase holds ~1.0 down\n"
      "to mid-range limits (performance saturation absorbs the cap); the\n"
      "100%%-intensity phase degrades slightly less than one-to-one with\n"
      "the frequency cap.\n");
  bench::maybe_dump_csv("fig6_power_limits", {&cpu_curve, &mem_curve}, 5.0);
  return 0;
}
