// bench_fig8_freq_distribution - Regenerates paper Figure 8: percentage of
// execution time each application spends at each frequency, under frequency
// caps of 1000 / 750 / 500 MHz (power limits 140 / 75 / 35 W).
//
// Paper shape: gzip/gap concentrate at 950-1000 MHz unconstrained and pile
// up at the cap when limited; mcf/health spend the majority of their time
// around 650 MHz and are unaffected by the 750 MHz cap.
#include "bench/common.h"

#include "core/analysis.h"

using namespace fvsst;
using units::MHz;

int main() {
  bench::banner("Figure 8", "Percentage of time at each frequency");

  const auto apps = workload::paper_applications();
  const double budgets[] = {140.0, 75.0, 35.0};
  const char* cap_names[] = {"1000MHz cap (140W)", "750MHz cap (75W)",
                             "500MHz cap (35W)"};

  for (int b = 0; b < 3; ++b) {
    sim::TextTable out(std::string("Time share per frequency, ") +
                       cap_names[b]);
    std::vector<std::string> header{"MHz"};
    for (const auto& app : apps) header.push_back(app.name);
    out.set_header(header);

    // Collect time-weighted frequency residency per app.
    std::vector<sim::CategoryHistogram> hists;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const auto r = bench::run_single_cpu(apps[a], budgets[b], 55 + a);
      hists.push_back(core::residency(r.granted, r.runtime_s));
    }

    const auto table = mach::p630_frequency_table();
    for (const auto& point : table.points()) {
      const double mhz = point.hz / MHz;
      bool any = false;
      std::vector<std::string> row{sim::TextTable::num(mhz, 0)};
      for (std::size_t a = 0; a < apps.size(); ++a) {
        const double frac = hists[a].fraction(point.hz);
        if (frac >= 0.005) any = true;
        row.push_back(frac >= 0.005 ? sim::TextTable::pct(frac) : "-");
      }
      if (any) out.add_row(std::move(row));
    }
    out.print();
  }

  std::printf(
      "Shape to reproduce (paper): unconstrained, gzip/gap sit at\n"
      "950-1000 MHz while mcf/health spend the majority of time near\n"
      "650 MHz; the 750 MHz cap squashes gzip/gap onto 750 MHz but barely\n"
      "moves mcf/health; at 500 MHz every application rides the cap for\n"
      "its dominant phases.\n");
  return 0;
}
