// bench_abl_failover - Ablation A16: how long does the cluster stay over
// budget when the supply fails and the coordinator dies at the same
// instant?  The paper's requirement — under the new limit within the
// supply's cascade tolerance DT — must survive the scheduler's own
// failure, so this sweeps the protection mechanisms (standby takeover
// aggressiveness, the node-local fail-safe, nothing at all) against the
// worst case: a budget drop whose triggered settings the coordinator never
// gets to send.
#include "bench/common.h"

#include "core/cluster_daemon.h"
#include "simkit/fault_plan.h"

using namespace fvsst;
using units::ms;
using units::us;

namespace {

constexpr double kFailAt = 1.0123;
constexpr std::size_t kNodes = 4;

/// Time from the simultaneous budget-drop + coordinator-crash to
/// cluster-wide compliance; < 0 when the cluster never complies before the
/// crashed coordinator returns at t = 3 s.
double failover_response(core::FailoverConfig failover) {
  sim::Simulation sim;
  sim::Rng rng(99);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, kNodes, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(80.0, 1e12));
  }
  power::PowerBudget budget(static_cast<double>(kNodes) * 4 * 140.0);
  sim::FaultPlan plan(1);
  plan.add({sim::FaultKind::kCoordinatorCrash, kFailAt, 3.0, /*target=*/0,
            0.0});
  core::ClusterDaemonConfig cfg;
  cfg.fault_plan = &plan;
  cfg.failover = failover;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(1.0);

  const double new_limit = static_cast<double>(kNodes) * 4 * 140.0 * 0.5;
  sim.schedule_at(kFailAt, [&] { budget.set_limit_w(new_limit); });
  double compliant_at = -1.0;
  sim.schedule_every(0.5 * ms, [&] {
    if (compliant_at < 0.0 && sim.now() > kFailAt &&
        cluster.cpu_power_w() <= new_limit) {
      compliant_at = sim.now();
    }
  });
  sim.run_for(2.9 - 1.0);  // stop before the crashed coordinator returns
  return compliant_at > 0.0 ? compliant_at - kFailAt : -1.0;
}

std::string fmt_response(double r) {
  return r < 0 ? "never (until restart)"
               : sim::TextTable::num(r * 1e3, 1) + " ms";
}

}  // namespace

int main() {
  bench::banner("Ablation A16",
                "Coordinator failover latency vs cascade tolerance DT");

  // The worst case for every row: the budget drops and the coordinator
  // crashes at the same instant, so the budget-triggered round dies with
  // it and only the configured protection can restore compliance.
  sim::TextTable standby_table(
      "Standby takeover: time to compliance vs election timeout "
      "(4 nodes, 50% budget cut + coordinator crash at t=1.0123)");
  standby_table.set_header(
      {"takeover factor k (timeout = k*T)", "time to comply"});
  for (double k : {1.5, 3.0, 6.0, 12.0}) {
    core::FailoverConfig f;
    f.standby = true;
    f.takeover_factor = k;
    standby_table.add_row(
        {sim::TextTable::num(k, 1), fmt_response(failover_response(f))});
  }
  standby_table.print();
  std::printf(
      "Expected: compliance lands roughly one election timeout plus one\n"
      "scheduling round after the crash, so the takeover factor trades\n"
      "false-failover margin directly against response time.  Against a\n"
      "supply tolerance DT of a few hundred ms, k <= 3 keeps the takeover\n"
      "path inside DT; very conservative timeouts (k = 12) do not.\n");

  sim::TextTable failsafe_table(
      "Node fail-safe only (no standby): time to compliance vs silence "
      "threshold");
  failsafe_table.set_header(
      {"fail-safe factor k (threshold = k*T)", "time to comply"});
  for (double k : {1.0, 2.0, 4.0}) {
    core::FailoverConfig f;
    f.node_failsafe_factor = k;
    failsafe_table.add_row(
        {sim::TextTable::num(k, 1), fmt_response(failover_response(f))});
  }
  failsafe_table.print();

  core::FailoverConfig nothing;
  std::printf(
      "No protection at all: %s\n",
      fmt_response(failover_response(nothing)).c_str());
  std::printf(
      "Expected: the autonomous budget/N drop restores compliance without\n"
      "any election, at the cost of scheduling quality (each node assumes\n"
      "an equal share instead of the global optimum).  With no protection\n"
      "the cluster stays over the new limit for the entire outage — the\n"
      "case the paper's single-coordinator design cannot survive.\n");
  return 0;
}
