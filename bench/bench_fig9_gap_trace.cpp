// bench_fig9_gap_trace - Regenerates paper Figures 9 and 10: actual vs
// desired frequency for gap under a 75 W power limit (750 MHz cap), plus
// the magnified time slice of Figure 10.
//
// Paper shape: the desired frequency is mostly 950-1000 MHz (gap is
// CPU-bound), but the 750 MHz cap clips the actual frequency, so gap
// "spends more time at 750 MHz than it did previously".
#include "bench/common.h"

#include "core/analysis.h"

using namespace fvsst;
using units::MHz;

int main() {
  bench::banner("Figures 9/10", "Actual vs desired frequency for gap at 75W");

  const auto r = bench::run_single_cpu(workload::gap(), 75.0, 9);

  sim::TimeSeries actual("actual_MHz"), desired("desired_MHz");
  for (const auto& s : r.granted.samples()) {
    if (s.t <= r.runtime_s) actual.add(s.t, s.value / MHz);
  }
  for (const auto& s : r.desired.samples()) {
    if (s.t <= r.runtime_s) desired.add(s.t, s.value / MHz);
  }

  std::printf("Figure 9: full run (runtime %.1f s)\n", r.runtime_s);
  std::printf("%s", sim::render_ascii_chart({&actual, &desired}, 72, 12).c_str());

  // Figure 10: a magnified slice from the middle of the run.
  const double mid = r.runtime_s * 0.5;
  const sim::TimeSeries slice_a = actual.slice(mid, mid + 2.0);
  const sim::TimeSeries slice_d = desired.slice(mid, mid + 2.0);
  std::printf("Figure 10: magnified slice [%.1f s, %.1f s]\n", mid, mid + 2.0);
  std::printf("%s",
              sim::render_ascii_chart({&slice_a, &slice_d}, 72, 12).c_str());

  // Quantify the clipping.
  const sim::CategoryHistogram hist_a =
      core::residency(actual, actual.last_time());
  const sim::CategoryHistogram hist_d =
      core::residency(desired, desired.last_time());
  sim::TextTable out("Time share per frequency (actual vs desired)");
  out.set_header({"MHz", "actual", "desired"});
  for (const auto& e : hist_d.sorted()) {
    out.add_row({sim::TextTable::num(e.key, 0),
                 sim::TextTable::pct(hist_a.fraction(e.key)),
                 sim::TextTable::pct(hist_d.fraction(e.key))});
  }
  for (const auto& e : hist_a.sorted()) {
    if (hist_d.fraction(e.key) > 0.0) continue;
    out.add_row({sim::TextTable::num(e.key, 0),
                 sim::TextTable::pct(hist_a.fraction(e.key)), "0.0%"});
  }
  out.print();
  std::printf(
      "Shape to reproduce (paper): desired stays at 950-1000 MHz for the\n"
      "CPU-bound stretches while actual is clipped to 750 MHz — gap\n"
      "\"spends more time at 750 MHz than it did previously\"; desired\n"
      "dips toward the cap during gap's memory-leaning gc intervals.\n");
  bench::maybe_dump_csv("fig9_gap", {&actual, &desired}, 0.1);
  return 0;
}
