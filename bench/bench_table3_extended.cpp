// bench_table3_extended - Beyond the paper: Table 3's methodology applied
// to the four additional SPEC CPU2000 profiles (crafty, parser, art,
// equake), widening the workload spectrum between the paper's CPU-bound
// and memory-bound extremes.
#include "bench/common.h"

using namespace fvsst;

int main() {
  bench::banner("Table 3 (extended)",
                "Perf & energy under constraint, four additional profiles");

  const workload::WorkloadSpec apps[] = {
      workload::crafty(), workload::parser(), workload::art(),
      workload::equake()};
  const double budgets[3] = {140.0, 75.0, 35.0};

  double perf[3][4], energy[3][4];
  double ref_runtime[4];
  for (std::size_t a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      const auto r = bench::run_single_cpu(apps[a], budgets[b], 300 + a);
      if (b == 0) ref_runtime[a] = r.runtime_s;
      perf[b][a] = ref_runtime[a] / r.runtime_s;
      energy[b][a] = r.cpu_energy_j / (140.0 * ref_runtime[a]);
    }
  }

  sim::TextTable out("Normalised as in the paper's Table 3");
  out.set_header({"metric", "crafty", "parser", "art", "equake"});
  const char* labels[] = {"Perf @140W",   "Perf @75W",   "Perf @35W",
                          "Energy @140W", "Energy @75W", "Energy @35W"};
  for (int row = 0; row < 6; ++row) {
    std::vector<std::string> cells{labels[row]};
    for (int a = 0; a < 4; ++a) {
      const double v = row < 3 ? perf[row][a] : energy[row - 3][a];
      cells.push_back(sim::TextTable::num(v, 2));
    }
    out.add_row(std::move(cells));
  }
  out.print();
  std::printf(
      "Expected spectrum: crafty is even more frequency-hungry than the\n"
      "paper's gzip (near one-to-one losses, little unconstrained energy\n"
      "saving); parser sits between gzip and gap; art/equake behave like\n"
      "milder mcf's — little or no loss at 75 W and deep unconstrained\n"
      "energy savings from running at their saturation frequencies.\n");
  return 0;
}
