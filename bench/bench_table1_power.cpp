// bench_table1_power - Regenerates paper Table 1: peak power at each
// available frequency setting.
//
// The paper obtained these numbers from IBM's Lava circuit-level estimator;
// our substitute is the analytic model P = C*V^2*f + B*V^2 with (C, B)
// fitted by least squares against the embedded Table 1 (see DESIGN.md).
// This bench prints the paper's values, the model's reproduction, and the
// fit residuals — the validation that the substitution is sound.
#include "bench/common.h"

#include "power/power_model.h"

using namespace fvsst;
using units::MHz;

int main() {
  bench::banner("Table 1", "Frequencies available for scheduling");

  const mach::FrequencyTable table = mach::p630_frequency_table();
  const auto report = power::PowerModel::calibrate_report(table);
  const power::PowerModel model(report.capacitance_f,
                                report.leakage_w_per_v2);

  sim::TextTable out("Operating points: paper (Lava) vs calibrated model");
  out.set_header({"MHz", "min V", "paper W", "model W", "error", "rel"});
  for (const auto& p : table.points()) {
    const double w = model.power(p.hz, p.volts);
    out.add_row({sim::TextTable::num(p.hz / MHz, 0),
                 sim::TextTable::num(p.volts, 3),
                 sim::TextTable::num(p.watts, 0),
                 sim::TextTable::num(w, 1),
                 sim::TextTable::num(w - p.watts, 2),
                 sim::TextTable::pct((w - p.watts) / p.watts)});
  }
  out.print();

  std::printf("Fitted coefficients: C = %.4e F, B = %.4f W/V^2\n",
              report.capacitance_f, report.leakage_w_per_v2);
  std::printf("Fit quality: max |err| = %.2f W, RMS = %.2f W, "
              "max rel = %.1f%%\n",
              report.max_abs_error_w, report.rms_error_w,
              report.max_rel_error * 100.0);
  std::printf(
      "Expected (paper): power spans 9 W at 250 MHz to 140 W at 1000 MHz,\n"
      "super-linear in frequency because the minimum stable voltage rises\n"
      "with frequency.  (Paper notes estimates below 500 MHz are the least\n"
      "accurate; our fit is also loosest there.)\n");

  // Derived: active vs static split at the nominal point.
  const auto& top = table.max_point();
  std::printf("At %0.f MHz / %.2f V: active %.1f W, static %.1f W\n",
              top.hz / MHz, top.volts, model.active_power(top.hz, top.volts),
              model.static_power(top.volts));
  return 0;
}
