// bench_sec5_worked_example - Reproduces the worked example of paper
// Section 5: four processors, a 294 W CPU power constraint after a supply
// failure at T0, and a workload shift on processor 0 at T1.
//
// Paper narrative: at T0 the epsilon-constrained vector is
// [1.0, 0.7, 0.8, 0.8] GHz (374 W), which must be downgraded to fit 294 W;
// at T1 processor 0 becomes memory-intensive, its epsilon frequency falls
// to 0.6 GHz, and the whole epsilon vector [0.6, 0.7, 0.8, 0.8] GHz fits
// outright at 282 W with only epsilon-level losses.
#include "bench/common.h"

#include "core/scheduler.h"
#include "workload/mixes.h"

using namespace fvsst;
using units::MHz;

namespace {

void show(const char* label, const core::ScheduleResult& r, double budget) {
  sim::TextTable out(label);
  out.set_header({"proc", "desired MHz", "granted MHz", "W", "pred. loss"});
  for (std::size_t p = 0; p < r.decisions.size(); ++p) {
    const auto& d = r.decisions[p];
    out.add_row({"p" + std::to_string(p),
                 sim::TextTable::num(d.desired_hz / MHz, 0),
                 sim::TextTable::num(d.hz / MHz, 0),
                 sim::TextTable::num(d.watts, 0),
                 sim::TextTable::pct(d.predicted_loss)});
  }
  out.print();
  std::printf("total %.0f W vs budget %.0f W (%s), downgrade steps: %zu\n\n",
              r.total_cpu_power_w, budget,
              r.total_cpu_power_w <= budget ? "OK" : "OVER",
              r.downgrade_steps);
}

std::vector<core::ProcView> views_for(bool t1) {
  const auto lat = mach::p630().latencies;
  const auto mixes = workload::section5_example_mixes(t1);
  std::vector<core::ProcView> views(4);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto& phase = mixes[p].phases[0];
    views[p].estimate.valid = true;
    views[p].estimate.alpha_inv = 1.0 / phase.alpha;
    views[p].estimate.mem_time_per_instr =
        workload::mem_time_per_instruction(phase, lat);
  }
  return views;
}

}  // namespace

int main() {
  bench::banner("Section 5", "Worked scheduling example (294 W budget)");

  const core::FrequencyScheduler sched(mach::p630_frequency_table(),
                                       mach::p630().latencies, {});

  std::printf("Paper at T0: epsilon vector [1000, 700, 800, 800] MHz "
              "(374 W > 294 W), then\npower-constrained downgrades; at T1 "
              "epsilon vector [600, 700, 800, 800] MHz\nfits outright at "
              "282 W.\n\n");

  const auto r0 = sched.schedule(views_for(false), 294.0);
  show("T0: after supply failure (power-constrained)", r0, 294.0);

  const auto r1 = sched.schedule(views_for(true), 294.0);
  show("T1: processor 0 now memory-intensive", r1, 294.0);

  std::printf(
      "Shape to reproduce: the T0 budget forces downgrades chosen by least\n"
      "performance loss; the T1 workload shift frees enough power that all\n"
      "processors run at their epsilon-constrained frequencies (282 W) and\n"
      "every predicted loss is below epsilon = 4%%.\n");
  return 0;
}
