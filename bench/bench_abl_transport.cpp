// bench_abl_transport - Ablation A20: reliable vs datagram transport under
// adversarial channels.
//
//   bench_abl_transport [--smoke]
//     --smoke   reduced sweep for CI, plus hard gates: the journal
//               invariants (including bounded convergence) must hold for
//               every scenario, and the reliable transport's convergence
//               rounds must never exceed the datagram transport's at any
//               loss rate.
//
// The cluster protocol was designed to tolerate loss by retrying every
// scheduling round; the session layer (cluster/transport.h) upgrades that
// to acked, retransmitted, duplicate-suppressed delivery.  This ablation
// sweeps loss x reorder x duplication bursts over both transport modes and
// reports what reliability buys: time-to-compliance for a budget cut that
// lands mid-burst, worst settings staleness (the longest a node ran on old
// settings), rounds to re-converge after the burst closes, and the
// retransmit/duplicate/corrupt traffic the session layer generated.
//
// Expected: at zero loss the modes are indistinguishable (no retransmits,
// no duplicates) and the reliable session costs nothing.  As loss grows,
// datagram staleness stretches toward multiple scheduling periods (a lost
// settings message waits for the next round's repair, which may itself be
// lost) while the reliable transport's ack-driven fast retransmit repairs
// most losses within one summary round; duplication is invisible to the
// reliable mode (suppressed) but double-applies on datagram; corruption is
// detected by checksum in both modes and surfaces as message_corrupt.
#include "bench/common.h"

#include <cmath>
#include <cstring>
#include <map>

#include "core/cluster_daemon.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/log.h"

using namespace fvsst;
using units::ms;

namespace {

constexpr std::size_t kNodes = 4;
constexpr double kBurstStart = 0.5;
constexpr double kBurstEnd = 2.5;
constexpr double kBudgetDropAt = 1.0;  // mid-burst, the hard case
constexpr double kDuration = 3.5;
constexpr double kPeriodS = 0.1;  // T = 10 * 10 ms

struct Scenario {
  std::string name;
  double loss = 0.0;
  double reorder = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
};

struct RunResult {
  double ttc_ms = -1.0;       // budget drop -> cluster-wide apply
  double staleness_ms = 0.0;  // worst inter-apply gap on any node
  int conv_rounds = 0;        // rounds to first apply after the burst
  std::size_t retransmits = 0;
  std::size_t duplicates = 0;
  std::size_t corrupt = 0;
  bool journal_ok = true;
};

sim::FaultPlan make_plan(const Scenario& s) {
  sim::FaultPlan plan(11);
  if (s.loss > 0.0) {
    plan.add({sim::FaultKind::kChannelLoss, kBurstStart, kBurstEnd, -1,
              s.loss});
  }
  if (s.reorder > 0.0) {
    plan.add({sim::FaultKind::kChannelReorder, kBurstStart, kBurstEnd, -1,
              s.reorder});
  }
  if (s.duplicate > 0.0) {
    plan.add({sim::FaultKind::kChannelDuplicate, kBurstStart, kBurstEnd, -1,
              s.duplicate});
  }
  if (s.corrupt > 0.0) {
    plan.add({sim::FaultKind::kChannelCorrupt, kBurstStart, kBurstEnd, -1,
              s.corrupt});
  }
  return plan;
}

RunResult run_scenario(const Scenario& s, cluster::TransportMode mode) {
  sim::Simulation sim;
  sim::Rng rng(99);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, kNodes, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(80.0, 1e12));
  }
  power::PowerBudget budget(static_cast<double>(kNodes) * 4 * 140.0);
  const sim::FaultPlan plan = make_plan(s);
  sim::EventLog journal;
  core::ClusterDaemonConfig cfg;
  cfg.journal = &journal;
  if (!plan.empty()) cfg.fault_plan = &plan;
  cfg.transport = mode;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.schedule_at(kBudgetDropAt, [&] {
    budget.set_limit_w(static_cast<double>(kNodes) * 4 * 140.0 * 0.5);
  });
  sim.run_for(kDuration);

  RunResult out;
  if (daemon.last_trigger_applied_time() >= 0.0) {
    out.ttc_ms = (daemon.last_trigger_applied_time() -
                  daemon.last_budget_trigger_time()) *
                 1e3;
  }
  out.retransmits = daemon.messages_retransmitted();
  out.duplicates = daemon.messages_duplicate();
  out.corrupt = daemon.messages_corrupt();
  out.journal_ok = sim::check_journal(journal).ok();

  // Per-node apply timeline: worst staleness gap anywhere in the run, and
  // the first apply at or after the burst closes (the re-convergence the
  // journal checker bounds).
  std::map<int, double> last_apply;
  std::map<int, double> first_after_burst;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kActuation) continue;
    const std::string* stage = e.find_str("stage");
    if (!stage || *stage != "node_apply") continue;
    const int node = static_cast<int>(e.num_or("node", -1.0));
    auto [it, inserted] = last_apply.try_emplace(node, e.t);
    if (!inserted) {
      out.staleness_ms = std::max(out.staleness_ms, (e.t - it->second) * 1e3);
      it->second = e.t;
    }
    if (e.t >= kBurstEnd) first_after_burst.try_emplace(node, e.t);
  }
  double worst_reconverge = 0.0;
  for (std::size_t n = 0; n < kNodes; ++n) {
    const auto it = first_after_burst.find(static_cast<int>(n));
    // A node with no apply after the burst never re-converged: score the
    // remaining run length so the smoke gate trips.
    const double at = it != first_after_burst.end() ? it->second : kDuration;
    worst_reconverge = std::max(worst_reconverge, at - kBurstEnd);
  }
  out.conv_rounds = static_cast<int>(std::ceil(worst_reconverge / kPeriodS));
  return out;
}

std::string fmt_ttc(double ttc_ms) {
  return ttc_ms < 0.0 ? "never" : sim::TextTable::num(ttc_ms, 1);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::banner("Ablation A20",
                "Reliable vs datagram transport under channel faults");
  sim::set_log_level(sim::LogLevel::kError);

  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", 0.0, 0.0, 0.0, 0.0});
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.2, 0.4} : std::vector<double>{0.2, 0.4,
                                                                  0.6};
  for (double p : losses) {
    scenarios.push_back({"loss " + sim::TextTable::num(p, 1), p, 0, 0, 0});
  }
  scenarios.push_back({"reorder 0.3", 0.0, 0.3, 0.0, 0.0});
  scenarios.push_back({"duplicate 0.2", 0.0, 0.0, 0.2, 0.0});
  if (!smoke) {
    scenarios.push_back({"corrupt 0.3", 0.0, 0.0, 0.0, 0.3});
    scenarios.push_back({"loss+reorder+dup", 0.4, 0.3, 0.2, 0.0});
    scenarios.push_back({"everything", 0.4, 0.3, 0.2, 0.3});
  }

  sim::TextTable table(
      "4 nodes, 50% budget cut at t=1.0 inside a [0.5, 2.5) fault burst; "
      "T=100 ms");
  table.set_header({"scenario", "mode", "ttc ms", "stale ms", "conv rounds",
                    "retx", "dup", "corrupt", "journal"});
  bool gates_ok = true;
  for (const Scenario& s : scenarios) {
    const RunResult datagram =
        run_scenario(s, cluster::TransportMode::kDatagram);
    const RunResult reliable =
        run_scenario(s, cluster::TransportMode::kReliable);
    for (const auto& [mode, r] :
         {std::pair<const char*, const RunResult*>{"datagram", &datagram},
          {"reliable", &reliable}}) {
      table.add_row({s.name, mode, fmt_ttc(r->ttc_ms),
                     sim::TextTable::num(r->staleness_ms, 1),
                     sim::TextTable::num(r->conv_rounds, 0),
                     sim::TextTable::num(r->retransmits, 0),
                     sim::TextTable::num(r->duplicates, 0),
                     sim::TextTable::num(r->corrupt, 0),
                     r->journal_ok ? "ok" : "VIOLATED"});
    }
    // The gates --smoke enforces (and the full run still reports):
    // reliability must never converge slower than fire-and-forget, and
    // both modes' journals must satisfy every invariant, including the
    // bounded-convergence promise recorded in run_meta.
    if (reliable.conv_rounds > datagram.conv_rounds) {
      std::printf("GATE: %s: reliable took %d rounds vs datagram %d\n",
                  s.name.c_str(), reliable.conv_rounds, datagram.conv_rounds);
      gates_ok = false;
    }
    if (!reliable.journal_ok || !datagram.journal_ok) {
      std::printf("GATE: %s: journal invariants violated\n", s.name.c_str());
      gates_ok = false;
    }
  }
  table.print();
  std::printf(
      "Expected: identical behaviour on a clean channel (zero retransmits —\n"
      "the session layer is free when nothing is lost).  Under loss the\n"
      "datagram rows' staleness stretches to several scheduling periods\n"
      "while reliable rows repair within about one summary round via the\n"
      "ack-driven fast retransmit; duplication double-delivers on datagram\n"
      "but is suppressed (dup column) on reliable; corruption is detected\n"
      "by checksum in both modes and never misdelivers.\n");
  if (smoke && !gates_ok) {
    std::printf("SMOKE GATES FAILED\n");
    return 1;
  }
  if (smoke) std::printf("smoke gates: ok\n");
  return gates_ok ? 0 : 0;
}
