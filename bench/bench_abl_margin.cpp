// bench_abl_margin - Ablation A8: the measured-power margin feedback loop
// (paper Sec. 5: "the global limit may contain a margin of safety").
//
// Scenario: the scheduler's power table underestimates real consumption
// (aging silicon, hot ambient: +15%).  Without the margin controller the
// system persistently violates the absolute limit; with it, the margin
// grows until measured power fits, then holds.
#include "bench/common.h"

#include "power/margin_controller.h"

using namespace fvsst;
using units::ms;

namespace {

struct Result {
  double violation_time_s = 0.0;  ///< Time spent over the absolute limit.
  double final_margin = 0.0;
  double mean_true_power_w = 0.0;
};

Result run(bool with_controller, double bias) {
  sim::Simulation sim;
  sim::Rng rng(3);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(c < 2 ? 100.0 : 30.0, 1e12));
  }
  power::PowerBudget budget(294.0);
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget,
                           bench::paper_daemon_config());
  // True power = modelled power * (1 + bias).
  auto true_power = [&, bias] { return cluster.cpu_power_w() * (1.0 + bias); };
  std::unique_ptr<power::MarginController> controller;
  if (with_controller) {
    controller = std::make_unique<power::MarginController>(sim, budget,
                                                           true_power);
  }
  Result out;
  sim::TimeWeightedStat power_acc;
  sim.schedule_every(5 * ms, [&] {
    power_acc.record(sim.now(), true_power());
    if (true_power() > budget.limit_w()) out.violation_time_s += 5e-3;
  });
  sim.run_for(10.0);
  out.final_margin = budget.margin_fraction();
  out.mean_true_power_w = power_acc.mean_until(sim.now());
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A8",
                "Margin feedback under power-model bias (294 W limit)");

  sim::TextTable out("10 s run; true power = modelled * (1 + bias)");
  out.set_header({"bias", "controller", "time over limit", "final margin",
                  "mean true W"});
  for (double bias : {0.0, 0.10, 0.20}) {
    for (bool ctl : {false, true}) {
      const Result r = run(ctl, bias);
      out.add_row({sim::TextTable::pct(bias, 0), ctl ? "on" : "off",
                   sim::TextTable::num(r.violation_time_s, 2) + " s",
                   sim::TextTable::pct(r.final_margin),
                   sim::TextTable::num(r.mean_true_power_w, 1)});
    }
  }
  out.print();
  std::printf(
      "Expected: with zero bias the controller is inert.  Under bias, the\n"
      "uncontrolled system stays over the absolute limit indefinitely; the\n"
      "controller grows the margin within a few checks, after which true\n"
      "power holds under the limit for the rest of the run.\n");
  return 0;
}
