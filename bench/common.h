// common.h - Shared rigs for the experiment benches.
//
// Every bench regenerates one table or figure from the paper's evaluation
// (Sec. 7-8).  The helpers here encode the paper's experimental setup:
// "All results were run with T of 100 ms and t of 10 ms.  When results are
// reported for only a single benchmark, the benchmark was run on CPU 3, and
// the remaining CPUs ran a 'hot' idle."  Single-benchmark power-constraint
// experiments (Figs. 6-10, Table 3) use "the system configured to use only
// a single processor".
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "power/sensor.h"
#include "simkit/csv.h"
#include "simkit/table.h"
#include "simkit/time_series.h"
#include "simkit/units.h"
#include "workload/app_profiles.h"
#include "workload/synthetic.h"

namespace fvsst::bench {

/// The paper's daemon settings: t = 10 ms, T = 100 ms.
inline core::DaemonConfig paper_daemon_config() {
  core::DaemonConfig cfg;
  cfg.t_sample_s = 0.010;
  cfg.schedule_every_n_samples = 10;
  return cfg;
}

/// Result of running one workload to completion under a budget.
struct RunResult {
  double runtime_s = 0.0;     ///< Wall time of the benchmark job.
  double cpu_energy_j = 0.0;  ///< Energy of the benchmark CPU over the run.
  double mean_power_w = 0.0;  ///< Mean benchmark-CPU power over the run.
  sim::TimeSeries granted{"granted_hz"};
  sim::TimeSeries desired{"desired_hz"};
};

/// Runs `spec` (non-looping) to completion on a single-CPU P630 under the
/// fvsst daemon with CPU power budget `budget_w`.  This is the paper's
/// "single processor" configuration for the power-constraint experiments.
inline RunResult run_single_cpu(const workload::WorkloadSpec& spec,
                                double budget_w,
                                std::uint64_t seed = 42,
                                bool with_daemon = true) {
  sim::Simulation sim;
  sim::Rng rng(seed);
  mach::MachineConfig machine = mach::p630();
  machine.num_cpus = 1;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  cluster.core({0, 0}).add_workload(spec);

  power::PowerBudget budget(budget_w);
  std::unique_ptr<core::FvsstDaemon> daemon;
  if (with_daemon) {
    daemon = std::make_unique<core::FvsstDaemon>(
        sim, cluster, machine.freq_table, budget, paper_daemon_config());
  }
  power::PowerSensor sensor(
      sim, [&] { return cluster.cpu_power_w(); }, 0.005);

  // Generous upper bound: even at the floor frequency the job finishes
  // within ~8x its full-speed duration for the profiles used here.
  const double t_max =
      20.0 * spec.duration_at(machine.latencies, machine.nominal_hz) + 5.0;
  double finished_at = -1.0;
  while (finished_at < 0.0 && sim.now() < t_max) {
    sim.run_for(0.05);
    finished_at = cluster.core({0, 0}).job_finish_time(0);
  }

  RunResult out;
  out.runtime_s = finished_at > 0.0 ? finished_at : t_max;
  out.cpu_energy_j = sensor.trace().empty()
                         ? 0.0
                         : [&] {
                             sim::TimeWeightedStat acc;
                             for (const auto& s : sensor.trace().samples()) {
                               if (s.t > out.runtime_s) break;
                               acc.record(s.t, s.value);
                             }
                             return acc.integral_until(out.runtime_s);
                           }();
  out.mean_power_w = out.runtime_s > 0 ? out.cpu_energy_j / out.runtime_s : 0;
  if (daemon) {
    out.granted = daemon->granted_freq_trace(0);
    out.desired = daemon->desired_freq_trace(0);
  }
  return out;
}

/// Prints a standard bench banner.
inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

/// Optionally dumps series to $FVSST_CSV_DIR/<name>.csv.
inline void maybe_dump_csv(const std::string& name,
                           const std::vector<const sim::TimeSeries*>& series,
                           double dt) {
  const std::string dir = sim::csv_output_dir();
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  if (sim::write_series_csv(path, series, dt)) {
    std::printf("[csv] wrote %s\n", path.c_str());
  }
}

}  // namespace fvsst::bench
