// bench_fig7_constrained_phases - Regenerates paper Figure 7: scheduled
// frequency over time for a 100% + 75% CPU-intensity phase pair under
// shrinking power limits (140 W, 75 W, 35 W; single processor).
//
// Paper shape: at full power both phases are accommodated (the 100% phase
// at f_max, the 75% phase lower); at 75 W the high-intensity phases are
// clipped to 750 MHz; at 35 W both phases are pinned at the 500 MHz
// power-constrained frequency.
#include "bench/common.h"

#include "core/analysis.h"

using namespace fvsst;
using units::MHz;

namespace {

void run_budget(double budget_w) {
  sim::Simulation sim;
  sim::Rng rng(33);
  mach::MachineConfig machine = mach::p630();
  machine.num_cpus = 1;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  workload::SyntheticParams params;
  params.phase1 = {100.0, 5e8};
  params.phase2 = {75.0, 4e8};
  cluster.core({0, 0}).add_workload(workload::make_synthetic(params));
  power::PowerBudget budget(budget_w);
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget,
                           bench::paper_daemon_config());
  sim.run_for(5.0);

  sim::TimeSeries mhz("granted_MHz@" + sim::TextTable::num(budget_w, 0) + "W");
  for (const auto& s : daemon.granted_freq_trace(0).samples()) {
    mhz.add(s.t, s.value / MHz);
  }
  std::printf("\n-- CPU power limit %.0f W --\n", budget_w);
  std::printf("%s", sim::render_ascii_chart({&mhz}, 72, 10).c_str());

  const auto& granted = daemon.granted_freq_trace(0);
  const sim::CategoryHistogram hist = core::residency(
      core::normalised(granted, MHz, "granted_MHz"), sim.now());
  sim::TextTable out("Time share per frequency");
  out.set_header({"MHz", "share"});
  for (const auto& e : hist.sorted()) {
    if (e.weight / hist.total() < 0.01) continue;
    out.add_row({sim::TextTable::num(e.key, 0),
                 sim::TextTable::pct(e.weight / hist.total())});
  }
  out.print();
  bench::maybe_dump_csv(
      "fig7_budget" + sim::TextTable::num(budget_w, 0), {&mhz}, 0.05);
}

}  // namespace

int main() {
  bench::banner("Figure 7",
                "Scheduled frequency under power limits (100% + 75% phases)");
  for (double budget : {140.0, 75.0, 35.0}) run_budget(budget);
  std::printf(
      "\nShape to reproduce (paper): at 140 W both phases get their desired\n"
      "frequencies; at 75 W the 100%% phase is capped at 750 MHz while the\n"
      "75%% phase is less affected; at 35 W both run at the 500 MHz\n"
      "power-constrained frequency.\n");
  return 0;
}
