// bench_abl_idle - Ablation A4: the cost of the Power4+ "idles hot"
// behaviour and the value of an explicit idle signal.  The paper's
// prototype lacked idle detection; this bench quantifies what that costs.
#include "bench/common.h"

using namespace fvsst;
using units::MHz;

namespace {

double mean_cluster_power(bool idle_detection, std::size_t busy_cpus) {
  sim::Simulation sim;
  sim::Rng rng(5);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  for (std::size_t c = 0; c < busy_cpus; ++c) {
    cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(40.0, 1e12));
  }
  power::PowerBudget budget(4 * 140.0);
  core::DaemonConfig cfg = bench::paper_daemon_config();
  cfg.scheduler.idle_detection = idle_detection;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  power::PowerSensor sensor(sim, [&] { return cluster.cpu_power_w(); },
                            0.01);
  sim.run_for(3.0);
  // Skip the settling first half-second.
  sim::TimeWeightedStat acc;
  for (const auto& s : sensor.trace().samples()) {
    if (s.t >= 0.5) acc.record(s.t, s.value);
  }
  return acc.mean_until(3.0);
}

}  // namespace

int main() {
  bench::banner("Ablation A4", "Idle detection on/off (\"idles hot\")");

  sim::TextTable out("Mean cluster CPU power (W), 4-CPU node");
  out.set_header({"busy CPUs", "no idle detection", "with idle detection",
                  "saved"});
  for (std::size_t busy : {0u, 1u, 2u, 3u}) {
    const double without = mean_cluster_power(false, busy);
    const double with = mean_cluster_power(true, busy);
    out.add_row({std::to_string(busy), sim::TextTable::num(without, 1),
                 sim::TextTable::num(with, 1),
                 sim::TextTable::num(without - with, 1)});
  }
  out.print();
  std::printf(
      "Expected: without the idle signal the predictor sees the hot idle\n"
      "loop (IPC ~1.3, no memory traffic) as CPU-intensive work and runs\n"
      "idle CPUs at f_max (140 W each); with the signal they drop to the\n"
      "250 MHz floor (9 W), saving ~131 W per idle CPU.\n");
  return 0;
}
