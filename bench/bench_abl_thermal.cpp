// bench_abl_thermal - Ablation A12: the "site air conditioning failure"
// scenario from the paper's motivation, closed through a first-order
// thermal model: ambient jumps from 25 C to 48 C mid-run; the thermal
// governor converts the junction limit into budget cuts and fvsst
// downshifts until the dies settle back under the limit.
#include "bench/common.h"

#include "power/thermal.h"

using namespace fvsst;
using units::MHz;

namespace {

struct Outcome {
  double peak_c = 0.0;
  double settled_c = 0.0;
  double settled_mhz = 0.0;
  double time_over_limit_s = 0.0;
  sim::TimeSeries temp{"hottest_C"};
};

Outcome run(bool with_management) {
  sim::Simulation sim;
  sim::Rng rng(3);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  power::PowerBudget budget(560.0);
  std::unique_ptr<core::FvsstDaemon> daemon;
  if (with_management) {
    daemon = std::make_unique<core::FvsstDaemon>(
        sim, cluster, machine.freq_table, budget,
        bench::paper_daemon_config());
  }
  power::ThermalGovernor::Config cfg;
  power::ThermalGovernor gov(
      sim, budget, 4,
      [&](std::size_t i) {
        return machine.freq_table.power(cluster.core({0, i}).frequency_hz());
      },
      cfg);

  sim.run_for(60.0);
  sim.schedule_at(sim.now(), [&] { gov.set_ambient_c(48.0); });  // A/C fails

  Outcome out;
  sim.schedule_every(0.25, [&] {
    const double t = gov.hottest_c();
    out.peak_c = std::max(out.peak_c, t);
    if (t > cfg.limit_c) out.time_over_limit_s += 0.25;
  });
  sim.run_for(180.0);
  out.settled_c = gov.hottest_c();
  out.settled_mhz = cluster.core({0, 0}).frequency_hz() / MHz;
  out.temp = gov.hottest_trace();
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A12",
                "A/C failure: thermal limit -> budget -> frequencies");

  const Outcome with = run(true);
  const Outcome without = run(false);

  sim::TextTable out("Ambient 25 C -> 48 C at t = 60 s; junction limit 85 C");
  out.set_header({"configuration", "peak C", "settled C", "time > limit",
                  "settled MHz"});
  out.add_row({"fvsst + thermal governor", sim::TextTable::num(with.peak_c, 1),
               sim::TextTable::num(with.settled_c, 1),
               sim::TextTable::num(with.time_over_limit_s, 1) + " s",
               sim::TextTable::num(with.settled_mhz, 0)});
  out.add_row({"no management", sim::TextTable::num(without.peak_c, 1),
               sim::TextTable::num(without.settled_c, 1),
               sim::TextTable::num(without.time_over_limit_s, 1) + " s",
               sim::TextTable::num(without.settled_mhz, 0)});
  out.print();

  std::printf("%s", sim::render_ascii_chart({&with.temp, &without.temp}, 72,
                                            12).c_str());
  std::printf("  [*] with management   [o] without\n");
  std::printf(
      "Expected: unmanaged, the dies sit at ~94 C indefinitely (a thermal\n"
      "trip in real hardware).  Managed, the governor sheds budget, fvsst\n"
      "downshifts, and temperature settles at/below the 85 C limit at a\n"
      "reduced but non-trivial frequency.\n");
  bench::maybe_dump_csv("abl_thermal", {&with.temp, &without.temp}, 1.0);
  return 0;
}
