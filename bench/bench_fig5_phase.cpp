// bench_fig5_phase - Regenerates paper Figure 5: fvsst's response to phase
// behaviour.  "The frequency tracks closely with changes in the measured
// IPC ... Additionally, the power consumption of the system tracks the
// changes in frequency."
#include "bench/common.h"

#include "core/analysis.h"

using namespace fvsst;
using units::GHz;
using units::MHz;

int main() {
  bench::banner("Figure 5", "fvsst response to phase behaviour");

  sim::Simulation sim;
  sim::Rng rng(21);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);

  // Alternating CPU-heavy / memory-heavy phases, each several hundred ms —
  // longer than T = 100 ms, so the daemon can track them.
  workload::SyntheticParams params;
  params.phase1 = {100.0, 6e8};  // ~410 ms at 1 GHz
  params.phase2 = {15.0, 1.5e8}; // several hundred ms, saturates early
  cluster.core({0, 3}).add_workload(workload::make_synthetic(params));

  power::PowerBudget budget(4 * 140.0);
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget,
                           bench::paper_daemon_config());
  power::PowerSensor sensor(
      sim, [&] { return machine.freq_table.power(
                     cluster.core({0, 3}).frequency_hz()); },
      0.01, "cpu3_power_w");

  sim.run_for(6.0);

  // Normalise the three signals onto one chart, as the paper's figure does.
  const sim::TimeSeries freq =
      core::normalised(daemon.granted_freq_trace(3), 1 * GHz, "freq/1GHz");
  const sim::TimeSeries ipc =
      core::normalised(daemon.measured_ipc_trace(3), 1.6, "ipc/1.6");
  const sim::TimeSeries power =
      core::normalised(sensor.trace(), 140.0, "power/140W");

  std::printf("%s",
              sim::render_ascii_chart({&freq, &ipc, &power}, 72, 14).c_str());
  bench::maybe_dump_csv("fig5_phase", {&freq, &ipc, &power}, 0.02);

  // Quantify tracking: frequency during memory phases vs CPU phases.
  const auto& granted = daemon.granted_freq_trace(3);
  const sim::CategoryHistogram freq_hist =
      core::residency(granted, granted.last_time());
  sim::TextTable out("Time share per granted frequency");
  out.set_header({"MHz", "share"});
  for (const auto& e : freq_hist.sorted()) {
    out.add_row({sim::TextTable::num(e.key / MHz, 0),
                 sim::TextTable::pct(e.weight / freq_hist.total())});
  }
  out.print();

  const std::size_t switches = daemon.granted_freq_trace(3).size();
  std::printf("Frequency trace points: %zu over %.1f s (switching on phase "
              "boundaries).\n", switches, sim.now());
  std::printf(
      "Shape to reproduce: the granted frequency alternates between f_max\n"
      "(CPU phase) and a saturated setting (memory phase); IPC and power\n"
      "move together with it.\n");
  return 0;
}
