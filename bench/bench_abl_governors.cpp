// bench_abl_governors - Ablation A11: fvsst vs classic utilisation-driven
// governors (the LongRun / Demand Based Switching mechanisms of the
// paper's related work) run live on identical workloads.
//
// Two machines are tested: the hot-idle Power4+ (where non-halted-cycle
// utilisation is blind to idleness) and a halting variant (where governors
// at least see idle).  Neither machine lets a governor see *memory
// saturation* — only fvsst's counter model does.
#include "bench/common.h"

#include "baselines/governor_daemon.h"

using namespace fvsst;
using units::ms;

namespace {

struct RunOutcome {
  double mean_power_w = 0.0;
  double throughput = 0.0;
};

enum class Mode { kFvsst, kOndemand, kConservative, kPerformance };

RunOutcome run(Mode mode, bool halting_machine) {
  sim::Simulation sim;
  sim::Rng rng(31);
  mach::MachineConfig machine = mach::p630();
  machine.idles_by_halting = halting_machine;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  // CPU 0: memory-bound; CPU 1: CPU-bound; CPUs 2-3 idle.
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(10.0, 1e12));
  cluster.core({0, 1}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));

  power::PowerBudget budget(4 * 140.0);
  std::unique_ptr<core::FvsstDaemon> fvsst;
  std::unique_ptr<baselines::GovernorDaemon> governor;
  if (mode == Mode::kFvsst) {
    core::DaemonConfig cfg = bench::paper_daemon_config();
    cfg.idle_signal = halting_machine ? core::IdleSignal::kHaltedCounter
                                      : core::IdleSignal::kOsSignal;
    fvsst = std::make_unique<core::FvsstDaemon>(
        sim, cluster, machine.freq_table, budget, cfg);
  } else {
    baselines::GovernorDaemon::Config cfg;
    cfg.policy = mode == Mode::kOndemand ? baselines::GovernorPolicy::kOndemand
                 : mode == Mode::kConservative
                     ? baselines::GovernorPolicy::kConservative
                     : baselines::GovernorPolicy::kPerformance;
    governor = std::make_unique<baselines::GovernorDaemon>(
        sim, cluster, machine.freq_table, cfg);
  }
  power::PowerSensor sensor(sim, [&] { return cluster.cpu_power_w(); },
                            10 * ms);
  sim.run_for(5.0);
  RunOutcome out;
  out.mean_power_w = sensor.mean_power_w();
  out.throughput = cluster.core({0, 0}).instructions_retired() +
                   cluster.core({0, 1}).instructions_retired();
  return out;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kFvsst: return "fvsst";
    case Mode::kOndemand: return "ondemand";
    case Mode::kConservative: return "conservative";
    case Mode::kPerformance: return "performance";
  }
  return "?";
}

}  // namespace

int main() {
  bench::banner("Ablation A11",
                "fvsst vs utilisation governors (1 mem CPU + 1 cpu CPU + "
                "2 idle)");

  for (bool halting : {false, true}) {
    sim::TextTable out(halting ? "Halting-idle machine"
                               : "Hot-idle machine (Power4+)");
    out.set_header({"policy", "mean W", "throughput (1e9 instr)",
                    "instr per joule"});
    const RunOutcome ref = run(Mode::kPerformance, halting);
    for (Mode mode : {Mode::kPerformance, Mode::kConservative,
                      Mode::kOndemand, Mode::kFvsst}) {
      const RunOutcome r = run(mode, halting);
      out.add_row({mode_name(mode), sim::TextTable::num(r.mean_power_w, 1),
                   sim::TextTable::num(r.throughput / 1e9, 2),
                   sim::TextTable::num(
                       r.throughput / (r.mean_power_w * 5.0) / 1e6, 1) +
                       "e6"});
      (void)ref;
    }
    out.print();
  }
  std::printf(
      "Expected: on the hot-idle machine the governors see 100%%\n"
      "utilisation everywhere and burn full power (the paper's critique);\n"
      "on the halting machine they recover the idle CPUs but still can't\n"
      "see memory saturation, so the memory-bound CPU stays at f_max.\n"
      "fvsst saves on both axes at nearly identical throughput, giving the\n"
      "best instructions-per-joule in every configuration.\n");
  return 0;
}
