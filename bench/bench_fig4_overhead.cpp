// bench_fig4_overhead - Regenerates paper Figure 4: performance impact of
// running fvsst on the synthetic benchmark's reported throughput.
//
// Paper shape: degradation is largest for CPU-intensive settings but never
// exceeds ~3%; it contains both daemon overhead and misprediction cost.
#include "bench/common.h"

using namespace fvsst;

namespace {

double throughput(double intensity, bool with_daemon,
                  core::ControlLoopTimings* timings = nullptr) {
  sim::Simulation sim;
  sim::Rng rng(7 + static_cast<std::uint64_t>(intensity));
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  // Looping two-phase benchmark on CPU 3; pass count is the reported
  // throughput metric.
  // Phase lengths of hundreds of milliseconds — longer than T = 100 ms, so
  // the daemon can track them (the paper's phases are on this scale).
  workload::SyntheticParams params;
  params.phase1 = {intensity, 4e8};
  params.phase2 = {std::max(0.0, intensity - 20.0), 2e8};
  cluster.core({0, 3}).add_workload(workload::make_synthetic(params));

  power::PowerBudget budget(4 * 140.0);
  std::unique_ptr<core::FvsstDaemon> daemon;
  if (with_daemon) {
    core::DaemonConfig cfg = bench::paper_daemon_config();
    cfg.daemon_cpu = 3;  // worst case: the daemon shares the benchmark CPU
    cfg.scheduler.idle_detection = false;
    daemon = std::make_unique<core::FvsstDaemon>(
        sim, cluster, machine.freq_table, budget, cfg);
  }
  sim.run_for(10.0);
  if (daemon && timings) *timings = daemon->loop().timings();
  return cluster.core({0, 3}).instructions_retired();
}

}  // namespace

int main() {
  bench::banner("Figure 4",
                "Throughput impact of fvsst on the synthetic benchmark");

  sim::TextTable out("Relative throughput with fvsst (1.0 = without fvsst)");
  out.set_header({"CPU intensity", "without", "with fvsst", "impact"});
  double worst = 0.0;
  core::ControlLoopTimings timings;
  for (double intensity : {100.0, 75.0, 50.0, 25.0}) {
    const double base = throughput(intensity, false);
    const double with = throughput(intensity, true, &timings);
    const double impact = 1.0 - with / base;
    worst = std::max(worst, impact);
    out.add_row({sim::TextTable::num(intensity, 0) + "%",
                 sim::TextTable::num(base / 1e9, 2) + "e9 instr",
                 sim::TextTable::num(with / 1e9, 2) + "e9 instr",
                 sim::TextTable::pct(impact, 2)});
  }
  out.print();
  std::printf("Worst-case impact: %.2f%% (paper: no more than ~3%%).\n",
              worst * 100.0);

  // The impact above is the *modelled* daemon cost inside the simulation;
  // the engine also measures the real host cost of each pipeline stage
  // (ControlLoop's monotonic-clock timing, last run, 25% setting).
  sim::TextTable cost("Measured engine cost per stage (host wall clock)");
  cost.set_header(
      {"stage", "invocations", "mean", "p50", "p95", "p99", "total"});
  const auto row = [&](const char* name, const core::StageTiming& t) {
    cost.add_row({name, sim::TextTable::num(t.invocations, 0),
                  sim::TextTable::num(t.mean_s() * 1e6, 2) + " us",
                  sim::TextTable::num(t.quantile_s(0.50) * 1e6, 2) + " us",
                  sim::TextTable::num(t.quantile_s(0.95) * 1e6, 2) + " us",
                  sim::TextTable::num(t.quantile_s(0.99) * 1e6, 2) + " us",
                  sim::TextTable::num(t.total_s * 1e3, 3) + " ms"});
  };
  row("sample", timings.sample);
  row("estimate", timings.estimate);
  row("policy", timings.policy);
  row("actuate", timings.actuate);
  cost.print();
  const double cycles =
      static_cast<double>(std::max<std::uint64_t>(timings.policy.invocations, 1));
  std::printf(
      "Full scheduling cycle: %.2f us mean — the daemon cost the paper's\n"
      "Fig. 4 folds into its <=3%% impact, measured by the framework.\n",
      timings.cycle_total_s() / cycles * 1e6);
  std::printf(
      "Shape to reproduce: the impact stays within ~epsilon (4%%) at every\n"
      "setting — it bundles daemon overhead, misprediction cost, and the\n"
      "deliberate epsilon-bounded slowdown.  In our analytic saturation\n"
      "model the epsilon term dominates for memory-leaning settings (loss\n"
      "approaches epsilon asymptotically), whereas the paper's hardware\n"
      "saturates more sharply and showed its largest impact on the\n"
      "CPU-intensive settings instead; both stay at or under ~3%%.\n");
  return 0;
}
