// bench_abl_alerts - Ablation A18: how fast does the monitoring layer
// notice an incident, as a function of its rule window?
//
// Two injected incidents, the ones the default rule pack exists for:
//
//   * Budget overshoot (SMP): sticky actuation pins every CPU at full
//     speed from t = 0.5 s, then the budget drops at t = 2 s.  The
//     schedule claims compliance but the hardware never moved, so measured
//     draw stays above the limit — exactly the failure only measurement
//     (the over_budget_w input) can catch.
//   * Coordinator crash (cluster): the coordinator dies at t = 1.05 s and
//     scheduling rounds stop; the since_round_s input grows until the
//     coordinator_silent rule trips.
//
// Detection latency is alert_raised.t minus the incident start.  Sweeping
// the rule's aggregation window exposes the trade the DSL encodes: short
// windows detect fast but tolerate less measurement noise / scheduling
// jitter; long windows are calm but slow.  A min() aggregate must see the
// *entire* window in violation, so latency grows roughly linearly with
// the window (plus one evaluation interval per required `for` window).
//
// `--smoke` runs a two-point sweep per incident and exits nonzero when a
// detection is missed or latency stops growing monotonically with the
// window — the regression gate for the monitor's end-to-end wiring.
#include "bench/common.h"

#include <cstring>
#include <vector>

#include "core/cluster_daemon.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/monitor.h"

using namespace fvsst;

namespace {

/// First alert_raised of `rule` in the journal; < 0 when it never raised.
double first_raise(const sim::EventLog& log, const std::string& rule) {
  for (const sim::Event& e : log.events()) {
    if (e.type != sim::EventType::kAlertRaised) continue;
    const std::string* name = e.find_str("rule");
    if (name && *name == rule) return e.t;
  }
  return -1.0;
}

constexpr double kOvershootAt = 2.0;  ///< Budget-drop instant (SMP case).

/// Budget-overshoot detection latency for an overshoot rule with the given
/// aggregation window; < 0 when the alert never raised before t = 6 s.
double overshoot_latency(double window_ms) {
  sim::Simulation sim;
  sim::Rng rng(7);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  power::PowerBudget budget(560.0);

  // Every CPU's actuation wedges before the drop: writes report success
  // but frequencies never move.
  sim::FaultPlan plan(1);
  for (int cpu = 0; cpu < 4; ++cpu) {
    plan.add({sim::FaultKind::kActuationSticky, 0.5, 6.0, cpu, 0.0});
  }

  const std::string rule_text =
      "alert budget_overshoot severity critical when min(over_budget_w, " +
      sim::TextTable::num(window_ms, 0) + "ms) > 0.001 for 2 windows\n";
  const sim::monitor::RuleSet rules =
      sim::monitor::RuleSet::parse_string(rule_text);
  sim::EventLog journal;
  sim::monitor::Monitor::Options mopts;
  mopts.journal = &journal;
  sim::monitor::Monitor monitor(rules, std::move(mopts));

  core::DaemonConfig cfg = bench::paper_daemon_config();
  cfg.fault_plan = &plan;
  cfg.monitor = &monitor;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.schedule_at(kOvershootAt, [&] { budget.set_limit_w(200.0); });
  sim.run_for(6.0);

  const double raised = first_raise(journal, "budget_overshoot");
  return raised < 0.0 ? -1.0 : raised - kOvershootAt;
}

constexpr double kCrashAt = 1.05;  ///< Coordinator-crash instant.

/// Coordinator-silence detection latency for a silence rule with the given
/// aggregation window; < 0 when it never raised before the coordinator
/// returns at t = 2.5 s.
double silence_latency(double window_ms) {
  sim::Simulation sim;
  sim::Rng rng(3);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 2, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(60.0, 1e12));
  }
  power::PowerBudget budget(2 * 4 * 140.0);

  sim::FaultPlan plan(1);
  plan.add({sim::FaultKind::kCoordinatorCrash, kCrashAt, 2.5, /*target=*/0,
            0.0});

  const std::string rule_text =
      "alert coordinator_silent severity critical when min(since_round_s, " +
      sim::TextTable::num(window_ms, 0) + "ms) > 0.35\n";
  const sim::monitor::RuleSet rules =
      sim::monitor::RuleSet::parse_string(rule_text);
  sim::EventLog journal;
  sim::monitor::Monitor::Options mopts;
  mopts.journal = &journal;
  sim::monitor::Monitor monitor(rules, std::move(mopts));

  core::ClusterDaemonConfig cfg;
  cfg.fault_plan = &plan;
  cfg.monitor = &monitor;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(3.0);

  const double raised = first_raise(journal, "coordinator_silent");
  return raised < 0.0 ? -1.0 : raised - kCrashAt;
}

std::string fmt_latency(double latency_s) {
  return latency_s < 0.0 ? "missed"
                         : sim::TextTable::num(latency_s * 1e3, 0) + " ms";
}

int run_smoke() {
  int failures = 0;
  const auto gate = [&](const char* what, double fast, double slow) {
    std::printf("smoke: %s detection: window-small=%s window-large=%s\n",
                what, fmt_latency(fast).c_str(), fmt_latency(slow).c_str());
    if (fast < 0.0 || slow < 0.0) {
      std::fprintf(stderr, "smoke FAIL: %s incident went undetected\n", what);
      ++failures;
    } else if (fast > slow) {
      std::fprintf(stderr,
                   "smoke FAIL: %s latency shrank as the window grew\n",
                   what);
      ++failures;
    }
  };
  gate("budget-overshoot", overshoot_latency(200.0),
       overshoot_latency(1200.0));
  gate("coordinator-silence", silence_latency(100.0), silence_latency(800.0));
  std::printf(failures ? "smoke: %d gate(s) violated\n"
                       : "smoke: alert detection gates hold\n",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  bench::banner("Ablation A18",
                "Alert detection latency vs rule aggregation window");

  const std::vector<double> windows_ms = {100, 200, 400, 600, 1200, 2400};

  sim::TextTable overshoot(
      "Budget overshoot (sticky actuation on all CPUs, 560 W -> 200 W at "
      "t=2 s): min(over_budget_w, W) > 0, for 2 windows");
  overshoot.set_header({"window W", "detection latency"});
  for (double w : windows_ms) {
    overshoot.add_row({sim::TextTable::num(w, 0) + " ms",
                       fmt_latency(overshoot_latency(w))});
  }
  overshoot.print();
  std::printf(
      "Expected: a min() aggregate needs the whole window over the limit\n"
      "before it counts, plus a second held evaluation (for 2 windows), so\n"
      "latency tracks W + T.  The floor is one scheduling period: the\n"
      "monitor only evaluates at scheduling instants.\n\n");

  sim::TextTable silence(
      "Coordinator crash at t=1.05 s (2 nodes, no standby): "
      "min(since_round_s, W) > 0.35 s");
  silence.set_header({"window W", "detection latency"});
  for (double w : windows_ms) {
    silence.add_row({sim::TextTable::num(w, 0) + " ms",
                     fmt_latency(silence_latency(w))});
  }
  silence.print();
  std::printf(
      "Expected: since_round_s must exceed the 0.35 s threshold across the\n"
      "entire window, so latency is roughly 0.35 s + W; very long windows\n"
      "(W >= the outage) miss the incident entirely — the calm/slow end of\n"
      "the trade.\n");
  return 0;
}
