// bench_abl_epsilon - Ablation A1: sweep the acceptable-loss parameter
// epsilon.  The paper notes epsilon "must be greater than the minimum
// performance step caused by a change in frequency" — too small an epsilon
// degenerates pass 1 to f_max for CPU-bound work; too large an epsilon
// sacrifices real performance for power.
#include "bench/common.h"

#include "core/scheduler.h"
#include "workload/mixes.h"

using namespace fvsst;
using units::MHz;

int main() {
  bench::banner("Ablation A1", "Epsilon sweep (unconstrained budget)");

  const auto lat = mach::p630().latencies;
  // A diverse 8-processor mix spanning CPU-bound to memory-bound.
  const double stall_cpis[] = {0.05, 0.3, 0.8, 1.6, 3.2, 6.4, 10.0, 16.0};

  sim::TextTable out("Mean CPU power and worst true loss vs epsilon");
  out.set_header({"epsilon", "total W", "mean MHz", "worst true loss",
                  "mean true loss"});
  for (double eps : {0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.15, 0.20}) {
    core::FrequencyScheduler::Options opts;
    opts.epsilon = eps;
    const core::FrequencyScheduler sched(mach::p630_frequency_table(), lat,
                                         opts);
    std::vector<core::ProcView> views;
    std::vector<workload::Phase> truth;
    for (double m : stall_cpis) {
      const auto phase =
          workload::phase_from_stall_cpi("p", 1.6, m, lat, 1e9, 1e9);
      truth.push_back(phase);
      core::ProcView v;
      v.estimate.valid = true;
      v.estimate.alpha_inv = 1.0 / phase.alpha;
      v.estimate.mem_time_per_instr =
          workload::mem_time_per_instruction(phase, lat);
      views.push_back(v);
    }
    const auto r = sched.schedule(views, 1e9);
    double worst = 0.0, mean_loss = 0.0, mean_mhz = 0.0;
    for (std::size_t p = 0; p < views.size(); ++p) {
      const double perf =
          workload::true_performance(truth[p], lat, r.decisions[p].hz);
      const double perf_max =
          workload::true_performance(truth[p], lat, 1e9);
      const double loss = 1.0 - perf / perf_max;
      worst = std::max(worst, loss);
      mean_loss += loss / static_cast<double>(views.size());
      mean_mhz += r.decisions[p].hz / MHz / static_cast<double>(views.size());
    }
    out.add_row({sim::TextTable::num(eps, 2),
                 sim::TextTable::num(r.total_cpu_power_w, 0),
                 sim::TextTable::num(mean_mhz, 0),
                 sim::TextTable::pct(worst),
                 sim::TextTable::pct(mean_loss)});
  }
  out.print();
  std::printf(
      "Expected: power falls monotonically with epsilon while the worst\n"
      "true loss stays bounded by roughly epsilon + one frequency step;\n"
      "below the ~5%% per-step granularity, raising epsilon buys little.\n");
  return 0;
}
