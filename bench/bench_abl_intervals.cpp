// bench_abl_intervals - Ablation A2: sweep the scheduling interval T (with
// t = T/10).  The paper picks T = 100 ms to amortise overhead and stay
// stable while still catching phases "over a time-scale longer than
// 100 ms"; settings much larger than the phase length obscure phases and
// lose power savings.
#include "bench/common.h"

using namespace fvsst;
using units::MHz;

namespace {

struct IntervalResult {
  double mean_power_w;
  double throughput;
  std::size_t schedules;
};

IntervalResult run_with_T(double T) {
  sim::Simulation sim;
  sim::Rng rng(17);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  // Phases of ~400 ms / ~300 ms: trackable for T <= 100 ms, blurred above.
  workload::SyntheticParams params;
  params.phase1 = {100.0, 6e8};
  params.phase2 = {15.0, 1.2e8};
  cluster.core({0, 3}).add_workload(workload::make_synthetic(params));
  power::PowerBudget budget(4 * 140.0);
  core::DaemonConfig cfg;
  cfg.t_sample_s = T / 10.0;
  cfg.schedule_every_n_samples = 10;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  power::PowerSensor sensor(
      sim, [&] { return machine.freq_table.power(
                     cluster.core({0, 3}).frequency_hz()); }, 0.01);
  sim.run_for(12.0);
  return {sensor.mean_power_w(),
          cluster.core({0, 3}).instructions_retired(),
          daemon.schedules_run()};
}

}  // namespace

int main() {
  bench::banner("Ablation A2", "Scheduling interval sweep (T, with t = T/10)");

  const IntervalResult ref = run_with_T(0.1);
  sim::TextTable out("Benchmark-CPU mean power & throughput vs interval");
  out.set_header({"T (ms)", "schedules", "mean W", "throughput vs T=100ms"});
  for (double T : {0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    const IntervalResult r = run_with_T(T);
    out.add_row({sim::TextTable::num(T * 1e3, 0),
                 std::to_string(r.schedules),
                 sim::TextTable::num(r.mean_power_w, 1),
                 sim::TextTable::num(r.throughput / ref.throughput, 3)});
  }
  out.print();
  std::printf(
      "Expected: T well below the phase length keeps power low (phases are\n"
      "tracked); T far above it blurs phases into one average workload, so\n"
      "power rises (memory phases run too fast) and mispredictions grow.\n"
      "The paper's T = 100 ms sits in the flat, cheap region.\n");
  return 0;
}
