// bench_abl_latency - Ablation A10: response-time cost of a power cap on a
// request-serving system, fvsst vs uniform scaling.
//
// The paper's domain is server sites; what an operator ultimately cares
// about under a cap is request latency.  A Poisson stream of short
// requests (a mix of CPU-bound and memory-touching work) is served by a
// 4-CPU node; we sweep the CPU power budget and compare mean/p95 response
// times under fvsst against uniform scaling at the same budget.
#include "bench/common.h"

#include "cluster/load_generator.h"

using namespace fvsst;
using units::MHz;
using units::ms;

namespace {

struct LatencyResult {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double mean_power_w = 0.0;
  std::size_t completions = 0;
};

workload::WorkloadSpec request_template() {
  // ~1.4 ms of work at 1 GHz: parse (CPU) + lookup (memory-leaning).
  workload::WorkloadSpec spec;
  spec.name = "request";
  spec.loop = false;
  spec.phases = {workload::synthetic_phase("parse", 95.0, 1.2e6),
                 workload::synthetic_phase("lookup", 30.0, 2.5e5)};
  return spec;
}

enum class Policy { kFvsst, kFvsstFast, kFvsstBatch, kUniform };

LatencyResult run(double budget_w, Policy policy) {
  sim::Simulation sim;
  sim::Rng rng(77);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);

  power::PowerBudget budget(budget_w);
  std::unique_ptr<core::FvsstDaemon> daemon;
  if (policy != Policy::kUniform) {
    core::DaemonConfig cfg = bench::paper_daemon_config();
    if (policy == Policy::kFvsstFast || policy == Policy::kFvsstBatch) {
      cfg.t_sample_s = 0.005;           // t = 5 ms
      cfg.schedule_every_n_samples = 2; // T = 10 ms
    }
    daemon = std::make_unique<core::FvsstDaemon>(
        sim, cluster, machine.freq_table, budget, cfg);
  } else {
    // Uniform scaling: highest common frequency within the budget.
    const auto point = machine.freq_table.highest_under_power(budget_w / 4.0);
    const double hz = point ? point->hz : machine.freq_table.min_hz();
    for (std::size_t c = 0; c < 4; ++c) {
      cluster.core({0, c}).set_frequency(hz);
    }
  }
  power::PowerSensor sensor(sim, [&] { return cluster.cpu_power_w(); },
                            10 * ms);

  cluster::LoadGenerator::Options opts;
  opts.request = request_template();
  opts.base_rate_hz = 900.0;  // ~32% utilisation at f_max across 4 CPUs
  if (policy == Policy::kFvsstBatch) {
    // Request batching (Elnozahy et al.): trade bounded queueing delay
    // for longer idle stretches.
    opts.batch_size = 16;
    opts.batch_timeout_s = 0.004;
  }
  cluster::LoadGenerator gen(sim, cluster, cluster.all_procs(), opts,
                             sim::Rng(5));
  sim.run_for(8.0);

  LatencyResult out;
  auto& rt = gen.response_times();
  out.completions = gen.completions();
  if (rt.count() > 0) {
    out.mean_ms = rt.mean() * 1e3;
    out.p95_ms = rt.percentile(0.95) * 1e3;
  }
  out.mean_power_w = sensor.mean_power_w();
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A10",
                "Request latency vs power budget (fvsst vs uniform)");

  sim::TextTable out("Poisson requests, 4-CPU node, 8 s runs");
  out.set_header({"budget W", "policy", "mean ms", "p95 ms", "mean W",
                  "completed"});
  for (double budget : {560.0, 294.0, 200.0, 150.0}) {
    for (Policy policy : {Policy::kFvsst, Policy::kFvsstFast,
                          Policy::kFvsstBatch, Policy::kUniform}) {
      const LatencyResult r = run(budget, policy);
      const char* name = policy == Policy::kFvsst       ? "fvsst T=100ms"
                         : policy == Policy::kFvsstFast ? "fvsst T=10ms"
                         : policy == Policy::kFvsstBatch
                             ? "fvsst T=10ms + batching"
                             : "uniform";
      out.add_row({sim::TextTable::num(budget, 0), name,
                   sim::TextTable::num(r.mean_ms, 2),
                   sim::TextTable::num(r.p95_ms, 2),
                   sim::TextTable::num(r.mean_power_w, 1),
                   std::to_string(r.completions)});
    }
  }
  out.print();
  std::printf(
      "Finding (honest negative result for bursty micro-requests): with\n"
      "the paper's T = 100 ms, a request landing on an idle-pinned 250 MHz\n"
      "CPU runs slow until the next scheduling point, so fvsst's latency\n"
      "is *worse* than uniform scaling even though its power is far lower\n"
      "at generous budgets.  Shrinking T to 10 ms recovers most of the\n"
      "latency while keeping the power advantage — the T knob trades\n"
      "scheduling overhead against reaction time, exactly the tension the\n"
      "paper's Sec. 6 discusses.  For the paper's long-running batch\n"
      "workloads (Table 3) the effect is negligible.  Request batching\n"
      "(Elnozahy et al., the paper's related work) composes with fvsst:\n"
      "a few more milliseconds of bounded queueing delay buy a further\n"
      "power reduction from longer idle stretches.\n");
  return 0;
}
