// bench_abl_hetero - Ablation A9: heterogeneous operating-point tables.
//
// The paper: "It may be the case that the voltage table is different for
// each processor if there is significant process variation among them."
// This bench builds a 16-CPU system where half the parts are leaky (+20%
// power at every setting, higher minimum voltage) and compares scheduling
// with per-part tables against naively using the nominal table for all.
#include "bench/common.h"

#include "core/scheduler.h"
#include "simkit/rng.h"
#include "workload/phase.h"

using namespace fvsst;
using units::MHz;

int main() {
  bench::banner("Ablation A9",
                "Per-processor tables under process variation");

  const auto lat = mach::p630().latencies;
  const mach::FrequencyTable nominal = mach::p630_frequency_table();
  std::vector<mach::OperatingPoint> leaky_points;
  for (const auto& p : nominal.points()) {
    leaky_points.push_back({p.hz, p.volts * 1.05, p.watts * 1.20});
  }
  const mach::FrequencyTable leaky(std::move(leaky_points));

  // 16 CPUs, alternating nominal/leaky parts, mixed workloads.
  sim::Rng rng(8);
  std::vector<core::ProcView> views(16);
  std::vector<const mach::FrequencyTable*> tables(16);
  std::vector<workload::Phase> truth;
  for (std::size_t p = 0; p < 16; ++p) {
    const double m = rng.uniform(0.0, 12.0);
    const auto phase =
        workload::phase_from_stall_cpi("p", 1.6, m, lat, 1e9, 1e9);
    truth.push_back(phase);
    views[p].estimate.valid = true;
    views[p].estimate.alpha_inv = 1.0 / phase.alpha;
    views[p].estimate.mem_time_per_instr =
        workload::mem_time_per_instruction(phase, lat);
    tables[p] = (p % 2 == 0) ? &nominal : &leaky;
  }
  auto true_power = [&](const core::ScheduleResult& r) {
    // Charge each part its own real power for the granted frequency.
    double w = 0.0;
    for (std::size_t p = 0; p < 16; ++p) {
      w += tables[p]->power(r.decisions[p].hz);
    }
    return w;
  };
  auto total_perf = [&](const core::ScheduleResult& r) {
    double perf = 0.0;
    for (std::size_t p = 0; p < 16; ++p) {
      perf += workload::true_performance(truth[p], lat, r.decisions[p].hz);
    }
    return perf;
  };

  const core::FrequencyScheduler sched(nominal, lat, {});
  sim::TextTable out("16 CPUs (8 nominal + 8 leaky parts)");
  out.set_header({"budget W", "mode", "believed W", "true W", "violation",
                  "perf vs aware"});
  for (double budget : {2240.0, 1400.0, 900.0, 500.0}) {
    // Part-aware: per-processor tables.
    const auto aware = sched.schedule(views, tables, budget);
    // Naive: nominal table for everyone (believed power is wrong for the
    // leaky half).
    const auto naive = sched.schedule(views, budget);
    const double aware_true = true_power(aware);
    const double naive_true = true_power(naive);
    out.add_row({sim::TextTable::num(budget, 0), "part-aware",
                 sim::TextTable::num(aware.total_cpu_power_w, 0),
                 sim::TextTable::num(aware_true, 0),
                 aware_true <= budget + 1e-9 ? "-" : "OVER",
                 "1.00"});
    out.add_row({sim::TextTable::num(budget, 0), "naive-nominal",
                 sim::TextTable::num(naive.total_cpu_power_w, 0),
                 sim::TextTable::num(naive_true, 0),
                 naive_true <= budget + 1e-9 ? "-" : "OVER",
                 sim::TextTable::num(total_perf(naive) / total_perf(aware),
                                     2)});
  }
  out.print();
  std::printf(
      "Expected: the naive scheduler believes it fits the budget but the\n"
      "leaky parts' real draw puts it OVER at constrained budgets — the\n"
      "situation that would trip the cascade monitor.  The part-aware\n"
      "scheduler stays compliant at a throughput cost of about a percent.\n");
  return 0;
}
