// bench_abl_faults - Ablation A15: scheduling under injected faults.
//
// The paper's premise is operation *during* failure: fvsst exists so a
// server survives a power-supply failure within the cascade deadline, which
// only matters if the daemon itself tolerates misbehaving sensors and
// actuators while enforcing the reduced budget.  This ablation runs the
// same four-processor mix under a fixed budget while injecting actuation
// and sensor faults of increasing severity, and reports what the fault
// machinery cost: journalled fault events, degraded-mode (fail-safe f_min)
// entries, the faulted CPU's mean grant, and whether the aggregate power
// ever exceeded the budget after the first scheduling round.
//
// Expected: single-CPU reject windows keep power compliant (the engine
// pins unactuatable CPUs at their real set-point and schedules the others
// around them); short reject bursts ride through on retries alone, long
// ones escalate to the f_min fail-safe and recover once the window closes.
// Over-budget watts appear only where no actuation could help: reject-all
// (journalled as infeasible) and the silent sticky/delayed failures.
#include "bench/common.h"

#include <algorithm>
#include <cmath>

#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/log.h"

using namespace fvsst;
using units::MHz;
using units::ms;

namespace {

struct ScenarioResult {
  std::size_t fault_events = 0;
  std::size_t degraded_enters = 0;
  double mean_granted_mhz = 0.0;  // CPU 1, the faulted processor
  double worst_over_w = 0.0;      // max aggregate power minus budget
  bool recovered = true;          // no retry/degraded state at the end
  bool journal_ok = true;         // fvsst_inspect-style invariant check
};

ScenarioResult run_scenario(const sim::FaultPlan& plan) {
  sim::Simulation simulation;
  sim::Rng rng(7);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(simulation, machine, 1, rng);
  const double intensities[] = {100.0, 70.0, 40.0, 25.0};
  for (std::size_t c = 0; c < 4; ++c) {
    cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(intensities[c], 1e12));
  }
  power::PowerBudget budget(400.0);
  sim::EventLog journal;
  core::DaemonConfig cfg = bench::paper_daemon_config();
  cfg.journal = &journal;
  if (!plan.empty()) cfg.fault_plan = &plan;
  core::FvsstDaemon daemon(simulation, cluster, machine.freq_table, budget,
                           cfg);
  power::PowerSensor sensor(
      simulation, [&] { return cluster.cpu_power_w(); }, 5 * ms);
  if (!plan.empty()) sensor.set_fault_plan(&plan, &journal);

  ScenarioResult out;
  simulation.run_for(0.101);  // one full scheduling round
  simulation.schedule_every(7 * ms, [&] {
    out.worst_over_w =
        std::max(out.worst_over_w,
                 cluster.cpu_power_w() - budget.effective_limit_w());
  });
  // A budget swing mid-run forces regrants inside every fault window —
  // without it a steady workload re-requests the same point each cycle and
  // sticky hardware is indistinguishable from working hardware.
  simulation.schedule_at(0.8, [&] { budget.set_limit_w(250.0); });
  simulation.schedule_at(1.6, [&] { budget.set_limit_w(400.0); });
  simulation.run_for(3.0 - 0.101);

  for (const sim::Event& e : journal.events()) {
    out.fault_events += e.type == sim::EventType::kFault;
    if (e.type == sim::EventType::kDegradedMode) {
      const std::string* state = e.find_str("state");
      out.degraded_enters += state && *state == "enter";
    }
  }
  sim::TimeWeightedStat granted;
  for (const auto& s : daemon.granted_freq_trace(1).samples()) {
    granted.record(s.t, s.value);
  }
  out.mean_granted_mhz = granted.mean_until(simulation.now()) / MHz;
  out.recovered = daemon.loop().degraded_cpu_count() == 0 &&
                  daemon.loop().retrying_cpu_count() == 0;
  out.journal_ok = sim::check_journal(journal).ok();
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation A15", "Fault injection: actuation and sensor faults");
  // The reject-all scenario legitimately floods the warn log (a budget cut
  // while every CPU refuses writes *is* infeasible); the table already
  // reports the outcome, so keep the stream clean.
  sim::set_log_level(sim::LogLevel::kError);

  struct Scenario {
    const char* name;
    sim::FaultPlan plan;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"none", sim::FaultPlan()});
  {
    sim::FaultPlan p(1);
    p.add({sim::FaultKind::kActuationReject, 0.5, 0.52, 1, 0.0});
    scenarios.push_back({"reject cpu1 20ms", std::move(p)});
  }
  {
    sim::FaultPlan p(2);
    p.add({sim::FaultKind::kActuationReject, 0.5, 1.8, 1, 0.0});
    scenarios.push_back({"reject cpu1 1.3s", std::move(p)});
  }
  {
    sim::FaultPlan p(3);
    p.add({sim::FaultKind::kActuationReject, 0.5, 1.5, -1, 0.0});
    scenarios.push_back({"reject all 1.0s", std::move(p)});
  }
  {
    sim::FaultPlan p(4);
    p.add({sim::FaultKind::kActuationSticky, 0.5, 1.2, 2, 0.0});
    scenarios.push_back({"sticky cpu2 0.7s", std::move(p)});
  }
  {
    sim::FaultPlan p(5);
    p.add({sim::FaultKind::kActuationDelay, 0.5, 1.5, 1, 0.004});
    scenarios.push_back({"delay cpu1 4ms", std::move(p)});
  }
  {
    sim::FaultPlan p(6);
    p.add({sim::FaultKind::kSensorNoise, 0.0, 2.5, -1, 15.0});
    p.add({sim::FaultKind::kSensorDropout, 1.0, 1.6, -1, 0.0});
    scenarios.push_back({"sensor noise+dropout", std::move(p)});
  }

  sim::TextTable out("4 CPUs, 400 W budget, 3 s run; faulted CPU is cpu 1");
  out.set_header({"scenario", "faults", "degraded", "cpu1 MHz",
                  "worst over W", "recovered", "journal"});
  for (const Scenario& s : scenarios) {
    const ScenarioResult r = run_scenario(s.plan);
    out.add_row({s.name, sim::TextTable::num(r.fault_events, 0),
                 sim::TextTable::num(r.degraded_enters, 0),
                 sim::TextTable::num(r.mean_granted_mhz, 0),
                 sim::TextTable::num(r.worst_over_w, 3),
                 r.recovered ? "yes" : "NO",
                 r.journal_ok ? "ok" : "VIOLATED"});
  }
  out.print();
  std::printf(
      "Expected: the 20 ms burst rides through on retries alone while the\n"
      "long window escalates to the f_min fail-safe (degraded = 1) and\n"
      "recovers; single-CPU reject windows stay at zero over-budget watts\n"
      "because pinning keeps the accounting honest while the other CPUs\n"
      "absorb the cut.  Over-budget watts appear only where physics allows\n"
      "nothing better: reject-all leaves no actuatable CPU (the journal\n"
      "marks those cycles infeasible), and sticky/delayed writes fail\n"
      "silently, overshooting until detection (sticky mismatch events) or\n"
      "the late write catches up.  Sensor faults never move a grant: the\n"
      "daemon plans from the model, not the sensor.\n");
  return 0;
}
