// bench_abl_policies - Ablation A3: fvsst vs the alternatives the paper's
// introduction dismisses — powering nodes down, slowing everything
// uniformly, and utilisation-driven demand-based switching — on a tiered
// cluster under a sweep of power budgets.
#include "bench/common.h"

#include "baselines/policies.h"
#include "workload/mixes.h"

using namespace fvsst;

int main() {
  bench::banner("Ablation A3",
                "Policy comparison on a 8-node/32-CPU tiered cluster");

  const auto lat = mach::p630().latencies;
  const auto table = mach::p630_frequency_table();
  sim::Rng rng(2026);
  const auto assignment = workload::tiered_cluster_assignment(8, 4, rng);

  // Flatten to per-processor dominant phases; a few CPUs are idle.
  std::vector<workload::Phase> truth;
  std::vector<bool> idle;
  std::vector<baselines::ProcSample> samples;
  for (const auto& node : assignment) {
    for (const auto& spec : node) {
      const bool is_idle = rng.bernoulli(0.125);
      const auto& phase = spec.phases[0];
      truth.push_back(phase);
      idle.push_back(is_idle);
      baselines::ProcSample s;
      s.estimate = baselines::oracle_estimate(phase, lat);
      s.idle = is_idle;
      s.naive_utilization = 1.0;  // hot idle: non-halted cycles say busy
      samples.push_back(s);
    }
  }
  const std::size_t n = truth.size();
  const double full_budget = 140.0 * static_cast<double>(n);

  // Reference performance: everything at f_max.
  double perf_ref = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!idle[p]) {
      perf_ref += workload::true_performance(truth[p], lat, table.max_hz());
    }
  }

  const auto policies = baselines::standard_policies();
  sim::TextTable out(
      "Aggregate performance (vs all-at-fmax) under budget fractions");
  std::vector<std::string> header{"policy"};
  const double fractions[] = {1.0, 0.7, 0.5, 0.35, 0.25, 0.15};
  for (double f : fractions) {
    header.push_back(sim::TextTable::num(f * 100, 0) + "% budget");
  }
  out.set_header(header);

  for (const auto& policy : policies) {
    const bool is_consolidate = policy->name() == "consolidate";
    std::vector<std::string> row{is_consolidate ? "consolidate (migration)"
                                                : policy->name()};
    for (double f : fractions) {
      const double budget = full_budget * f;
      const auto assignments = policy->decide(samples, table, budget);
      double perf = 0.0;
      bool within = true;
      if (is_consolidate) {
        // Consolidation moves jobs onto the surviving hosts, which plain
        // evaluate() cannot express; score it with migration credit.
        std::size_t hosts = 0;
        double power = 0.0;
        for (const auto& a : assignments) {
          if (a.powered_on) {
            ++hosts;
            power += table.power(a.hz);
          }
        }
        perf = baselines::ConsolidationPolicy::consolidated_performance(
            truth, idle, hosts, table.max_hz(), lat);
        within = power <= budget + 1e-9;
      } else {
        const auto ev = baselines::evaluate(assignments, truth, idle, lat,
                                            table, budget);
        perf = ev.total_performance;
        within = ev.within_budget;
      }
      std::string cell = sim::TextTable::num(perf / perf_ref, 2);
      if (!within) cell += "!";
      row.push_back(std::move(cell));
    }
    out.add_row(std::move(row));
  }
  out.print();
  std::printf(
      "(\"!\" marks a budget violation — no-dvfs ignores the budget and\n"
      "would cascade.)\n"
      "Expected: fvsst dominates at every constrained budget: uniform\n"
      "scaling and DBS tax everyone equally, power-down sacrifices whole\n"
      "processors' work.  Consolidation — even granted free, instant job\n"
      "migration (which the paper calls \"difficult or impossible\" in\n"
      "clusters) — fares worst on this busy cluster: dropping pipelines\n"
      "costs performance linearly, while slowing saturated memory-bound\n"
      "work costs almost nothing.  Exactly the paper's argument for\n"
      "scheduling frequencies instead of work.\n");
  return 0;
}
