// bench_abl_policies - Ablation A3: fvsst vs the alternatives the paper's
// introduction dismisses — powering nodes down, slowing everything
// uniformly, and utilisation-driven demand-based switching — on a tiered
// cluster under a sweep of power budgets.  A second table (A19) scores
// every policy against the LP optimality bound of baselines/optimal.h:
// gap = policy loss - LP-optimal loss, nonnegative for every within-budget
// always-on assignment.
//
// --smoke: skip the tables and assert the gap invariants on the reference
// mix (gap >= 0 for the always-on policies, fvsst's gap under a fixed
// bound); exit 1 on violation.  scripts/check.sh runs this as a gate.
#include "bench/common.h"

#include <cstring>

#include "baselines/optimal.h"
#include "baselines/policies.h"
#include "workload/mixes.h"

using namespace fvsst;

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (!smoke) {
    bench::banner("Ablation A3",
                  "Policy comparison on a 8-node/32-CPU tiered cluster");
  }

  const auto lat = mach::p630().latencies;
  const auto table = mach::p630_frequency_table();
  sim::Rng rng(2026);
  const auto assignment = workload::tiered_cluster_assignment(8, 4, rng);

  // Flatten to per-processor dominant phases; a few CPUs are idle.
  std::vector<workload::Phase> truth;
  std::vector<bool> idle;
  std::vector<baselines::ProcSample> samples;
  for (const auto& node : assignment) {
    for (const auto& spec : node) {
      const bool is_idle = rng.bernoulli(0.125);
      const auto& phase = spec.phases[0];
      truth.push_back(phase);
      idle.push_back(is_idle);
      baselines::ProcSample s;
      s.estimate = baselines::oracle_estimate(phase, lat);
      s.idle = is_idle;
      s.naive_utilization = 1.0;  // hot idle: non-halted cycles say busy
      samples.push_back(s);
    }
  }
  const std::size_t n = truth.size();
  const double full_budget = 140.0 * static_cast<double>(n);
  const double epsilon = core::FrequencyScheduler::Options{}.epsilon;

  // Reference performance: everything at f_max.
  double perf_ref = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!idle[p]) {
      perf_ref += workload::true_performance(truth[p], lat, table.max_hz());
    }
  }

  const auto policies = baselines::standard_policies();
  sim::TextTable out(
      "Aggregate performance (vs all-at-fmax) under budget fractions");
  sim::TextTable gaps(
      "Optimality gap (policy loss - LP-bound loss, model terms)");
  std::vector<std::string> header{"policy"};
  const double fractions[] = {1.0, 0.7, 0.5, 0.35, 0.25, 0.15};
  for (double f : fractions) {
    header.push_back(sim::TextTable::num(f * 100, 0) + "% budget");
  }
  out.set_header(header);
  gaps.set_header(header);

  // Powered-off assignments (and budget-ignoring no-dvfs) leave the LP's
  // within-budget always-on feasible set, so only these policies carry the
  // gap >= 0 guarantee the smoke gate asserts.
  const auto always_on = [](const std::string& name) {
    return name == "uniform" || name == "dbs-capped" ||
           name == "two-freq-split" || name == "lp-optimal" ||
           name == "fvsst";
  };
  const double kFvsstGapBound = 0.05;  // 5% of reference performance.
  bool smoke_ok = true;

  for (const auto& policy : policies) {
    const bool is_consolidate = policy->name() == "consolidate";
    std::vector<std::string> row{is_consolidate ? "consolidate (migration)"
                                                : policy->name()};
    std::vector<std::string> gap_row{row[0]};
    for (double f : fractions) {
      const double budget = full_budget * f;
      const auto assignments = policy->decide(samples, table, budget);
      double perf = 0.0;
      bool within = true;
      if (is_consolidate) {
        // Consolidation moves jobs onto the surviving hosts, which plain
        // evaluate() cannot express; score it with migration credit.
        std::size_t hosts = 0;
        double power = 0.0;
        for (const auto& a : assignments) {
          if (a.powered_on) {
            ++hosts;
            power += table.power(a.hz);
          }
        }
        perf = baselines::ConsolidationPolicy::consolidated_performance(
            truth, idle, hosts, table.max_hz(), lat);
        within = power <= budget + 1e-9;
      } else {
        const auto ev = baselines::evaluate(assignments, truth, idle, lat,
                                            table, budget);
        perf = ev.total_performance;
        within = ev.within_budget;
      }
      std::string cell = sim::TextTable::num(perf / perf_ref, 2);
      if (!within) cell += "!";
      row.push_back(std::move(cell));

      const auto gap = baselines::optimality_gap(samples, assignments, table,
                                                 budget, epsilon);
      std::string gap_cell = sim::TextTable::pct(gap.gap, 2);
      if (!always_on(policy->name())) gap_cell += "*";
      gap_row.push_back(std::move(gap_cell));

      if (smoke && always_on(policy->name())) {
        if (gap.gap < -1e-9) {
          std::printf("SMOKE FAIL: %s at %.0f%% budget: gap %.6f < 0\n",
                      policy->name().c_str(), f * 100, gap.gap);
          smoke_ok = false;
        }
        if (policy->name() == "fvsst" && gap.gap >= kFvsstGapBound) {
          std::printf(
              "SMOKE FAIL: fvsst at %.0f%% budget: gap %.4f >= bound %.4f\n",
              f * 100, gap.gap, kFvsstGapBound);
          smoke_ok = false;
        }
      }
    }
    out.add_row(std::move(row));
    gaps.add_row(std::move(gap_row));
  }

  if (smoke) {
    std::printf("bench_abl_policies --smoke: %s (gap >= 0 for always-on "
                "policies; fvsst gap < %.0f%% at every budget)\n",
                smoke_ok ? "PASS" : "FAIL", kFvsstGapBound * 100);
    return smoke_ok ? 0 : 1;
  }

  out.print();
  std::printf(
      "(\"!\" marks a budget violation — no-dvfs ignores the budget and\n"
      "would cascade.)\n"
      "Expected: fvsst dominates at every constrained budget: uniform\n"
      "scaling and DBS tax everyone equally, power-down sacrifices whole\n"
      "processors' work.  Consolidation — even granted free, instant job\n"
      "migration (which the paper calls \"difficult or impossible\" in\n"
      "clusters) — fares worst on this busy cluster: dropping pipelines\n"
      "costs performance linearly, while slowing saturated memory-bound\n"
      "work costs almost nothing.  Exactly the paper's argument for\n"
      "scheduling frequencies instead of work.\n\n");
  gaps.print();
  std::printf(
      "(\"*\" marks policies outside the LP's always-on feasible set —\n"
      "no-dvfs ignores the budget, power-down/consolidate switch\n"
      "processors off — whose gap may legitimately go negative.  For\n"
      "every within-budget always-on policy the gap lower-bounds at 0:\n"
      "the LP optimum dominates all such assignments by construction.)\n");
  return 0;
}
