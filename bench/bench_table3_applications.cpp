// bench_table3_applications - Regenerates paper Table 3: performance and
// energy of gzip, gap, mcf and health under 140 W / 75 W / 35 W CPU power
// constraints (single processor, fvsst active).
//
// Normalisation follows the paper: performance is relative to the
// unconstrained (140 W) fvsst run; energy is relative to a non-fvsst system
// running the same job at full power (140 W for the whole unconstrained
// runtime).
#include "bench/common.h"

using namespace fvsst;

int main() {
  bench::banner("Table 3", "Performance and power under constraint");

  struct PaperRow {
    const char* app;
    double perf75, perf35, e140, e75, e35;
  };
  const PaperRow paper[] = {
      {"gzip", 0.79, 0.52, 0.94, 0.68, 0.47},
      {"gap", 0.80, 0.54, 0.88, 0.67, 0.47},
      {"mcf", 0.99, 0.81, 0.43, 0.43, 0.31},
      {"health", 1.00, 0.72, 0.43, 0.43, 0.35},
  };

  sim::TextTable out("Measured (paper values in parentheses)");
  out.set_header({"metric", "gzip", "gap", "mcf", "health"});

  const auto apps = workload::paper_applications();
  double perf[3][4], energy[3][4];
  const double budgets[3] = {140.0, 75.0, 35.0};
  double ref_runtime[4], ref_energy_nofvsst[4];

  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (int b = 0; b < 3; ++b) {
      const auto r = bench::run_single_cpu(apps[a], budgets[b], 100 + a);
      if (b == 0) {
        ref_runtime[a] = r.runtime_s;
        ref_energy_nofvsst[a] = 140.0 * r.runtime_s;
      }
      perf[b][a] = ref_runtime[a] / r.runtime_s;
      energy[b][a] = r.cpu_energy_j / ref_energy_nofvsst[a];
    }
  }

  auto row = [&](const std::string& label, double measured[4],
                 auto paper_of) {
    std::vector<std::string> cells{label};
    for (int a = 0; a < 4; ++a) {
      cells.push_back(sim::TextTable::num(measured[a], 2) + " (" +
                      sim::TextTable::num(paper_of(paper[a]), 2) + ")");
    }
    out.add_row(std::move(cells));
  };
  row("Perf @140W", perf[0], [](const PaperRow&) { return 1.0; });
  row("Perf @75W", perf[1], [](const PaperRow& p) { return p.perf75; });
  row("Perf @35W", perf[2], [](const PaperRow& p) { return p.perf35; });
  row("Energy @140W", energy[0], [](const PaperRow& p) { return p.e140; });
  row("Energy @75W", energy[1], [](const PaperRow& p) { return p.e75; });
  row("Energy @35W", energy[2], [](const PaperRow& p) { return p.e35; });
  out.print();

  std::printf(
      "Shape to reproduce (paper): CPU-intensive gzip/gap lose noticeably\n"
      "but sub-linearly as the budget tightens; memory-intensive mcf/health\n"
      "hold full performance at 75 W and dip only at 35 W; fvsst's energy\n"
      "saving is largest (to ~0.43) for the memory-intensive applications\n"
      "even when unconstrained.\n");
  return 0;
}
