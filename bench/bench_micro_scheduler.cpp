// bench_micro_scheduler - google-benchmark microbenchmarks of the hot
// paths: the IPC predictor and the scheduling calculation.  These bound
// the daemon overhead the paper's Figure 4 measures end to end: at
// T = 100 ms, even a 4-CPU schedule costing a few microseconds is far
// below the ~3% throughput budget.
#include <benchmark/benchmark.h>

#include "core/predictor.h"
#include "core/scheduler.h"
#include "mach/machine_config.h"
#include "simkit/rng.h"

namespace {

using namespace fvsst;

std::vector<core::ProcView> random_views(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<core::ProcView> views(n);
  for (auto& v : views) {
    v.estimate.valid = true;
    v.estimate.alpha_inv = 1.0 / rng.uniform(0.9, 2.0);
    v.estimate.mem_time_per_instr = rng.uniform(0.0, 15.0) / 1e9;
    v.idle = rng.bernoulli(0.15);
  }
  return views;
}

void BM_PredictorEstimate(benchmark::State& state) {
  const core::IpcPredictor pred(mach::p630().latencies);
  core::CounterObservation obs;
  obs.measured_hz = 1e9;
  obs.delta.instructions = 1e8;
  obs.delta.cycles = 4e8;
  obs.delta.l2_accesses = 1e6;
  obs.delta.l3_accesses = 4e5;
  obs.delta.mem_accesses = 8e5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.estimate(obs));
  }
}
BENCHMARK(BM_PredictorEstimate);

void BM_PredictIpc(benchmark::State& state) {
  const core::IpcPredictor pred(mach::p630().latencies);
  core::WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 0.7;
  est.mem_time_per_instr = 4e-9;
  double hz = 250e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.predict_ipc(est, hz));
    hz = hz >= 1e9 ? 250e6 : hz + 50e6;
  }
}
BENCHMARK(BM_PredictIpc);

void BM_IdealFrequency(benchmark::State& state) {
  core::WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 0.7;
  est.mem_time_per_instr = 4e-9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ideal_frequency(est, 1e9, 0.04));
  }
}
BENCHMARK(BM_IdealFrequency);

template <core::SchedulerVariant V>
void BM_Schedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::FrequencyScheduler::Options opts;
  opts.variant = V;
  const core::FrequencyScheduler sched(mach::p630_frequency_table(),
                                       mach::p630().latencies, opts);
  const auto views = random_views(n, 42);
  const double budget = 60.0 * static_cast<double>(n);  // forces downgrades
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.schedule(views, budget));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK_TEMPLATE(BM_Schedule, core::SchedulerVariant::kTwoPass)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();
BENCHMARK_TEMPLATE(BM_Schedule, core::SchedulerVariant::kSinglePass)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();
BENCHMARK_TEMPLATE(BM_Schedule, core::SchedulerVariant::kContinuous)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
