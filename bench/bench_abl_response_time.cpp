// bench_abl_response_time - Ablation A6: how fast does the cluster come
// under a new power limit after a supply failure, versus the supply's
// cascade tolerance DT?  This is the paper's motivating requirement:
// "the system must be under the new power limit in less than time DT".
#include "bench/common.h"

#include "core/cluster_daemon.h"

using namespace fvsst;
using units::ms;
using units::us;

namespace {

double response_time(std::size_t nodes, double channel_latency_s) {
  sim::Simulation sim;
  sim::Rng rng(99);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, nodes, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(80.0, 1e12));
  }
  power::PowerBudget budget(static_cast<double>(nodes) * 4 * 140.0);
  core::ClusterDaemonConfig cfg;
  cfg.channel_latency_s = channel_latency_s;
  cfg.channel_jitter_s = channel_latency_s * 0.25;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(1.0);

  const double new_limit = static_cast<double>(nodes) * 4 * 140.0 * 0.5;
  const double t_fail = 1.0123;
  sim.schedule_at(t_fail, [&] { budget.set_limit_w(new_limit); });
  double compliant_at = -1.0;
  sim.schedule_every(0.1 * ms, [&] {
    if (compliant_at < 0.0 && sim.now() > t_fail &&
        cluster.cpu_power_w() <= new_limit) {
      compliant_at = sim.now();
    }
  });
  sim.run_for(1.0);
  return compliant_at > 0.0 ? compliant_at - t_fail : -1.0;
}

}  // namespace

namespace {

double loss_compliance_time(double loss_probability) {
  sim::Simulation sim;
  sim::Rng rng(55);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 4, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(80.0, 1e12));
  }
  power::PowerBudget budget(4.0 * 4 * 140.0);
  core::ClusterDaemonConfig cfg;
  cfg.channel_loss_probability = loss_probability;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(1.0);
  const double new_limit = 4.0 * 4 * 140.0 * 0.5;
  const double t_fail = 1.0123;
  sim.schedule_at(t_fail, [&] { budget.set_limit_w(new_limit); });
  double compliant_at = -1.0;
  sim.schedule_every(0.5 * ms, [&] {
    if (compliant_at < 0.0 && sim.now() > t_fail &&
        cluster.cpu_power_w() <= new_limit) {
      compliant_at = sim.now();
    }
  });
  sim.run_for(2.0);
  return compliant_at > 0.0 ? compliant_at - t_fail : -1.0;
}

}  // namespace

int main() {
  bench::banner("Ablation A6",
                "Cluster response latency vs cascade tolerance DT");

  sim::TextTable out(
      "Time from budget drop to cluster-wide compliance (ms)");
  out.set_header({"nodes", "lan 50us", "lan 200us", "wan 2ms", "wan 10ms"});
  for (std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (double latency : {50 * us, 200 * us, 2 * ms, 10 * ms}) {
      const double r = response_time(nodes, latency);
      row.push_back(r < 0 ? "never" : sim::TextTable::num(r * 1e3, 2));
    }
    out.add_row(std::move(row));
  }
  out.print();
  std::printf(
      "Expected: response is dominated by one one-way settings message, so\n"
      "it stays within a few milliseconds even at WAN latencies and is flat\n"
      "in cluster size — comfortably inside any realistic supply tolerance\n"
      "DT (tens to hundreds of milliseconds).  A timer-only scheduler\n"
      "(no budget trigger) would instead respond in O(T) = 100 ms.\n");

  sim::TextTable loss_table(
      "Robustness: compliance time under message loss (4 nodes, 50% cut)");
  loss_table.set_header({"loss probability", "time to comply"});
  for (double p : {0.0, 0.1, 0.3, 0.5}) {
    const double r = loss_compliance_time(p);
    loss_table.add_row({sim::TextTable::pct(p, 0),
                        r < 0 ? "never"
                              : sim::TextTable::num(r * 1e3, 1) + " ms"});
  }
  loss_table.print();
  std::printf(
      "Expected: the budget-triggered settings message may be lost, but\n"
      "the periodic global rounds (T = 100 ms) repair any gap, so\n"
      "compliance degrades from sub-millisecond to at most a few rounds\n"
      "even at 50%% loss — never to \"never\".\n");
  return 0;
}
