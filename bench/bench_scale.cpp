// bench_scale - Scale-out sweep of the cluster simulation substrate: wall
// time and speedup of the deterministic parallel node stepper across node
// counts and thread counts, with a built-in determinism audit.
//
// Every (nodes, threads) cell runs the same scenario — uniform synthetic
// load, a mid-run budget drop, the distributed ClusterDaemon — and records
// wall time plus a fingerprint of the decision journal and the final core
// state.  Fingerprints exclude the journal's host wall-clock stage timings
// (estimate_s and friends), which measure this machine, not the simulated
// cluster; everything else must match bit-for-bit across thread counts or
// the bench exits nonzero.
//
// A second sweep compares the flat single-coordinator daemon against the
// hierarchical coordinator tree at O(1k-100k) nodes on the headline
// metric nodes*sim-seconds per wall-second.  The flat daemon's per-node
// agents and per-node channel traffic make it O(nodes) per sample tick;
// the tree's batched SoA shard sweeps and O(shards) summary traffic are
// what let the same scenario scale two orders of magnitude further.
//
// Usage:
//   bench_scale [--smoke]
//     --smoke   small sweep (4 nodes, threads 1-2, short run) plus the
//               topology gate (tree >= flat at 10k nodes, tree completes
//               100k nodes) for CI
#include "bench/common.h"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "core/cluster_daemon.h"
#include "core/tree_daemon.h"
#include "simkit/event_log.h"

using namespace fvsst;

namespace {

struct ScaleResult {
  double wall_s = 0.0;
  std::uint64_t fingerprint = 0;  ///< Journal + final core state.
  std::size_t journal_events = 0;
};

// FNV-1a over a byte range.
void fnv(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

void fnv_d(std::uint64_t& h, double v) { fnv(h, &v, sizeof v); }

void fnv(std::uint64_t& h, std::string_view s) { fnv(h, s.data(), s.size()); }

/// True for the journal fields that record host wall-clock time of the
/// scheduling stages; they differ run to run even at a fixed thread count.
bool is_wall_clock_field(std::string_view key) {
  return key == "estimate_s" || key == "policy_s" || key == "actuate_s" ||
         key == "sample_s" || key == "cycle_s";
}

std::uint64_t fingerprint_journal(const sim::EventLog& log) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const sim::Event& e : log.events()) {
    fnv_d(h, e.t);
    fnv(h, sim::event_type_name(e.type));
    fnv_d(h, static_cast<double>(e.cpu));
    for (const auto& [key, value] : e.num) {
      if (is_wall_clock_field(key)) continue;
      fnv(h, key);
      fnv_d(h, value);
    }
    for (const auto& [key, value] : e.str) {
      fnv(h, key);
      fnv(h, value);
    }
  }
  return h;
}

ScaleResult run_cell(std::size_t nodes, int threads, double duration_s) {
  sim::Simulation sim;
  sim::Rng rng(17);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, nodes, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(70.0, 1e12));
  }
  const double peak = static_cast<double>(cluster.cpu_count()) * 140.0;
  power::PowerBudget budget(peak);
  sim.schedule_at(duration_s * 0.5, [&] { budget.set_limit_w(peak * 0.45); });

  sim::EventLog journal;
  core::ClusterDaemonConfig cfg;
  cfg.journal = &journal;
  cfg.step_threads = threads;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);

  const auto start = std::chrono::steady_clock::now();
  sim.run_for(duration_s);
  const auto stop = std::chrono::steady_clock::now();

  ScaleResult out;
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  out.journal_events = journal.size();
  out.fingerprint = fingerprint_journal(journal);
  for (const auto& addr : cluster.all_procs()) {
    auto& core = cluster.core(addr);
    fnv_d(out.fingerprint, core.frequency_hz());
    fnv_d(out.fingerprint, core.instructions_retired());
  }
  return out;
}

// ---- Topology sweep: flat coordinator vs hierarchical tree ---------------

/// One scale cell: uniform load, a mid-run budget drop, and either the
/// flat ClusterDaemon or the TreeDaemon.  Single-CPU nodes keep the core
/// count equal to the node count so "nodes" is the honest scale axis, and
/// event-driven advance gives both daemons their best stepping mode.
/// Returns nodes * simulated seconds per wall second.
double run_topology_cell(std::size_t nodes, bool tree, double duration_s) {
  sim::Simulation sim;
  sim::Rng rng(17);
  mach::MachineConfig machine = mach::p630();
  machine.name = "p630-1cpu";
  machine.num_cpus = 1;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, nodes, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(70.0, 1e12));
  }
  const double peak = static_cast<double>(cluster.cpu_count()) * 140.0;
  power::PowerBudget budget(peak);
  sim.schedule_at(duration_s * 0.5, [&] { budget.set_limit_w(peak * 0.45); });

  std::unique_ptr<core::ClusterDaemon> flat_daemon;
  std::unique_ptr<core::TreeDaemon> tree_daemon;
  if (tree) {
    core::TreeDaemonConfig cfg;
    cfg.advance_mode = core::AdvanceMode::kEvent;
    tree_daemon = std::make_unique<core::TreeDaemon>(
        sim, cluster, machine.freq_table, budget, cfg);
  } else {
    core::ClusterDaemonConfig cfg;
    cfg.advance_mode = core::AdvanceMode::kEvent;
    flat_daemon = std::make_unique<core::ClusterDaemon>(
        sim, cluster, machine.freq_table, budget, cfg);
  }

  const auto start = std::chrono::steady_clock::now();
  sim.run_for(duration_s);
  const auto stop = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(nodes) * duration_s / wall_s;
}

/// Runs the topology comparison and (in smoke mode) enforces the scaling
/// gates.  Returns the number of gate failures.
int topology_sweep(bool smoke) {
  // Flat cells stop at 10k nodes: the per-node agent machinery is
  // exactly what stops scaling there (a flat 100k cell extrapolates to
  // ~10 wall-minutes), and the point is made at 10k.  Announced below
  // so the omission is never mistaken for coverage.
  const std::vector<std::size_t> tree_nodes = {1000, 10000, 100000};
  const std::vector<std::size_t> flat_nodes = {1000, 10000};
  const double duration_s = smoke ? 0.25 : 0.5;
  std::printf("topology sweep: flat cells capped at 10k nodes "
              "(extrapolated wall time is minutes beyond that)\n");

  sim::TextTable table("Topology scale-out (" +
                       sim::TextTable::num(duration_s, 2) +
                       " s simulated, single-CPU nodes, event advance)");
  table.set_header({"nodes", "topology", "nodes*sim-s / wall-s"});
  std::vector<double> flat_rate(tree_nodes.size(), 0.0);
  std::vector<double> tree_rate(tree_nodes.size(), 0.0);
  for (std::size_t i = 0; i < tree_nodes.size(); ++i) {
    const std::size_t n = tree_nodes[i];
    for (std::size_t f : flat_nodes) {
      if (f == n) {
        flat_rate[i] = run_topology_cell(n, /*tree=*/false, duration_s);
        table.add_row({sim::TextTable::num(n, 0), "flat",
                       sim::TextTable::num(flat_rate[i], 0)});
      }
    }
    tree_rate[i] = run_topology_cell(n, /*tree=*/true, duration_s);
    table.add_row({sim::TextTable::num(n, 0), "tree",
                   sim::TextTable::num(tree_rate[i], 0)});
  }
  table.print();
  std::printf(
      "Expected: the tree's throughput advantage widens with the node\n"
      "count — its summary traffic is O(shards) = O(sqrt(nodes)) per round\n"
      "while the flat daemon runs per-node agents and channels.\n");

  int failures = 0;
  if (smoke) {
    // Gate A: at 10k nodes the tree must at least match the flat daemon.
    if (tree_rate[1] < flat_rate[1]) {
      std::fprintf(stderr,
                   "bench_scale: FAILED — tree slower than flat at 10k "
                   "nodes (%.0f < %.0f nodes*sim-s/wall-s)\n",
                   tree_rate[1], flat_rate[1]);
      ++failures;
    }
    // Gate B: the 100k-node tree cell must complete and make progress.
    if (!(tree_rate[2] > 0.0)) {
      std::fprintf(stderr,
                   "bench_scale: FAILED — 100k-node tree cell made no "
                   "progress\n");
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::vector<std::size_t> node_counts = smoke
                                             ? std::vector<std::size_t>{4}
                                             : std::vector<std::size_t>{
                                                   16, 64, 256};
  std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const double duration_s = smoke ? 0.5 : 2.0;

  bench::banner("Scale sweep",
                "Parallel node stepping: wall time, speedup, determinism");

  sim::TextTable table("Cluster step throughput (budget drop mid-run, " +
                       sim::TextTable::num(duration_s, 1) + " s simulated)");
  table.set_header({"nodes", "threads", "wall ms", "speedup", "sim s / wall s",
                    "journal", "deterministic"});
  bool all_match = true;
  for (std::size_t nodes : node_counts) {
    std::uint64_t reference = 0;
    double serial_wall = 0.0;
    for (int threads : thread_counts) {
      const ScaleResult r = run_cell(nodes, threads, duration_s);
      if (threads == 1) {
        reference = r.fingerprint;
        serial_wall = r.wall_s;
      }
      const bool match = r.fingerprint == reference;
      all_match = all_match && match;
      table.add_row({sim::TextTable::num(nodes, 0),
                     sim::TextTable::num(threads, 0),
                     sim::TextTable::num(r.wall_s * 1e3, 1),
                     sim::TextTable::num(serial_wall / r.wall_s, 2),
                     sim::TextTable::num(duration_s / r.wall_s, 2),
                     sim::TextTable::num(r.journal_events, 0),
                     match ? "yes" : "NO"});
    }
  }
  table.print();
  std::printf(
      "Expected: every thread count reproduces the --threads 1 journal and\n"
      "final core state exactly (the stepper's fixed partition and tick-\n"
      "boundary sync make thread count invisible to the simulation); the\n"
      "speedup column tracks available hardware parallelism and stays ~1.0\n"
      "on a single-CPU host.\n");
  int failures = all_match ? 0 : 1;
  if (!all_match) {
    std::fprintf(stderr,
                 "bench_scale: FAILED — thread count changed the result\n");
  }
  failures += topology_sweep(smoke);
  return failures == 0 ? 0 : 1;
}
