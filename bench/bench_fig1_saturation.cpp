// bench_fig1_saturation - Regenerates paper Figure 1: performance
// saturation of the synthetic benchmark across CPU intensities.
//
// Paper shape to reproduce: throughput rises with frequency and flattens
// at a workload-dependent saturation point; the more memory-intensive the
// workload, the earlier (lower frequency) it saturates.  CPU-bound work is
// linear in frequency all the way to f_max.
#include "bench/common.h"

#include "core/predictor.h"
#include "workload/phase.h"

using namespace fvsst;
using units::GHz;
using units::MHz;

int main() {
  bench::banner("Figure 1", "Performance saturation (synthetic benchmark)");

  const mach::MachineConfig machine = mach::p630();
  const auto& table = machine.freq_table;
  const double intensities[] = {100.0, 75.0, 50.0, 25.0, 10.0};

  sim::TextTable out(
      "Normalised throughput vs frequency (1.0 = value at 1000 MHz)");
  std::vector<std::string> header{"MHz"};
  for (double c : intensities) {
    header.push_back("cpu" + sim::TextTable::num(c, 0) + "%");
  }
  out.set_header(header);

  std::vector<sim::TimeSeries> curves;
  for (double c : intensities) {
    curves.emplace_back("cpu" + sim::TextTable::num(c, 0) + "%");
  }

  for (const auto& point : table.points()) {
    std::vector<std::string> row{sim::TextTable::num(point.hz / MHz, 0)};
    for (std::size_t i = 0; i < std::size(intensities); ++i) {
      const auto phase =
          workload::synthetic_phase("p", intensities[i], 1e9);
      const double perf =
          workload::true_performance(phase, machine.latencies, point.hz);
      const double perf_max = workload::true_performance(
          phase, machine.latencies, table.max_hz());
      row.push_back(sim::TextTable::num(perf / perf_max, 3));
      curves[i].add(point.hz / MHz, perf / perf_max);
    }
    out.add_row(std::move(row));
  }
  out.print();

  std::vector<const sim::TimeSeries*> ptrs;
  for (const auto& c : curves) ptrs.push_back(&c);
  std::printf("%s", sim::render_ascii_chart(ptrs, 64, 14).c_str());
  bench::maybe_dump_csv("fig1_saturation", ptrs, 50.0);

  // The saturation point: lowest frequency within epsilon = 4% of peak.
  sim::TextTable sat("Saturation frequency (lowest setting within 4% of peak "
                     "performance)");
  sat.set_header({"intensity", "saturation MHz", "paper shape"});
  core::IpcPredictor predictor(machine.latencies);
  for (double c : intensities) {
    const auto phase = workload::synthetic_phase("p", c, 1e9);
    core::WorkloadEstimate est;
    est.valid = true;
    est.alpha_inv = 1.0 / phase.alpha;
    est.mem_time_per_instr =
        workload::mem_time_per_instruction(phase, machine.latencies);
    double sat_hz = table.max_hz();
    for (const auto& p : table.points()) {
      const double loss =
          core::perf_loss(predictor.predict_performance(est, table.max_hz()),
                          predictor.predict_performance(est, p.hz));
      if (loss < 0.04) {
        sat_hz = p.hz;
        break;
      }
    }
    sat.add_row({sim::TextTable::num(c, 0) + "%",
                 sim::TextTable::num(sat_hz / MHz, 0),
                 c >= 90 ? "saturates only at f_max"
                         : "saturates below f_max"});
  }
  sat.print();
  std::printf(
      "Expected (paper): memory-intensive settings saturate at a frequency\n"
      "that falls as memory intensity rises; CPU-bound work never saturates.\n");
  return 0;
}
