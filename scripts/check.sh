#!/usr/bin/env bash
# check.sh - the full local gate: configure with warnings-as-errors,
# build everything, run the whole test suite.  CI runs exactly this.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-check}"

generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi

cmake -S "${repo_root}" -B "${build_dir}" "${generator[@]}" -DFVSST_WERROR=ON
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure

# Observability smoke: a journalled run must produce a JSONL journal the
# inspector accepts and a Chrome trace that is valid JSON.
smoke_dir="${build_dir}/observability-smoke"
mkdir -p "${smoke_dir}"
"${build_dir}/tools/fvsst_sim" \
  --workload synth:50@0.0 --budget 500 --budget-at 1:280 --duration 2 \
  --explain --journal "${smoke_dir}/run.jsonl" \
  --chrome-trace "${smoke_dir}/trace.json"
"${build_dir}/tools/fvsst_inspect" "${smoke_dir}/run.jsonl" --check
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${smoke_dir}/trace.json" >/dev/null
  python3 - "${smoke_dir}/run.jsonl" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    lines = [line for line in fh if line.strip()]
for n, line in enumerate(lines, 1):
    try:
        json.loads(line)
    except ValueError as err:
        raise SystemExit(f"journal line {n} is not valid JSON: {err}")
print(f"journal OK: {len(lines)} valid JSON lines")
EOF
else
  echo "python3 not found; skipping JSON validation of the smoke outputs"
fi

# Failover smoke: kill the coordinator the instant the budget drops; the
# standby must take over and the journal must pass every invariant check —
# epoch fencing and failover-window compliance included.
cat > "${smoke_dir}/failover.plan" <<'EOF'
seed 9
coordinator_crash 1.05 2.0 coordinator=0
EOF
"${build_dir}/tools/fvsst_sim" \
  --cluster --nodes 2 --standby --failsafe 2 \
  --workload synth:100@0.0 --workload synth:100@1.0 \
  --budget 1120 --budget-at 1.0123:500 --duration 2.5 \
  --fault-plan "${smoke_dir}/failover.plan" \
  --journal "${smoke_dir}/failover.jsonl"
"${build_dir}/tools/fvsst_inspect" "${smoke_dir}/failover.jsonl" --check

# Sim-throughput smoke: the skip-ahead advance-call, event-driven
# event-count, and binary-serialize floors must hold (events/s and
# advance-calls/sim-second are regression-gated like determinism is).
"${build_dir}/bench/bench_micro_substrate" --smoke

# Binary-journal smoke: the same failover scenario streamed as FJB1 must
# pass the same invariant checks after auto-detection, and --to-jsonl must
# reproduce the JSONL run byte-for-byte apart from wall-clock stage
# timings.
"${build_dir}/tools/fvsst_sim" \
  --cluster --nodes 2 --standby --failsafe 2 \
  --workload synth:100@0.0 --workload synth:100@1.0 \
  --budget 1120 --budget-at 1.0123:500 --duration 2.5 \
  --fault-plan "${smoke_dir}/failover.plan" \
  --journal "${smoke_dir}/failover.fjb"
"${build_dir}/tools/fvsst_inspect" "${smoke_dir}/failover.fjb" --check
"${build_dir}/tools/fvsst_inspect" "${smoke_dir}/failover.fjb" \
  --to-jsonl "${smoke_dir}/failover_converted.jsonl"
strip_wall_clock='s/"(estimate_s|policy_s|actuate_s|sample_s|cycle_s)":[^,}]+//g'
sed -E "${strip_wall_clock}" "${smoke_dir}/failover.jsonl" \
  > "${smoke_dir}/failover.norm"
sed -E "${strip_wall_clock}" "${smoke_dir}/failover_converted.jsonl" \
  > "${smoke_dir}/failover_converted.norm"
cmp "${smoke_dir}/failover.norm" "${smoke_dir}/failover_converted.norm"

# Monitor smoke: a cluster run under the default rule pack with a crashed
# coordinator must raise (and clear) coordinator_silent in the journal,
# write a Prometheus snapshot a strict parser accepts, and render an HTML
# report carrying every section anchor.
cat > "${smoke_dir}/monitor.plan" <<'EOF'
seed 3
coordinator_crash 1.05 2.5 coordinator=0
EOF
"${build_dir}/tools/fvsst_sim" \
  --cluster --nodes 2 --duration 3 --seed 3 \
  --fault-plan "${smoke_dir}/monitor.plan" --rules default \
  --journal "${smoke_dir}/monitor.jsonl" \
  --metrics-out "${smoke_dir}/monitor.prom"
grep '"type":"alert_raised"' "${smoke_dir}/monitor.jsonl" \
  | grep -q '"rule":"coordinator_silent"'
grep '"type":"alert_cleared"' "${smoke_dir}/monitor.jsonl" \
  | grep -q '"rule":"coordinator_silent"'
if command -v python3 >/dev/null 2>&1; then
  python3 - "${smoke_dir}/monitor.prom" <<'EOF'
import re, sys
# Strict Prometheus text-format check: every line is a comment (# HELP /
# # TYPE with a declared name) or a sample  name{labels} value  whose name
# was declared, whose labels are well-formed, and whose value parses as a
# float.  Every fvsst_alert_firing sample must be 0 or 1.
sample_re = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r' (\S+)$')
declared = set()
samples = 0
with open(sys.argv[1]) as fh:
    for n, line in enumerate(fh, 1):
        line = line.rstrip('\n')
        if not line:
            continue
        if line.startswith('#'):
            parts = line.split()
            if len(parts) < 4 or parts[1] not in ('HELP', 'TYPE'):
                raise SystemExit(f'line {n}: malformed comment: {line}')
            if parts[1] == 'TYPE':
                declared.add(parts[2])
            continue
        m = sample_re.match(line)
        if not m:
            raise SystemExit(f'line {n}: not a valid sample: {line}')
        name, _, value = m.groups()
        if name not in declared:
            raise SystemExit(f'line {n}: sample for undeclared metric {name}')
        v = float(value)  # raises on junk
        if name == 'fvsst_alert_firing' and v not in (0.0, 1.0):
            raise SystemExit(f'line {n}: alert_firing must be 0 or 1: {line}')
        samples += 1
if samples == 0:
    raise SystemExit('no samples in the Prometheus snapshot')
print(f'prometheus OK: {samples} samples, {len(declared)} metrics')
EOF
else
  echo "python3 not found; skipping strict Prometheus validation"
fi
"${build_dir}/tools/fvsst_report" "${smoke_dir}/monitor.jsonl" \
  --metrics "${smoke_dir}/monitor.prom" --out "${smoke_dir}/monitor.html"
for id in summary alerts latency residency power metrics; do
  grep -q "id=\"${id}\"" "${smoke_dir}/monitor.html"
done
grep -q coordinator_silent "${smoke_dir}/monitor.html"
grep -q '<svg' "${smoke_dir}/monitor.html"

# Alert-detection smoke: both injected incidents must be caught, latency
# monotone in the rule window.
"${build_dir}/bench/bench_abl_alerts" --smoke

# Transport smoke: across a loss/reorder/duplication sweep the reliable
# session must never converge slower than the datagram baseline, and
# every scenario's journal must pass all invariant checks (bounded
# convergence included).
"${build_dir}/bench/bench_abl_transport" --smoke

# Optimality-gap smoke: every always-on policy's gap against the LP bound
# must be nonnegative on the reference mix, and the two-pass heuristic's
# gap must stay under the fixed bound at every budget fraction.
"${build_dir}/bench/bench_abl_policies" --smoke

# Scale smoke: the thread-determinism sweep plus the topology gates — the
# hierarchical tree must beat the flat coordinator at 10k nodes and must
# complete a 100k-node cell (nodes*sim-s per wall-s is the metric).
"${build_dir}/bench/bench_scale" --smoke

# Sanitizer gate: rebuild with ASan + UBSan and run the suites that
# exercise the engine's fault paths, the chaos harness, and the JSONL
# reader fuzzers — the code most likely to hide memory or UB mistakes.
# FVSST_CHAOS_ITERATIONS is dialled down: sanitized builds are ~5x slower
# and the full sweep already ran unsanitized above.
asan_dir="${build_dir}-asan"
cmake -S "${repo_root}" -B "${asan_dir}" "${generator[@]}" \
  -DFVSST_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${asan_dir}" -j "$(nproc)" --target \
  test_chaos test_scheduler_properties test_optimal_policies \
  test_event_log test_control_loop test_transport \
  test_determinism test_failover test_event_mode test_binary_journal \
  test_shard test_summary_tree test_tree_daemon \
  bench_abl_failover bench_abl_transport fvsst_sim fvsst_inspect
FVSST_CHAOS_ITERATIONS=8 ctest --test-dir "${asan_dir}" --output-on-failure \
  -R 'chaos|scheduler_properties|optimal_policies|event_log|control_loop|determinism|failover|cli_fault_plan|event_mode|binary_journal|transport|^test_shard$|summary_tree|tree_daemon|cli_topology'

# Thread-sanitizer gate: rebuild with TSan and run the parallel-stepper
# suite, the transport suite (its determinism test drives the reliable
# session through the 4-thread stepper), the tree-daemon suite (its
# invariance matrix runs the batched shard pre-sync on up to 8 threads),
# and the scale-sweep smoke — the only code that shares simulation state
# across threads, so the only code TSan can vet.
tsan_dir="${build_dir}-tsan"
cmake -S "${repo_root}" -B "${tsan_dir}" "${generator[@]}" \
  -DFVSST_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${tsan_dir}" -j "$(nproc)" --target \
  test_parallel_stepper test_transport test_tree_daemon bench_scale
FVSST_CHAOS_ITERATIONS=8 ctest --test-dir "${tsan_dir}" --output-on-failure \
  -R 'parallel_stepper|^test_transport$|tree_daemon'
"${tsan_dir}/bench/bench_scale" --smoke
