#!/usr/bin/env bash
# check.sh - the full local gate: configure with warnings-as-errors,
# build everything, run the whole test suite.  CI runs exactly this.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-check}"

generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi

cmake -S "${repo_root}" -B "${build_dir}" "${generator[@]}" -DFVSST_WERROR=ON
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure
