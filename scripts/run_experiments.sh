#!/usr/bin/env bash
# Regenerates every paper table/figure and all ablations, teeing the output
# and (optionally) dumping plottable CSVs.
#
#   scripts/run_experiments.sh [output_dir]
set -euo pipefail
OUT="${1:-results}"
mkdir -p "$OUT"
export FVSST_CSV_DIR="$OUT"
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee "$OUT/test_output.txt"
: > "$OUT/bench_output.txt"
for b in build/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "== $(basename "$b") ==" | tee -a "$OUT/bench_output.txt"
  "$b" | tee -a "$OUT/bench_output.txt"
done
echo "Results in $OUT/"
