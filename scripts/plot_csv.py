#!/usr/bin/env python3
"""Plot fvsst bench CSVs (written with FVSST_CSV_DIR set).

Usage:  scripts/plot_csv.py results/fig5_phase.csv [out.png]

Each CSV has a time_s column followed by one column per series; this
renders them on a shared time axis.  Requires matplotlib.
"""
import csv
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else None
    try:
        import matplotlib
        if out:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; try: pip install matplotlib")
        return 1

    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    t = [float(r[0]) for r in data]
    plt.figure(figsize=(9, 4))
    for i, name in enumerate(header[1:], start=1):
        plt.plot(t, [float(r[i]) for r in data], label=name, linewidth=1.2)
    plt.xlabel(header[0])
    plt.legend()
    plt.title(path)
    plt.tight_layout()
    if out:
        plt.savefig(out, dpi=150)
        print(f"wrote {out}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
